"""Algorithmic building blocks Ditto's profilers rely on.

- Zhang–Shasha ordered tree-edit distance (§4.3.2 cites Bille's survey)
  for comparing per-thread call graphs;
- agglomerative clustering with a distance threshold (§4.3.2: "cluster
  threads with similar call graphs ... since the number of clusters is
  unknown in advance");
- hierarchical clustering over feature vectors (§4.4.2's instruction
  clustering by functionality/operands/ALU usage);
- error-metric summaries for the validation tables.
"""

from repro.analysis.treedit import CallTree, tree_edit_distance
from repro.analysis.clustering import (
    agglomerative_cluster,
    hierarchical_feature_clusters,
)
from repro.analysis.metrics import ErrorReport, MetricComparison, compare_metrics

__all__ = [
    "CallTree",
    "ErrorReport",
    "MetricComparison",
    "agglomerative_cluster",
    "compare_metrics",
    "hierarchical_feature_clusters",
    "tree_edit_distance",
]
