"""Clustering algorithms.

- :func:`agglomerative_cluster` — average-linkage agglomerative
  clustering over a caller-provided distance function, stopping at a
  distance threshold (cluster count unknown in advance, §4.3.2);
- :func:`hierarchical_feature_clusters` — the same machinery applied to
  numeric feature vectors with Euclidean distance, for the §4.4.2
  instruction clustering by functionality/operands/ALU usage.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, TypeVar

from repro.util.errors import ConfigurationError

T = TypeVar("T")


def agglomerative_cluster(
    items: Sequence[T],
    distance: Callable[[T, T], float],
    threshold: float,
) -> List[List[T]]:
    """Average-linkage agglomerative clustering with a stop threshold.

    Starts from singletons and repeatedly merges the pair of clusters with
    the smallest average inter-cluster distance, until that minimum
    exceeds ``threshold``. Returns clusters ordered by first-seen item.
    """
    if threshold < 0:
        raise ConfigurationError("threshold must be non-negative")
    items = list(items)
    if not items:
        return []
    # Pairwise distance matrix (symmetric, zero diagonal).
    n = len(items)
    dist = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            d = float(distance(items[i], items[j]))
            if d < 0 or math.isnan(d):
                raise ConfigurationError("distance must be non-negative")
            dist[i][j] = dist[j][i] = d
    clusters: List[List[int]] = [[i] for i in range(n)]

    def average_linkage(a: List[int], b: List[int]) -> float:
        total = sum(dist[i][j] for i in a for j in b)
        return total / (len(a) * len(b))

    while len(clusters) > 1:
        best = None
        best_distance = math.inf
        for x in range(len(clusters)):
            for y in range(x + 1, len(clusters)):
                d = average_linkage(clusters[x], clusters[y])
                if d < best_distance:
                    best_distance = d
                    best = (x, y)
        if best is None or best_distance > threshold:
            break
        x, y = best
        clusters[x] = clusters[x] + clusters[y]
        del clusters[y]
    return [[items[i] for i in cluster] for cluster in clusters]


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two equal-length vectors."""
    if len(a) != len(b):
        raise ConfigurationError("vectors must have equal length")
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


def hierarchical_feature_clusters(
    names: Sequence[str],
    vectors: Sequence[Sequence[float]],
    threshold: float,
) -> List[List[str]]:
    """Cluster named feature vectors (agglomerative, Euclidean).

    Used for the instruction-mix clustering: each cluster groups iforms
    with similar hardware resource requirements.
    """
    if len(names) != len(vectors):
        raise ConfigurationError("names and vectors must align")
    indexed = list(range(len(names)))
    clusters = agglomerative_cluster(
        indexed,
        distance=lambda i, j: euclidean(vectors[i], vectors[j]),
        threshold=threshold,
    )
    return [[names[i] for i in cluster] for cluster in clusters]
