"""Actual-vs-synthetic error reporting (the §6.2.1 error summary)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.errors import ConfigurationError
from repro.util.stats import relative_error

#: the metric columns of Fig. 5/7, in paper order
PAPER_METRICS = ("ipc", "branch", "l1i", "l1d", "l2", "llc")


@dataclass(frozen=True)
class MetricComparison:
    """One metric's actual vs synthetic values."""

    name: str
    actual: float
    synthetic: float

    @property
    def error(self) -> float:
        """Relative error of the synthetic against the actual."""
        return relative_error(self.actual, self.synthetic)


@dataclass
class ErrorReport:
    """A collection of metric comparisons with summary helpers."""

    comparisons: List[MetricComparison] = field(default_factory=list)

    def add(self, name: str, actual: float, synthetic: float) -> None:
        """Record one comparison."""
        self.comparisons.append(MetricComparison(name, actual, synthetic))

    def error_of(self, name: str) -> float:
        """Relative error of a named metric (first match)."""
        for comparison in self.comparisons:
            if comparison.name == name:
                return comparison.error
        raise ConfigurationError(f"no comparison named {name!r}")

    def mean_error(self, names: Optional[List[str]] = None) -> float:
        """Average relative error over (a subset of) the comparisons.

        Comparisons whose actual is zero with a nonzero synthetic are
        infinite and excluded (the paper reports finite averages).
        """
        chosen = [
            c for c in self.comparisons
            if (names is None or c.name in names) and c.error != float("inf")
        ]
        if not chosen:
            raise ConfigurationError("no finite comparisons to average")
        return sum(c.error for c in chosen) / len(chosen)

    def max_error(self) -> float:
        """Largest finite relative error."""
        finite = [c.error for c in self.comparisons
                  if c.error != float("inf")]
        if not finite:
            raise ConfigurationError("no finite comparisons")
        return max(finite)

    def by_metric(self) -> Dict[str, List[MetricComparison]]:
        """Comparisons grouped by metric name."""
        grouped: Dict[str, List[MetricComparison]] = {}
        for comparison in self.comparisons:
            grouped.setdefault(comparison.name, []).append(comparison)
        return grouped

    def table(self) -> str:
        """A printable actual/synthetic/error table."""
        lines = [f"{'metric':<16}{'actual':>14}{'synthetic':>14}{'error':>9}"]
        for c in self.comparisons:
            err = "inf" if c.error == float("inf") else f"{c.error:8.1%}"
            lines.append(
                f"{c.name:<16}{c.actual:>14.5g}{c.synthetic:>14.5g}{err:>9}"
            )
        return "\n".join(lines)


def compare_metrics(
    actual,
    synthetic,
    names=PAPER_METRICS,
) -> ErrorReport:
    """Compare two ServiceMetrics over the paper's metric columns."""
    report = ErrorReport()
    for name in names:
        report.add(name, actual.metric(name), synthetic.metric(name))
    return report
