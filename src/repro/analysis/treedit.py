"""Ordered tree edit distance (Zhang & Shasha, 1989).

Ditto measures the similarity between per-thread call graphs with
tree-edit distance before clustering threads into classes (§4.3.2). The
implementation follows the classic Zhang–Shasha dynamic program over
post-order keyroots, with unit costs for insert/delete and a 0/1 relabel
cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError


@dataclass
class CallTree:
    """An ordered, labelled tree (a thread's call graph)."""

    label: str
    children: List["CallTree"] = field(default_factory=list)

    def add(self, child: "CallTree") -> "CallTree":
        """Append a child; returns the child for chaining."""
        self.children.append(child)
        return child

    def size(self) -> int:
        """Number of nodes."""
        return 1 + sum(child.size() for child in self.children)

    @staticmethod
    def from_nested(spec) -> "CallTree":
        """Build from a nested (label, [children...]) structure.

        >>> CallTree.from_nested(("main", [("recv", []), ("send", [])])).size()
        3
        """
        if isinstance(spec, str):
            return CallTree(spec)
        label, children = spec
        tree = CallTree(label)
        for child in children:
            tree.add(CallTree.from_nested(child))
        return tree


def _postorder(tree: CallTree) -> Tuple[List[str], List[int]]:
    """Post-order labels plus, per node, the index of its leftmost leaf."""
    labels: List[str] = []
    leftmost: List[int] = []

    def visit(node: CallTree) -> int:
        first_child_leftmost: Optional[int] = None
        for child in node.children:
            child_leftmost = visit(child)
            if first_child_leftmost is None:
                first_child_leftmost = child_leftmost
        index = len(labels)
        labels.append(node.label)
        leftmost.append(
            index if first_child_leftmost is None else first_child_leftmost
        )
        return leftmost[index]

    visit(tree)
    return labels, leftmost


def _keyroots(leftmost: Sequence[int]) -> List[int]:
    seen = set()
    roots = []
    for index in range(len(leftmost) - 1, -1, -1):
        if leftmost[index] not in seen:
            roots.append(index)
            seen.add(leftmost[index])
    return sorted(roots)


def tree_edit_distance(a: CallTree, b: CallTree) -> int:
    """Minimum insert/delete/relabel operations turning ``a`` into ``b``."""
    if a is None or b is None:
        raise ConfigurationError("tree_edit_distance requires two trees")
    labels_a, left_a = _postorder(a)
    labels_b, left_b = _postorder(b)
    n, m = len(labels_a), len(labels_b)
    distance = [[0] * m for _ in range(n)]

    def relabel_cost(i: int, j: int) -> int:
        return 0 if labels_a[i] == labels_b[j] else 1

    for keyroot_a in _keyroots(left_a):
        for keyroot_b in _keyroots(left_b):
            _treedist(keyroot_a, keyroot_b, labels_a, labels_b, left_a,
                      left_b, distance, relabel_cost)
    return distance[n - 1][m - 1]


def _treedist(i: int, j: int, labels_a, labels_b, left_a, left_b,
              distance, relabel_cost) -> None:
    li, lj = left_a[i], left_b[j]
    rows = i - li + 2
    cols = j - lj + 2
    forest = [[0] * cols for _ in range(rows)]
    for x in range(1, rows):
        forest[x][0] = forest[x - 1][0] + 1
    for y in range(1, cols):
        forest[0][y] = forest[0][y - 1] + 1
    for x in range(1, rows):
        for y in range(1, cols):
            node_a = li + x - 1
            node_b = lj + y - 1
            if left_a[node_a] == li and left_b[node_b] == lj:
                forest[x][y] = min(
                    forest[x - 1][y] + 1,
                    forest[x][y - 1] + 1,
                    forest[x - 1][y - 1] + relabel_cost(node_a, node_b),
                )
                distance[node_a][node_b] = forest[x][y]
            else:
                fa = left_a[node_a] - li
                fb = left_b[node_b] - lj
                forest[x][y] = min(
                    forest[x - 1][y] + 1,
                    forest[x][y - 1] + 1,
                    forest[fa][fb] + distance[node_a][node_b],
                )


def normalized_tree_distance(a: CallTree, b: CallTree) -> float:
    """Edit distance normalised to [0, 1] by the larger tree's size."""
    return tree_edit_distance(a, b) / max(a.size(), b.size())
