"""The fleet's user-facing handle: submit, watch, cancel, collect.

A :class:`FleetClient` wraps one :class:`~repro.fleet.store.JobStore`
root. Because all coordination lives in the store (records, leases,
cancel markers), the client works the same whether the scheduler runs
in this process (:meth:`run_until_idle`), in another process on the
same host (``python -m repro.fleet run``), or not at all yet — jobs
queue until one shows up.

>>> client = FleetClient("/tmp/fleet")
>>> record = client.submit(request, name="memcached-a")
>>> client.run_until_idle()                      # doctest: +SKIP
>>> client.get(record.job_id).state
<JobState.PUBLISHED: 'published'>
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Union

from repro.core.request import CloneRequest
from repro.fleet.job import (
    CloneJobRecord,
    CloneJobSpec,
    JobResult,
    JobState,
    MigrationJobSpec,
)
from repro.migrate.request import MigrationRequest
from repro.fleet.store import JobStore
from repro.util.errors import ConfigurationError

__all__ = ["FleetClient"]


class FleetClient:
    """Submit and track clone jobs against one store root."""

    def __init__(self, store: Union[JobStore, str]) -> None:
        self.store = store if isinstance(store, JobStore) else JobStore(store)

    def submit(self, request: Union[CloneRequest, CloneJobSpec,
                                    MigrationRequest, MigrationJobSpec], *,
               name: str = "", priority: int = 0,
               max_crashes: Optional[int] = None) -> CloneJobRecord:
        """Queue one clone or migration job; returns its record."""
        if isinstance(request, CloneRequest):
            spec = CloneJobSpec(request=request, name=name,
                                priority=priority,
                                max_crashes=max_crashes)
        elif isinstance(request, MigrationRequest):
            spec = MigrationJobSpec(request=request, name=name,
                                    priority=priority,
                                    max_crashes=max_crashes)
        elif isinstance(request, (CloneJobSpec, MigrationJobSpec)):
            spec = request
        else:
            raise ConfigurationError(
                f"submit takes a CloneRequest, MigrationRequest, "
                f"CloneJobSpec or MigrationJobSpec, got {request!r}")
        return self.store.submit(spec)

    def get(self, job_id: str) -> CloneJobRecord:
        return self.store.get(job_id)

    def list(self, states: Optional[Iterable[JobState]] = None,
             ) -> List[CloneJobRecord]:
        return self.store.list(states)

    def cancel(self, job_id: str) -> CloneJobRecord:
        """Cancel a job (immediately when queued, at the next phase
        boundary when running); terminal jobs are untouched."""
        return self.store.request_cancel(job_id)

    def result(self, job_id: str) -> JobResult:
        """A published job's clone + fidelity document."""
        return self.store.result(job_id)

    def retire(self, job_id: str) -> CloneJobRecord:
        """Mark a published clone as superseded."""
        record = self.store.get(job_id)
        self.store.transition(record, JobState.RETIRED, reason="retired")
        return record

    def dead_letters(self) -> List[CloneJobRecord]:
        """Jobs that exhausted their crash budget (the DLQ)."""
        return self.store.list((JobState.DEAD_LETTERED,))

    def retry_dead_letter(self, job_id: str) -> CloneJobRecord:
        """Requeue a dead-lettered job with a fresh crash budget."""
        return self.store.retry_dead_letter(job_id)

    def run_until_idle(self, *, executor: str = "auto",
                       max_workers: Optional[int] = None,
                       telemetry=None) -> list:
        """Run an in-process scheduler until the queue drains."""
        from repro.fleet.scheduler import FleetScheduler
        scheduler = FleetScheduler(self.store, executor=executor,
                                   max_workers=max_workers,
                                   telemetry=telemetry)
        return scheduler.run_until_idle()

    def flight_log(self):
        """The store's parsed flight log (empty when never enabled)."""
        from repro.fleet.obs.flight import read_flight_log
        return read_flight_log(self.store.flight_path)

    def drift_report(self, **kwargs):
        """Fidelity-drift verdicts over the store's gated history."""
        from repro.fleet.obs.drift import analyze_drift
        return analyze_drift(self.store.fidelity_history(), **kwargs)

    def watch(self, job_id: str, *, timeout_s: float = 300.0,
              poll_s: float = 0.2) -> CloneJobRecord:
        """Poll until ``job_id`` reaches a terminal state (or time out).

        Returns the final record; raises :class:`TimeoutError` when the
        deadline passes first (the job keeps running — watching is
        read-only).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.store.get(job_id)
            if record.terminal:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record.state} after "
                    f"{timeout_s:.0f}s")
            time.sleep(poll_s)
