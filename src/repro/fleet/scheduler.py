"""The fleet scheduler: shard submitted jobs across a worker pool.

Jobs fan out across a ``concurrent.futures`` pool exactly like tiers do
inside one clone — same executor modes (``process``/``thread``/
``serial``/``auto``) and the same degradation ladder: a pool that
breaks mid-run (a worker killed) degrades process → thread → serial and
re-runs only the jobs that did not finish. Ownership is tracked with
store leases (claimed before dispatch, released afterwards — on *any*
exit, including a crash unwinding through the scheduler), each claim
carrying a fencing epoch the workers heartbeat and re-check, so a job
whose owner truly died is requeued by
:meth:`~repro.fleet.store.JobStore.recover` at the top of every round
while a zombie owner can no longer publish. Jobs requeued after a
crash are honoured only once their exponential backoff
(``next_attempt_at``) has elapsed.

Priority: higher ``CloneJobSpec.priority`` first, ties broken by
submission time. Worker telemetry payloads are absorbed into the
scheduler's session when one is given, so one registry shows the whole
fleet (including each job's shared-cache hits).

**Graceful drain**: while ``run_until_idle`` runs on the main thread,
SIGTERM/SIGINT request a drain — no new rounds or jobs are claimed,
in-flight jobs finish, unstarted ones stay ``submitted``, and every
lease is released on the way out. A second signal is a hard stop:
pending pool futures are cancelled and the scheduler stops waiting
(still-running workers are fenced off by the next claim's epoch).
Previous signal dispositions are restored when the drain completes.
The scheduler is also a context manager — ``with FleetScheduler(...)
as s: s.run_until_idle()`` guarantees :meth:`close` (and with it the
status endpoint's socket) even when the run raises.

``serve_metrics=`` starts a :class:`~repro.fleet.obs.httpd.
FleetStatusServer` for the store — ``/metrics``, ``/jobs`` and
``/healthz`` stay live while the fleet drains (and after, until
:meth:`FleetScheduler.close`). ``chaos=`` installs a
:class:`~repro.fleet.chaos.ChaosPlan` for the duration of
``run_until_idle`` and forwards it to pool workers.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    wait,
)
from typing import Dict, List, Optional, Set, Union

# The tier pipeline's pool plumbing is deliberately reused — jobs
# degrade process → thread → serial exactly like tiers do.
from repro.core.pipeline import _DEGRADATION, _make_pool, resolve_executor
from repro.fleet.chaos import ChaosPlan, crashpoint, maybe_active
from repro.fleet.job import JobState
from repro.fleet.obs.httpd import FleetStatusServer, parse_serve_address
from repro.fleet.store import JobStore
from repro.fleet.worker import JobWorkerOutcome, execute_job
from repro.telemetry.session import Telemetry
from repro.util.errors import ConfigurationError

__all__ = ["FleetScheduler"]


class FleetScheduler:
    """Drain a job store's submitted queue through a worker pool."""

    def __init__(
        self,
        store: Union[JobStore, str],
        *,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        telemetry: Union[bool, Telemetry, None] = None,
        serve_metrics: Union[bool, int, str, None] = None,
        chaos: Optional[ChaosPlan] = None,
    ) -> None:
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self.executor = executor
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers!r}")
        self.max_workers = max_workers
        if telemetry is True:
            telemetry = Telemetry(label="fleet")
        elif telemetry is False:
            telemetry = None
        if telemetry is not None and not isinstance(telemetry, Telemetry):
            raise ConfigurationError(
                f"telemetry must be a Telemetry session or a bool, "
                f"got {telemetry!r}")
        self.telemetry = telemetry
        if chaos is not None and not isinstance(chaos, ChaosPlan):
            raise ConfigurationError(
                f"chaos must be a ChaosPlan, got {chaos!r}")
        self.chaos = chaos
        self._drain = threading.Event()
        self._abort = threading.Event()
        self._completed = self.store.registry.counter(
            "ditto_fleet_jobs_completed_total",
            "fleet jobs that reached a terminal state", ("state",))
        #: live status endpoint (None unless ``serve_metrics`` asked)
        self.status_server: Optional[FleetStatusServer] = None
        if parse_serve_address(serve_metrics) is not None:
            registries = ((self.telemetry.registry,)
                          if self.telemetry is not None else ())
            self.status_server = FleetStatusServer(
                self.store, registries=registries, address=serve_metrics)

    def close(self) -> None:
        """Stop the status endpoint, if one is serving (idempotent)."""
        if self.status_server is not None:
            self.status_server.close()
            self.status_server = None

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # graceful drain
    # ------------------------------------------------------------------ #
    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()

    def request_drain(self, *, hard: bool = False) -> None:
        """Stop claiming work; in-flight jobs finish (``hard=True``
        also stops waiting: pending pool futures are cancelled)."""
        if hard:
            self._abort.set()
        if not self._drain.is_set():
            self._drain.set()
            self.store._emit("drain_requested", hard=hard)
            self.store.registry.counter(
                "ditto_fleet_drains_total",
                "graceful-drain requests observed by the scheduler",
                ()).inc()

    def _handle_signal(self, signum, frame) -> None:
        # First signal: drain. Second: hard stop.
        self.request_drain(hard=self._drain.is_set())

    def _install_signal_handlers(self) -> Dict[int, object]:
        if threading.current_thread() is not threading.main_thread():
            return {}  # signal.signal only works on the main thread
        restore: Dict[int, object] = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                restore[signum] = signal.signal(signum,
                                                self._handle_signal)
            except (ValueError, OSError):  # pragma: no cover
                pass
        return restore

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run_until_idle(self) -> List[JobWorkerOutcome]:
        """Run rounds until no submitted job remains; returns outcomes.

        Each round: requeue crash-orphaned jobs, resolve cancellations
        that arrived before dispatch, claim leases on the runnable
        queue (skipping crash backoffs that have not elapsed), and
        drain it through the pool. New submissions landing between
        rounds are picked up by the next round; a drain request ends
        the loop after the current round.
        """
        outcomes: List[JobWorkerOutcome] = []
        restore = self._install_signal_handlers()
        if self.telemetry is not None:
            self.telemetry.activate()
        try:
            with maybe_active(self.chaos):
                while True:
                    batch = self._run_round()
                    if batch is None:
                        break
                    outcomes.extend(batch)
                    if self._drain.is_set():
                        break
        finally:
            if self.telemetry is not None:
                self.telemetry.deactivate()
            for signum, previous in restore.items():
                signal.signal(signum, previous)
        return outcomes

    # ------------------------------------------------------------------ #
    # one round
    # ------------------------------------------------------------------ #
    def _run_round(self) -> Optional[List[JobWorkerOutcome]]:
        """One claim-and-drain cycle; None when the queue is empty."""
        if self._drain.is_set():
            return None
        self.store.recover()
        now = time.time()
        runnable, backing_off = [], []
        for record in self.store.list((JobState.SUBMITTED,)):
            if self.store.cancel_requested(record.job_id):
                self._cancel_before_start(record)
                continue
            if record.next_attempt_at > now:
                backing_off.append(record)
                continue
            runnable.append(record)
        if not runnable:
            if backing_off and not self._drain.is_set():
                # Wait out the earliest crash backoff (in small slices
                # so drain signals stay responsive), then go again.
                delay = (min(r.next_attempt_at for r in backing_off)
                         - time.time())
                if delay > 0:
                    time.sleep(min(delay, 0.2))
                return []
            return None
        runnable.sort(key=lambda r: (-r.spec.priority, r.created_at,
                                     r.job_id))
        crashpoint("scheduler.round.pre_claim")
        claims: Dict[str, int] = {}
        for record in runnable:
            epoch = self.store.claim_lease(record.job_id)
            if epoch is not None:
                claims[record.job_id] = epoch
        if not claims:
            return None  # another scheduler owns the whole queue
        crashpoint("scheduler.round.post_claim")
        try:
            outcomes = self._run_batch(claims)
        finally:
            # Leases must die with this invocation — even when a crash
            # (KeyboardInterrupt, a kill unwinding through a pool) is
            # propagating — so recovery sees orphaned jobs, not
            # zombies. Epoch-checked: a newer claim minted after a
            # false requeue is never clobbered.
            for job_id, epoch in claims.items():
                self.store.release_lease(job_id, epoch=epoch)
        for outcome in outcomes:
            if self.telemetry is not None:
                self.telemetry.absorb(outcome.telemetry)
            if outcome.fenced:
                continue  # the job belongs to a newer claim now
            self._completed.inc(1, state=outcome.state.value)
        return outcomes

    def _cancel_before_start(self, record) -> None:
        epoch = self.store.claim_lease(record.job_id)
        if epoch is None:
            return
        try:
            self.store.transition(record, JobState.CANCELLED,
                                  reason="cancelled before start")
            record.error = "cancelled before start"
            self.store.save(record)
        finally:
            self.store.release_lease(record.job_id, epoch=epoch)

    # ------------------------------------------------------------------ #
    # batch execution (executor + degradation ladder)
    # ------------------------------------------------------------------ #
    def _run_batch(self, claims: Dict[str, int]
                   ) -> List[JobWorkerOutcome]:
        job_ids = list(claims)
        mode = resolve_executor(self.executor, n_tasks=len(job_ids),
                                max_workers=self.max_workers)
        if mode == "serial":
            outcomes = []
            for job_id in job_ids:
                if self._drain.is_set():
                    break  # unstarted claims release; records stay queued
                outcomes.append(self._run_one(job_id, claims[job_id]))
            return outcomes
        workers = (self.max_workers if self.max_workers is not None
                   else (os.cpu_count() or 1))
        workers = max(1, min(workers, len(job_ids)))
        outcomes: List[JobWorkerOutcome] = []
        finished: Set[str] = set()
        pending = list(job_ids)
        ladder = _DEGRADATION[mode]
        for rung, current in enumerate(ladder):
            if not pending or self._drain.is_set():
                break
            if current == "serial":
                for job_id in pending:
                    if self._drain.is_set():
                        break
                    outcomes.append(self._run_one(job_id, claims[job_id]))
                    finished.add(job_id)
                break
            try:
                outcomes.extend(self._run_pool(current, workers, pending,
                                               claims, finished))
                break
            except BrokenExecutor:
                self._count_degradation(current, ladder[rung + 1])
                pending = [job_id for job_id in pending
                           if job_id not in finished]
        return outcomes

    def _run_one(self, job_id: str, epoch: int) -> JobWorkerOutcome:
        return execute_job(self.store.root, job_id,
                           collect_telemetry=self.telemetry is not None,
                           epoch=epoch, chaos=self.chaos)

    def _run_pool(self, mode: str, workers: int, job_ids: List[str],
                  claims: Dict[str, int],
                  finished: Set[str]) -> List[JobWorkerOutcome]:
        """Drain ``job_ids`` through one pool; BrokenExecutor escapes.

        ``finished`` accrues job ids as their futures resolve, so a
        degradation rung re-runs only the unfinished remainder (and a
        drain knows what it can still cancel).
        """
        outcomes: List[JobWorkerOutcome] = []
        collect = self.telemetry is not None
        pool = _make_pool(mode, workers)
        try:
            active = {pool.submit(execute_job, self.store.root, job_id,
                                  collect, epoch=claims[job_id],
                                  chaos=self.chaos): job_id
                      for job_id in job_ids}
            while active:
                done, _ = wait(set(active),
                               return_when=FIRST_COMPLETED, timeout=0.2)
                for future in done:
                    job_id = active.pop(future)
                    finished.add(job_id)
                    try:
                        outcomes.append(future.result())
                    except BrokenExecutor:
                        raise
                    except Exception as error:  # noqa: BLE001
                        # execute_job converts ordinary failures into
                        # job state itself; reaching here means the
                        # worker blew up outside that boundary (e.g. an
                        # unpicklable payload). Fail the job explicitly
                        # rather than leaving it running forever.
                        outcomes.append(self._fail_out_of_band(
                            job_id, error))
                if self._drain.is_set() and active:
                    # Drain: in-flight futures run to completion,
                    # unstarted ones are cancelled (their jobs stay
                    # submitted and their leases release upstream).
                    for future in list(active):
                        if future.cancel():
                            finished.add(active.pop(future))
                if self._abort.is_set():
                    break  # hard stop: give up on running futures too
        finally:
            pool.shutdown(wait=not self._abort.is_set(),
                          cancel_futures=True)
        return outcomes

    def _fail_out_of_band(self, job_id: str,
                          error: Exception) -> JobWorkerOutcome:
        record = self.store.get(job_id)
        message = f"worker error: {type(error).__name__}: {error}"
        if not record.terminal:
            # Persist the message *before* the FAILED edge so show,
            # /jobs and the flight log all carry it.
            record.error = message
            if record.running:
                self.store.transition(record, JobState.SUBMITTED,
                                      reason="worker error")
            self.store.transition(record, JobState.FAILED,
                                  reason=message[:160])
        return JobWorkerOutcome(job_id=job_id, state=record.state,
                                error=message)

    def _count_degradation(self, from_mode: str, to_mode: str) -> None:
        self.store.registry.counter(
            "ditto_fleet_scheduler_degradations_total",
            "fleet pool degradations after a broken worker pool",
            ("from_mode", "to_mode"),
        ).inc(1, from_mode=from_mode, to_mode=to_mode)
        self.store._emit("pool_degraded", from_mode=from_mode,
                         to_mode=to_mode)
