"""The fleet scheduler: shard submitted jobs across a worker pool.

Jobs fan out across a ``concurrent.futures`` pool exactly like tiers do
inside one clone — same executor modes (``process``/``thread``/
``serial``/``auto``) and the same degradation ladder: a pool that
breaks mid-run (a worker killed) degrades process → thread → serial and
re-runs only the jobs that did not finish. Ownership is tracked with
store leases (claimed before dispatch, released afterwards — on *any*
exit, including a crash unwinding through the scheduler), so a job
whose owner truly died is requeued by
:meth:`~repro.fleet.store.JobStore.recover` at the top of every round.

Priority: higher ``CloneJobSpec.priority`` first, ties broken by
submission time. Worker telemetry payloads are absorbed into the
scheduler's session when one is given, so one registry shows the whole
fleet (including each job's shared-cache hits).

``serve_metrics=`` starts a :class:`~repro.fleet.obs.httpd.
FleetStatusServer` for the store — ``/metrics``, ``/jobs`` and
``/healthz`` stay live while the fleet drains (and after, until
:meth:`FleetScheduler.close`). Scrapes see the scheduler's registry
(worker payloads included, as they are absorbed round by round).
"""

from __future__ import annotations

import os
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    wait,
)
from typing import List, Optional, Union

# The tier pipeline's pool plumbing is deliberately reused — jobs
# degrade process → thread → serial exactly like tiers do.
from repro.core.pipeline import _DEGRADATION, _make_pool, resolve_executor
from repro.fleet.job import JobState
from repro.fleet.obs.httpd import FleetStatusServer, parse_serve_address
from repro.fleet.store import JobStore
from repro.fleet.worker import JobWorkerOutcome, execute_job
from repro.telemetry.session import Telemetry
from repro.util.errors import ConfigurationError

__all__ = ["FleetScheduler"]


class FleetScheduler:
    """Drain a job store's submitted queue through a worker pool."""

    def __init__(
        self,
        store: Union[JobStore, str],
        *,
        executor: str = "auto",
        max_workers: Optional[int] = None,
        telemetry: Union[bool, Telemetry, None] = None,
        serve_metrics: Union[bool, int, str, None] = None,
    ) -> None:
        self.store = store if isinstance(store, JobStore) else JobStore(store)
        self.executor = executor
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers!r}")
        self.max_workers = max_workers
        if telemetry is True:
            telemetry = Telemetry(label="fleet")
        elif telemetry is False:
            telemetry = None
        if telemetry is not None and not isinstance(telemetry, Telemetry):
            raise ConfigurationError(
                f"telemetry must be a Telemetry session or a bool, "
                f"got {telemetry!r}")
        self.telemetry = telemetry
        self._completed = self.store.registry.counter(
            "ditto_fleet_jobs_completed_total",
            "fleet jobs that reached a terminal state", ("state",))
        #: live status endpoint (None unless ``serve_metrics`` asked)
        self.status_server: Optional[FleetStatusServer] = None
        if parse_serve_address(serve_metrics) is not None:
            registries = ((self.telemetry.registry,)
                          if self.telemetry is not None else ())
            self.status_server = FleetStatusServer(
                self.store, registries=registries, address=serve_metrics)

    def close(self) -> None:
        """Stop the status endpoint, if one is serving (idempotent)."""
        if self.status_server is not None:
            self.status_server.close()
            self.status_server = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run_until_idle(self) -> List[JobWorkerOutcome]:
        """Run rounds until no submitted job remains; returns outcomes.

        Each round: requeue crash-orphaned jobs, resolve cancellations
        that arrived before dispatch, claim leases on the runnable
        queue, and drain it through the pool. New submissions landing
        between rounds are picked up by the next round.
        """
        outcomes: List[JobWorkerOutcome] = []
        if self.telemetry is not None:
            self.telemetry.activate()
        try:
            while True:
                batch = self._run_round()
                if batch is None:
                    break
                outcomes.extend(batch)
        finally:
            if self.telemetry is not None:
                self.telemetry.deactivate()
        return outcomes

    # ------------------------------------------------------------------ #
    # one round
    # ------------------------------------------------------------------ #
    def _run_round(self) -> Optional[List[JobWorkerOutcome]]:
        """One claim-and-drain cycle; None when the queue is empty."""
        self.store.recover()
        runnable = []
        for record in self.store.list((JobState.SUBMITTED,)):
            if self.store.cancel_requested(record.job_id):
                self._cancel_before_start(record)
                continue
            runnable.append(record)
        if not runnable:
            return None
        runnable.sort(key=lambda r: (-r.spec.priority, r.created_at,
                                     r.job_id))
        claimed = [record.job_id for record in runnable
                   if self.store.claim_lease(record.job_id)]
        if not claimed:
            return None  # another scheduler owns the whole queue
        try:
            outcomes = self._run_batch(claimed)
        finally:
            # Leases must die with this invocation — even when a crash
            # (KeyboardInterrupt, a kill unwinding through a pool) is
            # propagating — so recovery sees orphaned jobs, not zombies.
            for job_id in claimed:
                self.store.release_lease(job_id)
        for outcome in outcomes:
            if self.telemetry is not None:
                self.telemetry.absorb(outcome.telemetry)
            self._completed.inc(1, state=outcome.state.value)
        return outcomes

    def _cancel_before_start(self, record) -> None:
        if not self.store.claim_lease(record.job_id):
            return
        try:
            self.store.transition(record, JobState.CANCELLED,
                                  reason="cancelled before start")
            record.error = "cancelled before start"
            self.store.save(record)
        finally:
            self.store.release_lease(record.job_id)

    # ------------------------------------------------------------------ #
    # batch execution (executor + degradation ladder)
    # ------------------------------------------------------------------ #
    def _run_batch(self, job_ids: List[str]) -> List[JobWorkerOutcome]:
        mode = resolve_executor(self.executor, n_tasks=len(job_ids),
                                max_workers=self.max_workers)
        if mode == "serial":
            return [self._run_one(job_id) for job_id in job_ids]
        workers = (self.max_workers if self.max_workers is not None
                   else (os.cpu_count() or 1))
        workers = max(1, min(workers, len(job_ids)))
        outcomes: List[JobWorkerOutcome] = []
        pending = list(job_ids)
        ladder = _DEGRADATION[mode]
        for rung, current in enumerate(ladder):
            if not pending:
                break
            if current == "serial":
                outcomes.extend(self._run_one(job_id)
                                for job_id in pending)
                pending = []
                break
            try:
                outcomes.extend(self._run_pool(current, workers, pending))
                pending = []
                break
            except BrokenExecutor:
                self._count_degradation(current, ladder[rung + 1])
                pending = [job_id for job_id in pending
                           if not self._finished(job_id, outcomes)]
        return outcomes

    def _run_one(self, job_id: str) -> JobWorkerOutcome:
        return execute_job(self.store.root, job_id,
                           collect_telemetry=self.telemetry is not None)

    def _run_pool(self, mode: str, workers: int,
                  job_ids: List[str]) -> List[JobWorkerOutcome]:
        """Drain ``job_ids`` through one pool; BrokenExecutor escapes."""
        outcomes: List[JobWorkerOutcome] = []
        collect = self.telemetry is not None
        with _make_pool(mode, workers) as pool:
            active = {pool.submit(execute_job, self.store.root, job_id,
                                  collect): job_id
                      for job_id in job_ids}
            while active:
                done, _ = wait(set(active), return_when=FIRST_COMPLETED)
                for future in done:
                    job_id = active.pop(future)
                    try:
                        outcomes.append(future.result())
                    except BrokenExecutor:
                        raise
                    except Exception as error:  # noqa: BLE001
                        # execute_job converts ordinary failures into
                        # job state itself; reaching here means the
                        # worker blew up outside that boundary (e.g. an
                        # unpicklable payload). Fail the job explicitly
                        # rather than leaving it running forever.
                        outcomes.append(self._fail_out_of_band(
                            job_id, error))
        return outcomes

    def _fail_out_of_band(self, job_id: str,
                          error: Exception) -> JobWorkerOutcome:
        record = self.store.get(job_id)
        message = f"worker error: {type(error).__name__}: {error}"
        if not record.terminal:
            if record.running:
                self.store.transition(record, JobState.SUBMITTED,
                                      reason="worker error")
            record.error = message
            self.store.transition(record, JobState.FAILED,
                                  reason="worker error")
        return JobWorkerOutcome(job_id=job_id, state=record.state,
                                error=message)

    @staticmethod
    def _finished(job_id: str,
                  outcomes: List[JobWorkerOutcome]) -> bool:
        return any(outcome.job_id == job_id for outcome in outcomes)

    def _count_degradation(self, from_mode: str, to_mode: str) -> None:
        self.store.registry.counter(
            "ditto_fleet_scheduler_degradations_total",
            "fleet pool degradations after a broken worker pool",
            ("from_mode", "to_mode"),
        ).inc(1, from_mode=from_mode, to_mode=to_mode)
        self.store._emit("pool_degraded", from_mode=from_mode,
                         to_mode=to_mode)
