"""Fleet-scale cloning control plane.

Ditto frames cloning as a repeatable workflow — profile → generate →
tune → validate. This package runs that workflow as a *service*: many
clone jobs, one persistent digest-keyed store, a scheduler sharding
jobs across a worker pool, and a CLI (``python -m repro.fleet``) to
submit, watch, list and cancel.

- :class:`~repro.fleet.job.CloneJobSpec` /
  :class:`~repro.fleet.job.CloneJobRecord` — the typed job surface
  (a :class:`~repro.core.request.CloneRequest` plus scheduling
  metadata, and its durable lifecycle record);
- :class:`~repro.fleet.job.MigrationJobSpec` — the same surface for
  cross-environment migrations (a
  :class:`~repro.migrate.request.MigrationRequest`); migration jobs
  travel the ``migrating_*`` lifecycle states and share the store's
  leases, crash recovery, chaos and flight instrumentation;
- :class:`~repro.fleet.store.JobStore` — atomic, integrity-enveloped
  persistence with leases, cancel markers, shared profiles and the
  fleet-wide experiment cache;
- :class:`~repro.fleet.scheduler.FleetScheduler` — process/thread/
  serial fan-out with the tier pipeline's degradation ladder;
- :class:`~repro.fleet.client.FleetClient` — the user-facing handle;
- :mod:`repro.fleet.chaos` — seeded crashpoint injection
  (:class:`~repro.fleet.chaos.ChaosPlan`) for chaos-testing the
  control plane's crash recovery;
- :mod:`repro.fleet.obs` — the observability surface: flight recorder,
  live ``/metrics``/``/jobs`` endpoint, fidelity-drift monitor and the
  ``top`` dashboard.

See DESIGN.md ("Fleet job state machine" and "Flight recorder & drift
monitoring") for the lifecycle diagram and the event log's guarantees.
"""

from repro.fleet.chaos import (
    CRASHPOINTS,
    ChaosAction,
    ChaosKill,
    ChaosPlan,
)
from repro.fleet.client import FleetClient
from repro.fleet.job import (
    CloneJobRecord,
    CloneJobSpec,
    JobResult,
    JobState,
    MigrationJobSpec,
    TransitionRecord,
)
from repro.fleet.obs import (
    FleetStatusServer,
    FlightRecorder,
    read_flight_log,
)
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.store import JobStore
from repro.fleet.worker import JobWorkerOutcome, execute_job

__all__ = [
    "CRASHPOINTS",
    "ChaosAction",
    "ChaosKill",
    "ChaosPlan",
    "CloneJobRecord",
    "CloneJobSpec",
    "FleetClient",
    "FleetScheduler",
    "FleetStatusServer",
    "FlightRecorder",
    "JobResult",
    "JobState",
    "JobStore",
    "JobWorkerOutcome",
    "MigrationJobSpec",
    "TransitionRecord",
    "execute_job",
    "read_flight_log",
]
