"""Operate a cloning fleet from the command line.

::

    python -m repro.fleet submit --store DIR --workload twotier
        [--qps 2000] [--duration 0.015] [--platform A] [--seed 17]
        [--validate] [--tolerance METRIC=REL ...] [--fast]
        [--tune-iterations N] [--no-finetune] [--name NAME]
        [--priority P]
    python -m repro.fleet run    --store DIR [--executor auto]
        [--max-workers N] [--telemetry]
    python -m repro.fleet list   --store DIR [--state submitted ...]
    python -m repro.fleet watch  --store DIR JOB [--timeout 300]
    python -m repro.fleet show   --store DIR JOB
    python -m repro.fleet cancel --store DIR JOB
    python -m repro.fleet retire --store DIR JOB

``submit`` prints the new job id (the only stdout line, so shell
scripts can capture it). ``watch`` exits **0** when the job publishes,
**1** when it fails, **2** when it was cancelled and **3** on timeout.
``run`` drains the queue and exits 0 unless some job failed. The store
directory is shared state: submit from one shell, run the scheduler in
another, watch from a third.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.app.service import Deployment
from repro.app.workloads import DEPLOYMENT_BUILDERS, WORKLOAD_BUILDERS
from repro.core.request import CloneRequest
from repro.fleet.client import FleetClient
from repro.fleet.job import JobState
from repro.hw.platform import _PLATFORMS, platform_by_name
from repro.loadgen.generator import LoadSpec
from repro.profiling.artifacts import ProfilingBudget
from repro.runtime.experiment import ExperimentConfig
from repro.util.errors import ReproError
from repro.validation.gate import FidelityGate

#: a deliberately small profiling budget for smoke runs (same shape the
#: test suite uses) — clones stay deterministic, just coarser
FAST_BUDGET = ProfilingBudget(
    sampled_requests=6, max_accesses_per_spec=384,
    max_istream_per_block=1024, branch_outcomes_per_site=96,
    max_sites_per_population=6, dep_samples_per_block=32,
    profile_duration_s=0.012,
)

WATCH_EXIT = {JobState.PUBLISHED: 0, JobState.RETIRED: 0,
              JobState.FAILED: 1, JobState.CANCELLED: 2}


def _workload_names() -> List[str]:
    return sorted(set(WORKLOAD_BUILDERS) | set(DEPLOYMENT_BUILDERS))


def _build_deployment(name: str) -> Deployment:
    if name in DEPLOYMENT_BUILDERS:
        return DEPLOYMENT_BUILDERS[name]()
    return Deployment.single(WORKLOAD_BUILDERS[name]())


def _parse_tolerances(entries: List[str]) -> Dict[str, float]:
    tolerances: Dict[str, float] = {}
    for entry in entries:
        name, _, value = entry.partition("=")
        if not name or not value:
            raise SystemExit(f"--tolerance takes METRIC=REL, got {entry!r}")
        try:
            tolerances[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--tolerance value for {name!r} must be a number, "
                f"got {value!r}") from None
    return tolerances


def _build_request(args: argparse.Namespace) -> CloneRequest:
    deployment = _build_deployment(args.workload)
    load = LoadSpec.open_loop(args.qps)
    config = ExperimentConfig(platform=platform_by_name(args.platform),
                              duration_s=args.duration, seed=args.seed)
    validate: Optional[FidelityGate] = None
    if args.validate:
        tolerances = _parse_tolerances(args.tolerance)
        # float values are taken as relative bounds by the gate
        validate = FidelityGate(tolerances=tolerances or None)
    return CloneRequest(
        deployment=deployment,
        load=load,
        config=config,
        seed=args.seed,
        budget=FAST_BUDGET if args.fast else None,
        fine_tune_tiers=False if args.no_finetune else None,
        max_tune_iterations=args.tune_iterations,
        validate=validate,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    client = FleetClient(args.store)
    record = client.submit(_build_request(args), name=args.name,
                           priority=args.priority)
    print(record.job_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.telemetry.session import Telemetry
    session = Telemetry(label="fleet") if args.telemetry else None
    client = FleetClient(args.store)
    outcomes = client.run_until_idle(executor=args.executor,
                                     max_workers=args.max_workers,
                                     telemetry=session)
    failed = 0
    for outcome in outcomes:
        line = f"{outcome.job_id}  {outcome.state.value}"
        if outcome.error:
            line += f"  [{outcome.error}]"
        print(line, file=sys.stderr)
        if outcome.state is JobState.FAILED:
            failed += 1
    print(f"{len(outcomes)} job(s) finished, {failed} failed",
          file=sys.stderr)
    if session is not None:
        def total(name: str) -> int:
            metric = session.registry.get(name)
            return int(metric.total()) if metric is not None else 0
        print("telemetry: shared-cache hits="
              f"{total('ditto_fleet_shared_cache_hits_total')} "
              f"stores={total('ditto_fleet_shared_cache_stores_total')} "
              "profile reuses="
              f"{total('ditto_fleet_profile_reuse_total')}",
              file=sys.stderr)
    return 1 if failed else 0


def _cmd_list(args: argparse.Namespace) -> int:
    states = ([JobState(state) for state in args.state]
              if args.state else None)
    for record in FleetClient(args.store).list(states):
        print(record.describe())
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    client = FleetClient(args.store)
    try:
        record = client.watch(args.job_id, timeout_s=args.timeout,
                              poll_s=args.poll)
    except TimeoutError as error:
        print(error, file=sys.stderr)
        return 3
    print(record.describe())
    return WATCH_EXIT.get(record.state, 1)


def _cmd_show(args: argparse.Namespace) -> int:
    client = FleetClient(args.store)
    record = client.get(args.job_id)
    print(record.describe())
    print(f"  spec digest: {record.spec_digest}")
    print(f"  remediation attempts: {record.attempts}")
    if record.result_digest:
        print(f"  result digest: {record.result_digest}")
    for edge in record.history:
        reason = f"  ({edge.reason})" if edge.reason else ""
        print(f"  {edge.from_state.value} -> {edge.to_state.value}{reason}")
    if record.state is JobState.PUBLISHED or record.result_digest:
        try:
            result = client.result(args.job_id)
        except (ReproError, FileNotFoundError):
            return 0
        print(f"  executor: {result.executor}; cache hits/misses "
              f"{result.cache_stats.hits}/{result.cache_stats.misses}")
        if result.fidelity is not None:
            print(f"  fidelity: "
                  f"{'PASS' if result.fidelity.get('passed') else 'FAIL'}")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    record = FleetClient(args.store).cancel(args.job_id)
    print(record.describe())
    return 0


def _cmd_retire(args: argparse.Namespace) -> int:
    record = FleetClient(args.store).retire(args.job_id)
    print(record.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="operate a Ditto cloning fleet")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--store", required=True,
                        help="job store root directory")
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser("submit", parents=[common],
                                 help="queue one clone job")
    submit.add_argument("--workload", required=True,
                        choices=_workload_names())
    submit.add_argument("--qps", type=float, default=2000.0)
    submit.add_argument("--duration", type=float, default=0.015,
                        help="profiling duration, seconds")
    submit.add_argument("--platform", default="A",
                        choices=sorted(_PLATFORMS))
    submit.add_argument("--seed", type=int, default=17)
    submit.add_argument("--fast", action="store_true",
                        help="smoke-test profiling budget")
    submit.add_argument("--validate", action="store_true",
                        help="gate the clone through a FidelityGate")
    submit.add_argument("--tolerance", action="append", default=[],
                        metavar="METRIC=REL")
    submit.add_argument("--tune-iterations", type=int, default=None)
    submit.add_argument("--no-finetune", action="store_true")
    submit.add_argument("--name", default="")
    submit.add_argument("--priority", type=int, default=0)
    submit.set_defaults(func=_cmd_submit)

    run = commands.add_parser("run", parents=[common],
                              help="drain the queue, then exit")
    run.add_argument("--executor", default="auto",
                     choices=("auto", "process", "thread", "serial"))
    run.add_argument("--max-workers", type=int, default=None)
    run.add_argument("--telemetry", action="store_true",
                     help="aggregate fleet telemetry while running")
    run.set_defaults(func=_cmd_run)

    list_cmd = commands.add_parser("list", parents=[common],
                                   help="list jobs in the store")
    list_cmd.add_argument("--state", action="append", default=[],
                          choices=[state.value for state in JobState])
    list_cmd.set_defaults(func=_cmd_list)

    watch = commands.add_parser("watch", parents=[common],
                                help="wait for a job to finish")
    watch.add_argument("job_id")
    watch.add_argument("--timeout", type=float, default=300.0)
    watch.add_argument("--poll", type=float, default=0.2)
    watch.set_defaults(func=_cmd_watch)

    show = commands.add_parser("show", parents=[common],
                               help="one job's record and history")
    show.add_argument("job_id")
    show.set_defaults(func=_cmd_show)

    cancel = commands.add_parser("cancel", parents=[common],
                                 help="cancel a queued or running job")
    cancel.add_argument("job_id")
    cancel.set_defaults(func=_cmd_cancel)

    retire = commands.add_parser("retire", parents=[common],
                                 help="retire a published clone")
    retire.add_argument("job_id")
    retire.set_defaults(func=_cmd_retire)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
