"""Operate a cloning fleet from the command line.

::

    python -m repro.fleet submit --store DIR --workload twotier
        [--qps 2000] [--duration 0.015] [--platform A] [--seed 17]
        [--validate] [--tolerance METRIC=REL ...] [--fast]
        [--tune-iterations N] [--no-finetune] [--name NAME]
        [--priority P] [--max-crashes N]
    python -m repro.fleet migrate --store DIR --bundle BUNDLE.json
        --destination B [--source-platform A]
        [--platform-file SPEC.json ...] [--destination-nodes N]
        [--allow-degraded] [--seed 17] [--duration 0.25]
        [--max-tune-iterations 5] [--tolerance METRIC=REL ...]
        [--max-sim-events N] [--sim-deadline S] [--name NAME]
        [--priority P] [--max-crashes N] [--flight]
    python -m repro.fleet run    --store DIR [--executor auto]
        [--max-workers N] [--telemetry] [--save RUN.json] [--flight]
        [--serve [HOST]:PORT] [--serve-linger SECONDS]
        [--chaos PLAN.json]
    python -m repro.fleet dlq    --store DIR list
    python -m repro.fleet dlq    --store DIR retry JOB
    python -m repro.fleet list   --store DIR [--state submitted ...]
    python -m repro.fleet watch  --store DIR JOB [--timeout 300]
    python -m repro.fleet show   --store DIR JOB
    python -m repro.fleet cancel --store DIR JOB
    python -m repro.fleet retire --store DIR JOB
    python -m repro.fleet top    --store DIR [--interval 2]
        [--iterations 1]
    python -m repro.fleet drift  --store DIR [--warn 0.8] [--window 3]
        [--strict] [--json] [--limit N]
    python -m repro.fleet trace  --store DIR --out TRACE.json
        [--run RUN.json]

``submit`` and ``migrate`` print the new job id (the only stdout
line, so shell scripts can capture it); ``migrate`` queues a
cross-environment migration of a saved clone bundle (see
``repro.migrate`` — the job travels the ``migrating_*`` lifecycle
states and publishes a ``ditto-migration/1`` artifact or fails with
the refusing stage in its error). ``watch`` exits **0** when the job publishes,
**1** when it fails or is dead-lettered, **2** when it was cancelled
and **3** on timeout. ``run`` drains the queue and exits 0 unless some
job failed; SIGTERM/SIGINT drain it gracefully (in-flight jobs finish,
the rest stay queued; a second signal hard-stops). The store directory
is shared state: submit from one shell, run the scheduler in another,
watch from a third.

Chaos: ``run --chaos PLAN.json`` installs a crashpoint plan (see
``repro.fleet.chaos``) for the whole run — a ``kill`` action exits the
process with status **70** at the named crashpoint, leaving the store
for the next ``run`` to recover. A job that keeps killing its workers
exhausts its crash budget (``submit --max-crashes``, default from the
store config) and lands in the dead-letter queue: ``dlq list`` shows
it, ``dlq retry JOB`` requeues it with a fresh budget.

Observability: ``--flight`` (on ``submit`` or ``run``) enables the
store's flight recorder — every later process sharing the store joins
the log automatically. ``run --serve :9090`` serves ``/metrics``,
``/jobs`` and ``/healthz`` while draining (``--serve-linger`` keeps it
up afterwards, e.g. for CI to curl). ``run --telemetry`` prints the
full telemetry report for the drained fleet; ``top`` renders the live
dashboard, ``drift`` the fidelity-drift table (exit 1 with ``--strict``
when any series is DRIFTING), and ``trace`` exports the flight log —
optionally merged with a saved telemetry run's spans — as a Perfetto/
``chrome://tracing`` file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.app.service import Deployment
from repro.app.workloads import DEPLOYMENT_BUILDERS, WORKLOAD_BUILDERS
from repro.core.request import CloneRequest
from repro.fleet.client import FleetClient
from repro.fleet.job import JobState
from repro.hw.platform import _PLATFORMS, platform_by_name
from repro.loadgen.generator import LoadSpec
from repro.profiling.artifacts import ProfilingBudget
from repro.runtime.experiment import ExperimentConfig
from repro.util.errors import ReproError
from repro.validation.gate import FidelityGate

#: a deliberately small profiling budget for smoke runs (same shape the
#: test suite uses) — clones stay deterministic, just coarser
FAST_BUDGET = ProfilingBudget(
    sampled_requests=6, max_accesses_per_spec=384,
    max_istream_per_block=1024, branch_outcomes_per_site=96,
    max_sites_per_population=6, dep_samples_per_block=32,
    profile_duration_s=0.012,
)

WATCH_EXIT = {JobState.PUBLISHED: 0, JobState.RETIRED: 0,
              JobState.FAILED: 1, JobState.DEAD_LETTERED: 1,
              JobState.CANCELLED: 2}


def _workload_names() -> List[str]:
    return sorted(set(WORKLOAD_BUILDERS) | set(DEPLOYMENT_BUILDERS))


def _build_deployment(name: str) -> Deployment:
    if name in DEPLOYMENT_BUILDERS:
        return DEPLOYMENT_BUILDERS[name]()
    return Deployment.single(WORKLOAD_BUILDERS[name]())


def _parse_tolerances(entries: List[str]) -> Dict[str, float]:
    tolerances: Dict[str, float] = {}
    for entry in entries:
        name, _, value = entry.partition("=")
        if not name or not value:
            raise SystemExit(f"--tolerance takes METRIC=REL, got {entry!r}")
        try:
            tolerances[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--tolerance value for {name!r} must be a number, "
                f"got {value!r}") from None
    return tolerances


def _build_request(args: argparse.Namespace) -> CloneRequest:
    deployment = _build_deployment(args.workload)
    load = LoadSpec.open_loop(args.qps)
    config = ExperimentConfig(platform=platform_by_name(args.platform),
                              duration_s=args.duration, seed=args.seed,
                              shards=args.shards)
    validate: Optional[FidelityGate] = None
    if args.validate:
        tolerances = _parse_tolerances(args.tolerance)
        # float values are taken as relative bounds by the gate
        validate = FidelityGate(tolerances=tolerances or None)
    return CloneRequest(
        deployment=deployment,
        load=load,
        config=config,
        seed=args.seed,
        budget=FAST_BUDGET if args.fast else None,
        fine_tune_tiers=False if args.no_finetune else None,
        max_tune_iterations=args.tune_iterations,
        validate=validate,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.fleet.store import JobStore
    store = JobStore(args.store, flight=True if args.flight else None)
    client = FleetClient(store)
    record = client.submit(_build_request(args), name=args.name,
                           priority=args.priority,
                           max_crashes=args.max_crashes)
    print(record.job_id)
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.fleet.store import JobStore
    from repro.hw.platform import load_platform_spec
    from repro.migrate.request import MigrationRequest
    for spec_file in args.platform_file:
        load_platform_spec(spec_file)
    request = MigrationRequest(
        bundle_path=args.bundle,
        destination=platform_by_name(args.destination),
        source_platform=(platform_by_name(args.source_platform)
                         if args.source_platform else None),
        destination_nodes=args.destination_nodes,
        allow_degraded=args.allow_degraded,
        seed=args.seed,
        duration_s=args.duration,
        max_tune_iterations=args.max_tune_iterations,
        tolerances=_parse_tolerances(args.tolerance) or None,
        max_sim_events=args.max_sim_events,
        sim_deadline_s=args.sim_deadline,
    )
    store = JobStore(args.store, flight=True if args.flight else None)
    client = FleetClient(store)
    record = client.submit(request, name=args.name,
                           priority=args.priority,
                           max_crashes=args.max_crashes)
    print(record.job_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.fleet.chaos import ChaosPlan
    from repro.fleet.scheduler import FleetScheduler
    from repro.fleet.store import JobStore
    from repro.telemetry.session import Telemetry
    session = Telemetry(label="fleet") if args.telemetry else None
    store = JobStore(args.store,
                     registry=session.registry if session else None,
                     flight=True if args.flight else None)
    chaos = ChaosPlan.from_file(args.chaos) if args.chaos else None
    with FleetScheduler(store, executor=args.executor,
                        max_workers=args.max_workers,
                        telemetry=session, serve_metrics=args.serve,
                        chaos=chaos) as scheduler:
        if scheduler.status_server is not None:
            print(f"serving fleet status on "
                  f"{scheduler.status_server.url}", file=sys.stderr)
        outcomes = scheduler.run_until_idle()
        failed = 0
        for outcome in outcomes:
            line = f"{outcome.job_id}  {outcome.state.value}"
            if outcome.error:
                line += f"  [{outcome.error}]"
            print(line, file=sys.stderr)
            if outcome.state is JobState.FAILED:
                failed += 1
        drained = " (drained)" if scheduler.draining else ""
        print(f"{len(outcomes)} job(s) finished, {failed} failed"
              f"{drained}", file=sys.stderr)
        if session is not None:
            def total(name: str) -> int:
                metric = session.registry.get(name)
                return int(metric.total()) if metric is not None else 0
            print("telemetry: shared-cache hits="
                  f"{total('ditto_fleet_shared_cache_hits_total')} "
                  f"stores={total('ditto_fleet_shared_cache_stores_total')} "
                  "profile reuses="
                  f"{total('ditto_fleet_profile_reuse_total')}",
                  file=sys.stderr)
            from repro.telemetry.report import render_report
            print(render_report(session.snapshot()), file=sys.stderr)
            if args.save:
                session.save(args.save)
                print(f"saved telemetry run to {args.save}",
                      file=sys.stderr)
        if args.serve_linger and scheduler.status_server is not None \
                and not scheduler.draining:
            time.sleep(args.serve_linger)
    return 1 if failed else 0


def _cmd_dlq(args: argparse.Namespace) -> int:
    client = FleetClient(args.store)
    if args.action == "list":
        records = client.dead_letters()
        for record in records:
            print(f"{record.describe()}  "
                  f"(crashes: {record.crash_count})")
        if not records:
            print("dead-letter queue is empty", file=sys.stderr)
        return 0
    if not args.job_id:
        print("error: dlq retry takes a job id", file=sys.stderr)
        return 2
    record = client.retry_dead_letter(args.job_id)
    print(record.describe())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    states = ([JobState(state) for state in args.state]
              if args.state else None)
    for record in FleetClient(args.store).list(states):
        print(record.describe())
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    client = FleetClient(args.store)
    try:
        record = client.watch(args.job_id, timeout_s=args.timeout,
                              poll_s=args.poll)
    except TimeoutError as error:
        print(error, file=sys.stderr)
        return 3
    print(record.describe())
    return WATCH_EXIT.get(record.state, 1)


def _cmd_show(args: argparse.Namespace) -> int:
    client = FleetClient(args.store)
    record = client.get(args.job_id)
    print(record.describe())
    print(f"  spec digest: {record.spec_digest}")
    print(f"  remediation attempts: {record.attempts}")
    if record.crash_count:
        print(f"  crashes survived: {record.crash_count}")
    if record.result_digest:
        print(f"  result digest: {record.result_digest}")
    for edge in record.history:
        reason = f"  ({edge.reason})" if edge.reason else ""
        print(f"  {edge.from_state.value} -> {edge.to_state.value}{reason}")
    if record.state is JobState.PUBLISHED or record.result_digest:
        try:
            result = client.result(args.job_id)
        except (ReproError, FileNotFoundError):
            return 0
        print(f"  executor: {result.executor}; cache hits/misses "
              f"{result.cache_stats.hits}/{result.cache_stats.misses}")
        if result.remediation:
            print("  remediation ladder:")
            for rung, reason in enumerate(result.remediation, 1):
                print(f"    {rung}. {reason}")
        if result.fidelity is not None:
            print(f"  fidelity: "
                  f"{'PASS' if result.fidelity.get('passed') else 'FAIL'}")
            from repro.validation.gate import FidelityReport
            report = FidelityReport.from_dict(result.fidelity)
            for line in report.summary().splitlines():
                print(f"    {line}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.fleet.obs.flight import read_flight_log
    from repro.fleet.obs.top import render_top
    from repro.fleet.store import JobStore
    store = JobStore(args.store, flight=False)
    for iteration in range(max(1, args.iterations)):
        if iteration:
            time.sleep(args.interval)
            print()
        flight = read_flight_log(store.flight_path)
        print(render_top(store, flight))
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    from repro.fleet.obs.drift import (
        analyze_drift,
        load_fidelity_history,
        render_drift_report,
    )
    from repro.fleet.store import JobStore
    store = JobStore(args.store, flight=False)
    histories = load_fidelity_history(store.fidelity_dir)
    report = analyze_drift(histories, warn_fraction=args.warn,
                           trend_window=args.window)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_drift_report(report, store_root=args.store,
                                  limit=args.limit))
    return 1 if (args.strict and report.drifting()) else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.fleet.obs.flight import chrome_events, read_flight_log
    from repro.fleet.store import JobStore
    from repro.telemetry.chrometrace import chrome_trace
    from repro.telemetry.spans import SpanRecord
    store = JobStore(args.store, flight=False)
    flight = read_flight_log(store.flight_path)
    if not flight.events:
        print("no flight events recorded — enable the recorder with "
              "'run --flight' first", file=sys.stderr)
        return 1
    spans = []
    if args.run:
        from repro.telemetry.report import load_run
        spans = [SpanRecord.from_dict(entry)
                 for entry in load_run(args.run).get("spans", [])]
    doc = chrome_trace(spans,
                       extra_events=chrome_events(flight.events),
                       metadata={"source": "ditto fleet flight recorder",
                                 "store": args.store})
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
    merged = f" merged with {len(spans)} pipeline spans" if spans else ""
    print(f"wrote {args.out}: {len(flight.events)} flight events"
          f"{merged}"
          + (f" ({flight.skipped} corrupt lines skipped)"
             if flight.skipped else ""),
          file=sys.stderr)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    record = FleetClient(args.store).cancel(args.job_id)
    print(record.describe())
    return 0


def _cmd_retire(args: argparse.Namespace) -> int:
    record = FleetClient(args.store).retire(args.job_id)
    print(record.describe())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="operate a Ditto cloning fleet")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--store", required=True,
                        help="job store root directory")
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser("submit", parents=[common],
                                 help="queue one clone job")
    submit.add_argument("--workload", required=True,
                        choices=_workload_names())
    submit.add_argument("--qps", type=float, default=2000.0)
    submit.add_argument("--duration", type=float, default=0.015,
                        help="profiling duration, seconds")
    submit.add_argument("--platform", default="A",
                        choices=sorted(_PLATFORMS))
    submit.add_argument("--seed", type=int, default=17)
    submit.add_argument("--shards", type=int, default=None,
                        help="partition the profiling simulation across "
                             "N shard processes (deterministic: the "
                             "result is identical for any N)")
    submit.add_argument("--fast", action="store_true",
                        help="smoke-test profiling budget")
    submit.add_argument("--validate", action="store_true",
                        help="gate the clone through a FidelityGate")
    submit.add_argument("--tolerance", action="append", default=[],
                        metavar="METRIC=REL")
    submit.add_argument("--tune-iterations", type=int, default=None)
    submit.add_argument("--no-finetune", action="store_true")
    submit.add_argument("--name", default="")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--max-crashes", type=int, default=None,
                        help="crash budget before dead-lettering "
                        "(default: the store's)")
    submit.add_argument("--flight", action="store_true",
                        help="enable the store's flight recorder")
    submit.set_defaults(func=_cmd_submit)

    migrate = commands.add_parser(
        "migrate", parents=[common],
        help="queue a cross-environment migration of a saved bundle")
    migrate.add_argument("--bundle", required=True,
                         metavar="BUNDLE.json",
                         help="source clone bundle (integrity-stamped)")
    migrate.add_argument("--destination", required=True,
                         help="destination platform name (built-in or "
                         "registered via --platform-file)")
    migrate.add_argument("--source-platform", default="",
                         help="override the bundle's recorded source "
                         "platform (required for pre-provenance bundles)")
    migrate.add_argument("--platform-file", action="append", default=[],
                         metavar="SPEC.json",
                         help="register extra platform specs before "
                         "resolving names (repeatable)")
    migrate.add_argument("--destination-nodes", type=int, default=None,
                         help="node budget on the destination (default: "
                         "whatever the bundle's placements need)")
    migrate.add_argument("--allow-degraded", action="store_true",
                         help="consolidate overflowing placements "
                         "instead of refusing at preflight")
    migrate.add_argument("--seed", type=int, default=17)
    migrate.add_argument("--duration", type=float, default=0.25,
                         help="per-run simulated seconds for re-tune "
                         "and the destination gate")
    migrate.add_argument("--max-tune-iterations", type=int, default=5)
    migrate.add_argument("--tolerance", action="append", default=[],
                         metavar="METRIC=REL",
                         help="override the migration gate envelope")
    migrate.add_argument("--max-sim-events", type=int, default=None,
                         help="watchdog: events per simulation run")
    migrate.add_argument("--sim-deadline", type=float, default=None,
                         help="watchdog: wall-clock seconds per run")
    migrate.add_argument("--name", default="")
    migrate.add_argument("--priority", type=int, default=0)
    migrate.add_argument("--max-crashes", type=int, default=None,
                         help="crash budget before dead-lettering "
                         "(default: the store's)")
    migrate.add_argument("--flight", action="store_true",
                         help="enable the store's flight recorder")
    migrate.set_defaults(func=_cmd_migrate)

    run = commands.add_parser("run", parents=[common],
                              help="drain the queue, then exit")
    run.add_argument("--executor", default="auto",
                     choices=("auto", "process", "thread", "serial"))
    run.add_argument("--max-workers", type=int, default=None)
    run.add_argument("--telemetry", action="store_true",
                     help="aggregate fleet telemetry while running and "
                     "print the full report")
    run.add_argument("--save", default="", metavar="RUN.json",
                     help="with --telemetry: save the session document")
    run.add_argument("--flight", action="store_true",
                     help="enable the store's flight recorder")
    run.add_argument("--serve", nargs="?", const=True, default=None,
                     metavar="[HOST]:PORT",
                     help="serve /metrics, /jobs and /healthz while "
                     "draining (no value = ephemeral localhost port)")
    run.add_argument("--serve-linger", type=float, default=0.0,
                     metavar="SECONDS",
                     help="keep the status endpoint up after draining")
    run.add_argument("--chaos", default="", metavar="PLAN.json",
                     help="install a chaos crashpoint plan for the run")
    run.set_defaults(func=_cmd_run)

    dlq = commands.add_parser("dlq", parents=[common],
                              help="inspect or retry dead-lettered jobs")
    dlq.add_argument("action", choices=("list", "retry"))
    dlq.add_argument("job_id", nargs="?", default="")
    dlq.set_defaults(func=_cmd_dlq)

    list_cmd = commands.add_parser("list", parents=[common],
                                   help="list jobs in the store")
    list_cmd.add_argument("--state", action="append", default=[],
                          choices=[state.value for state in JobState])
    list_cmd.set_defaults(func=_cmd_list)

    watch = commands.add_parser("watch", parents=[common],
                                help="wait for a job to finish")
    watch.add_argument("job_id")
    watch.add_argument("--timeout", type=float, default=300.0)
    watch.add_argument("--poll", type=float, default=0.2)
    watch.set_defaults(func=_cmd_watch)

    show = commands.add_parser("show", parents=[common],
                               help="one job's record and history")
    show.add_argument("job_id")
    show.set_defaults(func=_cmd_show)

    cancel = commands.add_parser("cancel", parents=[common],
                                 help="cancel a queued or running job")
    cancel.add_argument("job_id")
    cancel.set_defaults(func=_cmd_cancel)

    retire = commands.add_parser("retire", parents=[common],
                                 help="retire a published clone")
    retire.add_argument("job_id")
    retire.set_defaults(func=_cmd_retire)

    top = commands.add_parser("top", parents=[common],
                              help="textual fleet dashboard")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes")
    top.add_argument("--iterations", type=int, default=1,
                     help="frames to render (default: one snapshot)")
    top.set_defaults(func=_cmd_top)

    drift = commands.add_parser("drift", parents=[common],
                                help="fidelity-drift report")
    drift.add_argument("--warn", type=float, default=0.8,
                       help="tolerance fraction flagged as DRIFTING")
    drift.add_argument("--window", type=int, default=3,
                       help="jobs a widening trend must span for WATCH")
    drift.add_argument("--limit", type=int, default=0,
                       help="show at most N series (0 = all)")
    drift.add_argument("--json", action="store_true",
                       help="machine-readable report document")
    drift.add_argument("--strict", action="store_true",
                       help="exit 1 when any series is DRIFTING")
    drift.set_defaults(func=_cmd_drift)

    trace = commands.add_parser("trace", parents=[common],
                                help="export the flight log as a "
                                "Perfetto/chrome trace")
    trace.add_argument("--out", required=True, metavar="TRACE.json")
    trace.add_argument("--run", default="", metavar="RUN.json",
                       help="merge spans from a saved telemetry run")
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.fleet.chaos import ChaosKill
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ChaosKill as error:
        # A chaos kill action fired: die the way a real crash would
        # (leases and records left in place for the next run's
        # recovery), but with a distinct status for harnesses.
        print(f"chaos: {error}", file=sys.stderr)
        return 70
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
