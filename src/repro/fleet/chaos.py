"""Deterministic chaos injection for the fleet control plane.

The control plane's crash story (leases, recovery, tier checkpoints,
integrity envelopes) is only as good as the crashes it has actually
survived. This module turns the PR-3 fault-injection discipline inward,
on the fleet itself: every store/worker/scheduler mutation is bracketed
by a **named crashpoint** (:data:`CRASHPOINTS`), and a seeded,
serializable :class:`ChaosPlan` decides what goes wrong there:

- ``kill`` — raise :class:`ChaosKill` (a ``BaseException``, like a
  ``kill -9`` unwinding the process: no handler converts it into job
  state, the record stays wherever the crash left it);
- ``raise`` — a recoverable :class:`~repro.util.errors.
  FaultInjectionError` (the worker's ordinary failure surface);
- ``torn_write`` — truncate the file named by the crashpoint's
  ``path`` context mid-write, then die (the integrity layer must
  quarantine, never trust, the remains);
- ``enospc`` — ``OSError(ENOSPC)``, the disk-full path;
- ``delay`` — sleep, widening race windows (heartbeat staleness,
  cancel-vs-claim) without killing anything;
- ``signal`` — deliver a real signal to this process (how the graceful
  drain path is exercised end to end).

Plans carry **no randomness**: probabilistic actions name a
probability, and the injector draws every decision from a named RNG
stream (``derive_seed(seed, "chaos", point, index)``) — the same
discipline as :mod:`repro.faults`. Identical (seed, plan) pairs produce
identical chaos timelines, and an **empty plan is bit-identical** to
running with no injector at all: :func:`crashpoint` is a dictionary
lookup away from a no-op and touches no random stream.

The injector is installed per process (module global — crashpoints are
called deep inside the store, far from any place a handle could be
threaded through). :class:`~repro.fleet.scheduler.FleetScheduler`
installs its plan for the duration of ``run_until_idle`` and forwards
it to process-pool workers, which re-install it in their own process;
hit counters are therefore per-process, which is what "the Nth write
*this attempt*" means during a crash-restart cycle.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.util.errors import ConfigurationError, FaultInjectionError
from repro.util.rng import make_rng

__all__ = [
    "CRASHPOINTS",
    "ChaosAction",
    "ChaosKill",
    "ChaosPlan",
    "active",
    "crashpoint",
    "current_injector",
    "install",
    "maybe_active",
    "uninstall",
]

#: every named crashpoint the control plane is instrumented with.
#: The coverage test asserts a full fleet run visits all of them (so an
#: instrumentation point cannot silently disappear), and
#: :class:`ChaosAction` refuses to target a name that is not here (so a
#: plan cannot silently test nothing).
CRASHPOINTS: Tuple[str, ...] = (
    # store: record persistence
    "store.submit.post_claim",        # job id allocated, record not saved
    "store.save.pre_write",           # before the envelope tmp+replace
    "store.save.post_write",          # record durable, caller not told
    "store.transition.post_save",     # edge persisted, counters pending
    # store: lease lifecycle
    "lease.claim.pre_persist",        # epoch minted, lease not linked
    "lease.claim.post_create",        # lease durable, claim not returned
    "lease.heartbeat.pre_replace",    # refreshed beat not yet visible
    "lease.release.pre_unlink",       # release decided, lease still on
    # scheduler: round structure
    "scheduler.round.pre_claim",      # queue collected, nothing claimed
    "scheduler.round.post_claim",     # leases held, batch not started
    # worker: execution and publish
    "worker.start.post_load",         # record loaded, nothing mutated
    "worker.profile.post_save",       # shared profile durable
    "worker.publish.pre_artifact",    # clone done, result not written
    "worker.publish.post_result",     # result durable, bundle pending
    "worker.publish.pre_transition",  # artifacts durable, state stale
    "worker.publish.post_transition",  # published, outcome not returned
    # worker: migration jobs (preflight → retune → gate → publish)
    "worker.migrate.post_preflight",   # verdicts in, no tuning spent
    "worker.migrate.publish.pre_write",   # gate passed, bundle pending
    "worker.migrate.publish.post_write",  # migrated bundle durable
)

#: action kinds a plan may schedule (see the module doc)
ACTIONS = ("kill", "raise", "torn_write", "enospc", "delay", "signal")


class ChaosKill(BaseException):
    """A simulated hard kill (``kill -9``) at a crashpoint.

    Deliberately a ``BaseException``: no ``except Exception`` boundary
    in the worker or scheduler may convert it into job state — exactly
    like the real signal, it unwinds everything, and recovery has to
    pick up whatever was on disk.
    """


@dataclass(frozen=True)
class ChaosAction:
    """One scheduled misfortune at one crashpoint (frozen, picklable).

    ``on_hit`` selects which visit fires (1-based; ``0`` = every
    visit); ``probability`` thins firings below that via the injector's
    named RNG stream. The extra knobs apply per action kind:
    ``delay_s`` to ``delay``, ``signum`` to ``signal``.
    """

    point: str
    action: str = "kill"
    on_hit: int = 1
    probability: float = 1.0
    delay_s: float = 0.01
    signum: int = 15  # SIGTERM

    def __post_init__(self) -> None:
        if self.point not in CRASHPOINTS:
            raise ConfigurationError(
                f"unknown crashpoint {self.point!r} "
                f"(see repro.fleet.chaos.CRASHPOINTS)")
        if self.action not in ACTIONS:
            raise ConfigurationError(
                f"unknown chaos action {self.action!r} "
                f"(one of {', '.join(ACTIONS)})")
        if not isinstance(self.on_hit, int) or self.on_hit < 0:
            raise ConfigurationError(
                f"on_hit must be an int >= 0, got {self.on_hit!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {self.probability!r}")
        if self.delay_s < 0:
            raise ConfigurationError(
                f"delay_s cannot be negative, got {self.delay_s!r}")
        if not isinstance(self.signum, int) or self.signum < 1:
            raise ConfigurationError(
                f"signum must be a positive int, got {self.signum!r}")

    def to_dict(self) -> dict:
        return {"point": self.point, "action": self.action,
                "on_hit": self.on_hit, "probability": self.probability,
                "delay_s": self.delay_s, "signum": self.signum}

    @staticmethod
    def from_dict(payload: dict) -> "ChaosAction":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"a chaos action must be an object, got {payload!r}")
        unknown = set(payload) - {"point", "action", "on_hit",
                                  "probability", "delay_s", "signum"}
        if unknown:
            raise ConfigurationError(
                f"unknown chaos action fields: {sorted(unknown)}")
        return ChaosAction(**payload)


@dataclass(frozen=True)
class ChaosPlan:
    """An ordered collection of chaos actions for one fleet run.

    Like :class:`~repro.faults.plan.FaultPlan`, a plan is pure
    specification — no randomness, no state. Action ``i`` draws its
    probability decisions from stream ``chaos/<point>/<i>`` of
    ``seed``, so two runs of the same (seed, plan) misbehave
    identically.
    """

    seed: int = 0
    actions: Tuple[ChaosAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(
                f"chaos seed must be an int, got {self.seed!r}")
        for action in self.actions:
            if not isinstance(action, ChaosAction):
                raise ConfigurationError(
                    f"not a chaos action: {action!r}")

    @staticmethod
    def empty() -> "ChaosPlan":
        """A plan that injects nothing (bit-identical to no injector)."""
        return ChaosPlan()

    @property
    def is_empty(self) -> bool:
        return not self.actions

    def __bool__(self) -> bool:
        return bool(self.actions)

    # ------------------------------------------------------------------ #
    # serialization (the CLI's ``run --chaos plan.json``)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {"format": "ditto-chaos-plan/1", "seed": self.seed,
                "actions": [action.to_dict() for action in self.actions]}

    @staticmethod
    def from_dict(payload: dict) -> "ChaosPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"a chaos plan must be an object, got {payload!r}")
        fmt = payload.get("format", "ditto-chaos-plan/1")
        if fmt != "ditto-chaos-plan/1":
            raise ConfigurationError(
                f"unsupported chaos plan format {fmt!r}")
        actions = payload.get("actions", [])
        if not isinstance(actions, list):
            raise ConfigurationError("chaos plan 'actions' must be a list")
        return ChaosPlan(
            seed=payload.get("seed", 0),
            actions=tuple(ChaosAction.from_dict(entry)
                          for entry in actions))

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    @staticmethod
    def from_file(path: str) -> "ChaosPlan":
        with open(path, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as error:
                raise ConfigurationError(
                    f"chaos plan {path}: not valid JSON ({error})"
                    ) from error
        return ChaosPlan.from_dict(payload)


class ChaosInjector:
    """Executes a plan's actions as crashpoints are visited.

    Tracks per-point hit counts and the set of :attr:`visited` points
    (the coverage test's evidence). Thread-safe: the worker's heartbeat
    thread and the main execution path may hit points concurrently.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        if not isinstance(plan, ChaosPlan):
            raise ConfigurationError(
                f"injector takes a ChaosPlan, got {plan!r}")
        self.plan = plan
        self.hits: Dict[str, int] = {}
        self.visited: Set[str] = set()
        self._lock = threading.Lock()
        self._by_point: Dict[str, List[Tuple[int, ChaosAction]]] = {}
        for index, action in enumerate(plan.actions):
            self._by_point.setdefault(action.point, []).append(
                (index, action))
        self._rngs = {
            (action.point, index): make_rng(plan.seed, "chaos",
                                            action.point, str(index))
            for index, action in enumerate(plan.actions)
            if action.probability < 1.0
        }

    def hit(self, point: str, **context) -> None:
        """Record a visit to ``point`` and fire any scheduled action."""
        if point not in CRASHPOINTS:
            raise ConfigurationError(
                f"unregistered crashpoint {point!r} — add it to "
                f"repro.fleet.chaos.CRASHPOINTS")
        with self._lock:
            count = self.hits.get(point, 0) + 1
            self.hits[point] = count
            self.visited.add(point)
            armed = []
            for index, action in self._by_point.get(point, ()):
                if action.on_hit and action.on_hit != count:
                    continue
                rng = self._rngs.get((point, index))
                if rng is not None and rng.random() >= action.probability:
                    continue
                armed.append(action)
        for action in armed:
            self._fire(action, point, context)

    def _fire(self, action: ChaosAction, point: str, context: dict) -> None:
        if action.action == "delay":
            time.sleep(action.delay_s)
            return
        if action.action == "signal":
            os.kill(os.getpid(), action.signum)
            return
        if action.action == "raise":
            raise FaultInjectionError(
                f"chaos fault injected at {point}",
                kind="chaos", scope=point)
        if action.action == "enospc":
            raise OSError(errno.ENOSPC, os.strerror(errno.ENOSPC),
                          str(context.get("path", point)))
        if action.action == "torn_write":
            self._tear(context.get("path"))
            raise ChaosKill(f"chaos torn write at {point}")
        raise ChaosKill(f"chaos kill at {point}")

    @staticmethod
    def _tear(path: Optional[str]) -> None:
        """Truncate ``path`` to half its size — the on-disk shape of a
        process dying inside a non-atomic write."""
        if not path or not os.path.exists(path):
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)


# ---------------------------------------------------------------------- #
# the per-process installation point
# ---------------------------------------------------------------------- #
_INSTALLED: Optional[ChaosInjector] = None


def crashpoint(point: str, **context) -> None:
    """Mark one crashpoint visit (a no-op unless an injector is live).

    ``context`` gives actions something to aim at — notably ``path``
    for ``torn_write``/``enospc``. Hot-path cost with chaos off is one
    global read and a None check.
    """
    injector = _INSTALLED
    if injector is not None:
        injector.hit(point, **context)


def current_injector() -> Optional[ChaosInjector]:
    """The process-wide injector, or None when chaos is off."""
    return _INSTALLED


def install(plan: ChaosPlan) -> ChaosInjector:
    """Install ``plan`` process-wide; raises if one is already live."""
    global _INSTALLED
    if _INSTALLED is not None:
        raise ConfigurationError(
            "a chaos injector is already installed (uninstall first)")
    _INSTALLED = ChaosInjector(plan)
    return _INSTALLED


def uninstall() -> None:
    """Remove the process-wide injector (idempotent)."""
    global _INSTALLED
    _INSTALLED = None


@contextmanager
def active(plan: ChaosPlan):
    """Install ``plan`` for the duration of the block.

    Installs even an empty plan — that is how the coverage test tracks
    :attr:`ChaosInjector.visited` without changing behaviour.
    """
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()


@contextmanager
def maybe_active(plan: Optional[ChaosPlan]):
    """``active(plan)`` unless ``plan`` is None or an injector is
    already installed (re-entry: the scheduler installs once, serial
    and thread workers inherit it; process workers install their own).
    """
    if plan is None or _INSTALLED is not None:
        yield _INSTALLED
        return
    with active(plan) as injector:
        yield injector
