"""Fleet job model: specs, records, and the lifecycle state machine.

A clone job travels ``submitted → profiling → tuning → validating →
published``. Failure paths map the cloner's error surface onto explicit
states rather than stack traces:

- a cancel marker (observed at the next phase boundary) → ``cancelled``;
- :class:`~repro.util.errors.FidelityGateError` after the remediation
  ladder is exhausted, or any other :class:`Exception` → ``failed``;
- a crashed worker (process killed, machine lost) leaves the record in
  its running state with a dead lease — recovery requeues it to
  ``submitted`` (after an exponential crash backoff) and the next run
  resumes from its tier checkpoints;
- a job that keeps crashing its worker exhausts its crash budget
  (``max_crashes``) and lands in ``dead_lettered`` — terminal until an
  operator requeues it with ``fleet dlq retry``.

Remediation rungs (re-seed, widened tune budget, degraded executor)
show up as ``validating → tuning`` self-healing transitions, so the
:class:`~repro.validation.remediate.RemediationPolicy` ladder is
visible in the job history instead of buried inside one opaque
``clone()`` call. ``published`` jobs can only be ``retired``;
``failed`` jobs can be resubmitted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.app.service import Deployment
from repro.core.request import CloneRequest
from repro.migrate.request import MigrationRequest
from repro.runtime.expcache import CacheStats
from repro.util.errors import ConfigurationError, JobStateError

__all__ = [
    "CloneJobRecord",
    "CloneJobSpec",
    "JobResult",
    "JobState",
    "MigrationJobSpec",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "TransitionRecord",
]


class JobState(str, Enum):
    """Where a clone job is in its lifecycle."""

    SUBMITTED = "submitted"
    PROFILING = "profiling"
    TUNING = "tuning"
    VALIDATING = "validating"
    #: migration jobs (a :class:`MigrationJobSpec`) travel submitted →
    #: migrating_preflight → migrating_retune → migrating_gate →
    #: published through the same machine, so they inherit leases,
    #: crash requeue, chaos coverage, flight events and the DLQ
    MIGRATING_PREFLIGHT = "migrating_preflight"
    MIGRATING_RETUNE = "migrating_retune"
    MIGRATING_GATE = "migrating_gate"
    PUBLISHED = "published"
    FAILED = "failed"
    CANCELLED = "cancelled"
    RETIRED = "retired"
    DEAD_LETTERED = "dead_lettered"

    def __str__(self) -> str:  # "published", not "JobState.PUBLISHED"
        return self.value


#: legal (from → to) edges. ``tuning → tuning`` is a watchdog-budget
#: remediation retry, ``validating → tuning`` a gate-failure rung, and
#: ``running state → submitted`` the crash-recovery requeue.
TRANSITIONS: Dict[JobState, Tuple[JobState, ...]] = {
    JobState.SUBMITTED: (JobState.PROFILING, JobState.TUNING,
                         JobState.MIGRATING_PREFLIGHT,
                         JobState.CANCELLED, JobState.FAILED,
                         JobState.DEAD_LETTERED),
    JobState.PROFILING: (JobState.TUNING, JobState.CANCELLED,
                         JobState.FAILED, JobState.SUBMITTED,
                         JobState.DEAD_LETTERED),
    JobState.TUNING: (JobState.VALIDATING, JobState.PUBLISHED,
                      JobState.TUNING, JobState.CANCELLED,
                      JobState.FAILED, JobState.SUBMITTED,
                      JobState.DEAD_LETTERED),
    JobState.VALIDATING: (JobState.PUBLISHED, JobState.TUNING,
                          JobState.CANCELLED, JobState.FAILED,
                          JobState.SUBMITTED, JobState.DEAD_LETTERED),
    # migrating_preflight → migrating_gate is the no-retune shortcut
    # (every knob transfers); migrating_retune → migrating_retune is a
    # sim-budget remediation rung and migrating_gate →
    # migrating_retune a gate-failure rung, mirroring the clone path.
    JobState.MIGRATING_PREFLIGHT: (
        JobState.MIGRATING_RETUNE, JobState.MIGRATING_GATE,
        JobState.CANCELLED, JobState.FAILED, JobState.SUBMITTED,
        JobState.DEAD_LETTERED),
    JobState.MIGRATING_RETUNE: (
        JobState.MIGRATING_GATE, JobState.MIGRATING_RETUNE,
        JobState.CANCELLED, JobState.FAILED, JobState.SUBMITTED,
        JobState.DEAD_LETTERED),
    JobState.MIGRATING_GATE: (
        JobState.PUBLISHED, JobState.MIGRATING_RETUNE,
        JobState.CANCELLED, JobState.FAILED, JobState.SUBMITTED,
        JobState.DEAD_LETTERED),
    JobState.PUBLISHED: (JobState.RETIRED,),
    JobState.FAILED: (JobState.SUBMITTED,),
    JobState.CANCELLED: (),
    JobState.RETIRED: (),
    JobState.DEAD_LETTERED: (JobState.SUBMITTED,),
}

#: states a job never leaves on its own (``failed`` jobs additionally
#: accept an explicit resubmit; ``dead_lettered`` an explicit
#: ``dlq retry``)
TERMINAL_STATES = (JobState.PUBLISHED, JobState.FAILED,
                   JobState.CANCELLED, JobState.RETIRED,
                   JobState.DEAD_LETTERED)

#: states that mean "a worker owns this job right now"
RUNNING_STATES = (JobState.PROFILING, JobState.TUNING,
                  JobState.VALIDATING, JobState.MIGRATING_PREFLIGHT,
                  JobState.MIGRATING_RETUNE, JobState.MIGRATING_GATE)


@dataclass(frozen=True)
class TransitionRecord:
    """One edge a job took through the state machine (audit trail)."""

    from_state: JobState
    to_state: JobState
    reason: str = ""
    at: float = 0.0


@dataclass(frozen=True, kw_only=True)
class CloneJobSpec:
    """What one fleet job should clone (frozen, picklable).

    The :class:`~repro.core.request.CloneRequest` carries every
    output-affecting knob; ``name`` and ``priority`` are scheduling
    metadata only, so two jobs with the same request share a spec
    digest — and therefore profiles and shared-cache entries — no
    matter what they are called.
    """

    request: CloneRequest
    name: str = ""
    #: higher runs first; ties break by submission order
    priority: int = 0
    #: per-job crash budget before dead-lettering (None = the store's
    #: default); scheduling metadata, excluded from the spec digest
    max_crashes: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.request, CloneRequest):
            raise ConfigurationError(
                f"request must be a CloneRequest, got {self.request!r}")
        if not isinstance(self.priority, int) \
                or isinstance(self.priority, bool):
            raise ConfigurationError(
                f"priority must be an int, got {self.priority!r}")
        if self.max_crashes is not None and (
                not isinstance(self.max_crashes, int)
                or isinstance(self.max_crashes, bool)
                or self.max_crashes < 0):
            raise ConfigurationError(
                f"max_crashes must be an int >= 0 or None, "
                f"got {self.max_crashes!r}")

    def __setstate__(self, state: dict) -> None:
        # Records pickled before the crash-budget fields existed
        # deserialize with the defaults backfilled.
        self.__dict__.update({"max_crashes": None})
        self.__dict__.update(state)

    def digest(self) -> str:
        """The experiment identity (= the request digest)."""
        return self.request.digest()

    def describe(self) -> str:
        label = self.name or self.request.deployment.entry_service
        return f"{label}: {self.request.describe()}"


@dataclass(frozen=True, kw_only=True)
class MigrationJobSpec:
    """What one fleet job should migrate (frozen, picklable).

    The migration sibling of :class:`CloneJobSpec`: same scheduling
    metadata, but the work is a
    :class:`~repro.migrate.request.MigrationRequest` and the job
    travels the ``MIGRATING_*`` lifecycle states instead of the
    profiling/tuning/validating ones.
    """

    request: MigrationRequest
    name: str = ""
    #: higher runs first; ties break by submission order
    priority: int = 0
    #: per-job crash budget before dead-lettering (None = the store's
    #: default); scheduling metadata, excluded from the spec digest
    max_crashes: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.request, MigrationRequest):
            raise ConfigurationError(
                f"request must be a MigrationRequest, "
                f"got {self.request!r}")
        if not isinstance(self.priority, int) \
                or isinstance(self.priority, bool):
            raise ConfigurationError(
                f"priority must be an int, got {self.priority!r}")
        if self.max_crashes is not None and (
                not isinstance(self.max_crashes, int)
                or isinstance(self.max_crashes, bool)
                or self.max_crashes < 0):
            raise ConfigurationError(
                f"max_crashes must be an int >= 0 or None, "
                f"got {self.max_crashes!r}")

    def digest(self) -> str:
        """The migration identity (= the request digest)."""
        return self.request.digest()

    def describe(self) -> str:
        label = self.name or self.request.destination.name
        return f"{label}: {self.request.describe()}"


@dataclass
class CloneJobRecord:
    """One job's durable state (what the job store persists)."""

    job_id: str
    spec: CloneJobSpec
    spec_digest: str
    state: JobState = JobState.SUBMITTED
    history: List[TransitionRecord] = field(default_factory=list)
    #: remediation rungs climbed so far (across resumes)
    attempts: int = 0
    #: human-readable failure/cancel explanation ("" while healthy)
    error: str = ""
    #: stable digest of the published clone (set on ``published``)
    result_digest: str = ""
    created_at: float = 0.0
    updated_at: float = 0.0
    #: crash requeues survived so far (persisted across recoveries;
    #: past ``max_crashes`` the job is dead-lettered)
    crash_count: int = 0
    #: wall-clock gate the scheduler honours after a crash requeue
    #: (exponential backoff; 0 = runnable immediately)
    next_attempt_at: float = 0.0

    def __setstate__(self, state: dict) -> None:
        # Backfill crash-tracking fields for records persisted before
        # they existed, so an old store survives an upgrade.
        self.__dict__.update({"crash_count": 0, "next_attempt_at": 0.0})
        self.__dict__.update(state)

    def transition(self, to_state: JobState, *, reason: str = "") -> None:
        """Take one edge; raises :class:`JobStateError` on illegal moves."""
        if to_state not in TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state} → {to_state}"
                + (f" ({reason})" if reason else ""))
        now = time.time()
        self.history.append(TransitionRecord(
            from_state=self.state, to_state=to_state, reason=reason,
            at=now))
        self.state = to_state
        self.updated_at = now

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def running(self) -> bool:
        return self.state in RUNNING_STATES

    def describe(self) -> str:
        suffix = f" [{self.error}]" if self.error else ""
        return (f"{self.job_id}  {self.state.value:<10}  "
                f"{self.spec.describe()}{suffix}")


@dataclass
class JobResult:
    """What a ``published`` job produced (picklable store payload)."""

    job_id: str
    synthetic: Deployment
    #: the spec digest the job ran under (keys the fidelity-drift
    #: history: successive jobs of one spec share a series)
    spec_digest: str = ""
    #: :meth:`FidelityReport.to_dict` of the accepted clone (None when
    #: the job ran ungated)
    fidelity: Optional[dict] = None
    #: remediation reasons climbed before acceptance
    remediation: List[str] = field(default_factory=list)
    #: executor mode the per-tier pipeline resolved to
    executor: str = "serial"
    #: experiment-cache counters aggregated across the job's tiers
    cache_stats: CacheStats = field(default_factory=CacheStats)
    #: stable digest over (synthetic deployment, tuned knobs)
    result_digest: str = ""
    #: per-tier tuning iterations actually spent
    tuning_iterations: Dict[str, int] = field(default_factory=dict)
