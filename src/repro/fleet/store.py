"""The persistent, digest-keyed job store behind the fleet control plane.

One directory holds everything a fleet needs to survive a crash:

```
<root>/
  fleet.json               durable store tuning (lease timeout, crash
                           backoff, heartbeat interval, crash budget)
  jobs/<job_id>.rec        job record (digest-stamped envelope)
  jobs/<job_id>.claim      O_EXCL allocation marker (job-id uniqueness)
  jobs/<job_id>.lease      "a worker owns this" (JSON: pid + fencing
                           epoch + heartbeat; appears atomically with
                           its full payload via link(tmp, lease))
  jobs/<job_id>.epoch      monotonic fencing-epoch counter (persisted
                           *before* the lease it fences)
  jobs/<job_id>.cancel     cancellation marker (observed at phase edges)
  profiles/<digest>.pkl    profiling sessions keyed by *spec* digest
  results/<job_id>.pkl     published JobResult envelope
  results/<job_id>.fidelity.json   FidelityReport document (CI artifact)
  results/<job_id>.bundle.json     shareable clone bundle
  checkpoints/<job_id>/    per-tier TierCheckpoint directory
  cache/                   fleet-wide SharedExperimentCache entries
  flight/events.jsonl      flight-recorder event log (opt-in, see below)
  fidelity/<digest>.jsonl  per-spec fidelity-drift history
```

Every record/result/profile write goes through
:mod:`repro.validation.integrity` envelopes — atomic replace, digest
trailer, quarantine-on-corruption — so a killed worker can never leave
a half-written record, and a corrupted one is moved aside (and counted)
instead of being trusted. Profiles are keyed by the *spec* digest, not
the job id: a second job with an identical spec reuses the first job's
profiling session outright.

Leases make crash recovery explicit — and *fenced*. Every claim mints
a monotonic per-job fencing epoch (persisted before the lease exists),
and workers refresh a heartbeat timestamp inside the lease while they
run. :meth:`JobStore.recover` decides deadness from the lease itself:
missing/unreadable, a provably dead pid, or a heartbeat older than
``lease_timeout_s`` — never from pid liveness alone, because pids are
recycled. A worker that was falsely declared dead is *fenced*: its
epoch no longer matches the lease, so :meth:`check_fence` stops it
before any terminal transition or artifact publish
(:class:`~repro.util.errors.LeaseFencedError`). Crash requeues carry a
persisted ``crash_count`` with exponential backoff; a job that keeps
killing its worker exceeds ``max_crashes`` and lands in the terminal
``dead_lettered`` state until :meth:`retry_dead_letter`.

Store/worker mutations are bracketed by named chaos crashpoints
(:mod:`repro.fleet.chaos`) — no-ops unless a chaos plan is installed;
the chaos matrix test kills the fleet at every one of them and asserts
recovery reproduces the bit-identical bundle.

The store is also the fleet's observability tap. With the flight
recorder enabled (``flight=True``, or auto-enabled whenever
``<root>/flight/`` exists so pool workers opening the same root join
in) every submit, state edge, lease claim/release, recovery, cancel
request, profile reuse and published result is appended to the flight
log (:mod:`repro.fleet.obs.flight`). Published gated results
additionally append to the per-spec fidelity-drift history and set
``ditto_fidelity_error{metric,platform}`` gauges. All of it is
wall-clock-side bookkeeping — no random stream is touched, so clone
digests are bit-identical with observability on or off.
"""

from __future__ import annotations

import glob
import json
import math
import os
import time
from typing import Dict, Iterable, List, Optional

from repro.fleet.chaos import crashpoint
from repro.fleet.job import (
    RUNNING_STATES,
    TERMINAL_STATES,
    CloneJobRecord,
    CloneJobSpec,
    JobResult,
    JobState,
    MigrationJobSpec,
)
from repro.fleet.obs.flight import FlightRecorder
from repro.profiling.collector import ApplicationProfile
from repro.telemetry.context import current_session
from repro.telemetry.registry import MetricsRegistry
from repro.util.errors import (
    ArtifactIntegrityError,
    ConfigurationError,
    JobStateError,
    LeaseFencedError,
)
from repro.validation import integrity

__all__ = ["JobStore"]

#: envelope schemas (and their payload versions) the store writes
RECORD_SCHEMA = "fleet-job-record"
RESULT_SCHEMA = "fleet-job-result"
PROFILE_SCHEMA = "fleet-profile"
SCHEMA_VERSION = 1

#: registry metric names the store accounts through
STORE_METRICS = {
    "submitted": ("ditto_fleet_jobs_submitted_total",
                  "fleet jobs accepted into the store", ()),
    "transitions": ("ditto_fleet_job_transitions_total",
                    "fleet job state-machine edges taken",
                    ("from_state", "to_state")),
    "recovered": ("ditto_fleet_jobs_recovered_total",
                  "orphaned running jobs requeued after a crash", ()),
    "profile_reuse": ("ditto_fleet_profile_reuse_total",
                      "jobs that reused a stored profiling session", ()),
    "published": ("ditto_fleet_jobs_published_total",
                  "fleet jobs that reached the published state", ()),
    "failed": ("ditto_fleet_jobs_failed_total",
               "fleet jobs that reached the failed state", ()),
    "dead_lettered": ("ditto_fleet_jobs_dead_lettered_total",
                      "jobs dead-lettered after exhausting their "
                      "crash budget", ()),
}

#: durable store tuning (persisted to ``<root>/fleet.json`` when a
#: constructor overrides them, so worker processes opening the same
#: root agree on timeouts without threading arguments through pools)
DEFAULT_STORE_CONFIG = {
    "lease_timeout_s": 30.0,      # heartbeat staleness → owner is dead
    "heartbeat_interval_s": 2.0,  # worker beat cadence (0 = no beat)
    "crash_backoff_s": 0.5,       # base of the crash-requeue backoff
    "max_crashes": 3,             # crash budget before dead-lettering
}

#: terminal-latency histogram buckets (seconds from submission to a
#: terminal state — fleet jobs span milliseconds in tests to minutes
#: on real sweeps)
JOB_DURATION_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                        10.0, 30.0, 60.0, 300.0, 1800.0)


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class JobStore:
    """Durable job state under one root directory (see module doc)."""

    def __init__(self, root: str, *,
                 registry: Optional[MetricsRegistry] = None,
                 flight: Optional[bool] = None,
                 lease_timeout_s: Optional[float] = None,
                 heartbeat_interval_s: Optional[float] = None,
                 crash_backoff_s: Optional[float] = None,
                 max_crashes: Optional[int] = None) -> None:
        if not isinstance(root, str) or not root:
            raise ConfigurationError(
                f"store root must be a path string, got {root!r}")
        self.root = root
        self.config_path = os.path.join(root, "fleet.json")
        self._load_config(lease_timeout_s=lease_timeout_s,
                          heartbeat_interval_s=heartbeat_interval_s,
                          crash_backoff_s=crash_backoff_s,
                          max_crashes=max_crashes)
        self.jobs_dir = os.path.join(root, "jobs")
        self.profiles_dir = os.path.join(root, "profiles")
        self.results_dir = os.path.join(root, "results")
        self.checkpoints_dir = os.path.join(root, "checkpoints")
        #: the fleet-wide shared experiment cache directory
        self.cache_dir = os.path.join(root, "cache")
        #: per-spec fidelity-drift histories (one JSONL per digest)
        self.fidelity_dir = os.path.join(root, "fidelity")
        #: flight-recorder home (existence doubles as the enable flag)
        self.flight_dir = os.path.join(root, "flight")
        for directory in (self.jobs_dir, self.profiles_dir,
                          self.results_dir, self.checkpoints_dir,
                          self.cache_dir, self.fidelity_dir):
            os.makedirs(directory, exist_ok=True)
        if registry is None:
            session = current_session()
            registry = (session.registry if session is not None
                        else MetricsRegistry())
        self.registry = registry
        self._counters = {
            key: registry.counter(name, help_text, labels)
            for key, (name, help_text, labels) in STORE_METRICS.items()
        }
        self._duration = registry.histogram(
            "ditto_fleet_job_duration_seconds",
            "submission-to-terminal-state latency per outcome",
            ("state",), buckets=JOB_DURATION_BUCKETS)
        self._fidelity_error = registry.gauge(
            "ditto_fidelity_error",
            "latest per-metric relative fidelity error of a published "
            "job", ("metric", "platform"))
        # ``flight=None`` means "follow the store": a directory created
        # once (by ``flight=True``, the CLI, or a test) enables the
        # recorder for every later process opening the same root — this
        # is how pickled pool workers join the log without threading a
        # flag through the executor.
        if flight is True:
            os.makedirs(self.flight_dir, exist_ok=True)
        enabled = (flight if flight is not None
                   else os.path.isdir(self.flight_dir))
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(self.flight_path) if enabled else None)

    def _load_config(self, **overrides) -> None:
        """Resolve store tuning: defaults ← ``fleet.json`` ← overrides.

        Explicit constructor values are persisted (atomically) so every
        later process opening the same root — notably pickled pool
        workers — recovers and heartbeats with the same timeouts. A
        plain ``JobStore(root)`` writes nothing.
        """
        try:
            with open(self.config_path, encoding="utf-8") as handle:
                stored = json.load(handle)
        except (OSError, ValueError):
            stored = {}
        if not isinstance(stored, dict):
            stored = {}
        merged = dict(DEFAULT_STORE_CONFIG)
        merged.update({key: stored[key] for key in DEFAULT_STORE_CONFIG
                       if key in stored})
        given = {key: value for key, value in overrides.items()
                 if value is not None}
        merged.update(given)
        for key in ("lease_timeout_s", "heartbeat_interval_s",
                    "crash_backoff_s"):
            try:
                merged[key] = float(merged[key])
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"{key} must be a number, got {merged[key]!r}"
                    ) from None
            if merged[key] < 0:
                raise ConfigurationError(
                    f"{key} cannot be negative, got {merged[key]!r}")
        if not isinstance(merged["max_crashes"], int) \
                or isinstance(merged["max_crashes"], bool) \
                or merged["max_crashes"] < 0:
            raise ConfigurationError(
                f"max_crashes must be an int >= 0, "
                f"got {merged['max_crashes']!r}")
        self.lease_timeout_s = merged["lease_timeout_s"]
        self.heartbeat_interval_s = merged["heartbeat_interval_s"]
        self.crash_backoff_s = merged["crash_backoff_s"]
        self.max_crashes = merged["max_crashes"]
        if given and any(stored.get(key) != merged[key]
                         for key in DEFAULT_STORE_CONFIG):
            os.makedirs(self.root, exist_ok=True)
            scratch = f"{self.config_path}.tmp-{os.getpid()}"
            with open(scratch, "w", encoding="utf-8") as handle:
                json.dump(merged, handle, indent=2, sort_keys=True)
            os.replace(scratch, self.config_path)

    @property
    def flight_path(self) -> str:
        return os.path.join(self.flight_dir, "events.jsonl")

    def _emit(self, kind: str, *, job_id: str = "", **data) -> None:
        """Flight-record one event (no-op when the recorder is off)."""
        if self.flight is not None:
            self.flight.emit(kind, job_id=job_id, **data)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.rec")

    def lease_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.lease")

    def epoch_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.epoch")

    def cancel_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.cancel")

    def profile_path(self, spec_digest: str) -> str:
        return os.path.join(self.profiles_dir, f"{spec_digest[:32]}.pkl")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, f"{job_id}.pkl")

    def fidelity_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, f"{job_id}.fidelity.json")

    def bundle_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, f"{job_id}.bundle.json")

    def fidelity_history_path(self, spec_digest: str) -> str:
        return os.path.join(self.fidelity_dir,
                            f"{spec_digest[:32]}.jsonl")

    def checkpoint_dir(self, job_id: str) -> str:
        return os.path.join(self.checkpoints_dir, job_id)

    # ------------------------------------------------------------------ #
    # submission / persistence
    # ------------------------------------------------------------------ #
    def submit(self, spec) -> CloneJobRecord:
        """Allocate a job id for ``spec`` and persist its record.

        ``spec`` is a :class:`CloneJobSpec` or a
        :class:`~repro.fleet.job.MigrationJobSpec` — migration jobs
        share the store (leases, recovery, DLQ, flight log) with clone
        jobs. Ids are ``<spec-digest-prefix>-<n>``: the digest groups
        jobs by experiment identity, the suffix distinguishes
        resubmissions. Allocation uses an ``O_EXCL`` claim file, so two
        concurrent submitters can never mint the same id.
        """
        if not isinstance(spec, (CloneJobSpec, MigrationJobSpec)):
            raise ConfigurationError(
                f"submit takes a CloneJobSpec or MigrationJobSpec, "
                f"got {spec!r}")
        digest = spec.digest()
        for n in range(10_000):
            job_id = f"{digest[:12]}-{n}"
            claim = os.path.join(self.jobs_dir, f"{job_id}.claim")
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            break
        else:  # pragma: no cover — 10k resubmissions of one spec
            raise ConfigurationError(
                f"could not allocate a job id for digest {digest[:12]}")
        crashpoint("store.submit.post_claim", job_id=job_id)
        now = time.time()
        record = CloneJobRecord(job_id=job_id, spec=spec,
                                spec_digest=digest, created_at=now,
                                updated_at=now)
        self.save(record)
        self._counters["submitted"].inc()
        self._emit("job_submitted", job_id=job_id, digest=digest,
                   name=spec.name, priority=spec.priority)
        return record

    def save(self, record: CloneJobRecord) -> None:
        """Persist ``record`` atomically (envelope write)."""
        path = self.record_path(record.job_id)
        crashpoint("store.save.pre_write", job_id=record.job_id,
                   path=path)
        integrity.save_object(path, record, schema=RECORD_SCHEMA,
                              version=SCHEMA_VERSION)
        crashpoint("store.save.post_write", job_id=record.job_id,
                   path=path)

    def get(self, job_id: str) -> CloneJobRecord:
        """Load one record; corruption quarantines and raises."""
        return integrity.load_object(self.record_path(job_id),
                                     schema=RECORD_SCHEMA,
                                     max_version=SCHEMA_VERSION)

    def list(self, states: Optional[Iterable[JobState]] = None,
             ) -> List[CloneJobRecord]:
        """All readable records, oldest first (corrupt files skipped).

        A corrupted record is quarantined by the integrity layer (and
        counted in ``ditto_artifact_quarantines_total``) but does not
        poison the listing — the rest of the store stays usable.
        """
        wanted = tuple(states) if states is not None else None
        records = []
        for path in sorted(glob.glob(os.path.join(self.jobs_dir, "*.rec"))):
            try:
                record = self.get(os.path.basename(path)[:-len(".rec")])
            except (ArtifactIntegrityError, FileNotFoundError):
                continue
            if wanted is None or record.state in wanted:
                records.append(record)
        records.sort(key=lambda r: (r.created_at, r.job_id))
        return records

    def transition(self, record: CloneJobRecord, to_state: JobState, *,
                   reason: str = "") -> None:
        """Take one state-machine edge and persist it (counted)."""
        from_state = record.state
        record.transition(to_state, reason=reason)
        self.save(record)
        crashpoint("store.transition.post_save", job_id=record.job_id)
        self._counters["transitions"].inc(
            1, from_state=from_state.value, to_state=to_state.value)
        if to_state in TERMINAL_STATES:
            self._duration.observe(
                max(0.0, record.updated_at - record.created_at),
                state=to_state.value)
            if to_state is JobState.PUBLISHED:
                self._counters["published"].inc()
            elif to_state is JobState.FAILED:
                self._counters["failed"].inc()
            elif to_state is JobState.DEAD_LETTERED:
                self._counters["dead_lettered"].inc()
        self._emit("job_state", job_id=record.job_id,
                   **{"from": from_state.value, "to": to_state.value,
                      "reason": reason})

    # ------------------------------------------------------------------ #
    # leases (worker ownership + fencing + crash detection)
    # ------------------------------------------------------------------ #
    def claim_lease(self, job_id: str, *,
                    pid: Optional[int] = None) -> Optional[int]:
        """Claim exclusive ownership of ``job_id``.

        Returns the claim's **fencing epoch** (monotonic per job, > 0)
        or None when someone already holds the lease. The epoch counter
        is persisted *before* the lease is linked, so two claims can
        never share an epoch (a crash in between merely skips one).
        The lease file appears atomically with its complete JSON
        payload — ``link(tmp, lease)`` after the tmp is fully written —
        so a concurrent :meth:`recover` can never read a half-written
        lease and requeue a live job.
        """
        lease = self.lease_path(job_id)
        if os.path.exists(lease):
            return None
        epoch = self._mint_epoch(job_id)
        crashpoint("lease.claim.pre_persist", job_id=job_id)
        owner = pid if pid is not None else os.getpid()
        now = time.time()
        scratch = f"{lease}.tmp-{os.getpid()}"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump({"pid": owner, "epoch": epoch, "heartbeat": now,
                       "at": now}, handle)
        try:
            os.link(scratch, lease)
        except FileExistsError:
            return None
        finally:
            os.unlink(scratch)
        crashpoint("lease.claim.post_create", job_id=job_id, path=lease)
        self._emit("lease_claimed", job_id=job_id, owner_pid=owner,
                   epoch=epoch)
        return epoch

    def _mint_epoch(self, job_id: str) -> int:
        path = self.epoch_path(job_id)
        try:
            with open(path, encoding="utf-8") as handle:
                last = int(handle.read().strip() or 0)
        except (OSError, ValueError):
            last = 0
        epoch = last + 1
        scratch = f"{path}.tmp-{os.getpid()}"
        with open(scratch, "w", encoding="utf-8") as handle:
            handle.write(str(epoch))
        os.replace(scratch, path)
        return epoch

    def release_lease(self, job_id: str, *,
                      epoch: Optional[int] = None) -> None:
        """Drop the lease. With ``epoch`` given, only when it still
        matches — a scheduler unwinding *after* a false requeue must
        not clobber the new owner's lease."""
        if epoch is not None:
            info = self.lease_info(job_id)
            if info is None or info["epoch"] != epoch:
                return
        crashpoint("lease.release.pre_unlink", job_id=job_id)
        try:
            os.unlink(self.lease_path(job_id))
        except FileNotFoundError:
            return
        self._emit("lease_released", job_id=job_id)

    def lease_info(self, job_id: str) -> Optional[dict]:
        """The parsed lease — pid, epoch, heartbeat, at — or None.

        Tolerates pre-epoch leases (epoch 0, heartbeat = claim time);
        anything unreadable is None, which recovery treats as dead.
        """
        try:
            with open(self.lease_path(job_id), encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        try:
            pid = int(payload["pid"])
            at = float(payload.get("at", 0.0))
            epoch = int(payload.get("epoch", 0))
            heartbeat = float(payload.get("heartbeat", at))
        except (KeyError, TypeError, ValueError):
            return None
        return {"pid": pid, "epoch": epoch, "heartbeat": heartbeat,
                "at": at}

    def lease_pid(self, job_id: str) -> Optional[int]:
        """The pid holding the lease, or None (missing/unreadable)."""
        info = self.lease_info(job_id)
        return None if info is None else info["pid"]

    def heartbeat(self, job_id: str, epoch: int) -> bool:
        """Refresh the lease's heartbeat timestamp (atomic replace).

        False means stop: the lease is gone or was re-claimed at a
        newer epoch — the caller has been fenced and the fence checks
        in its main path will refuse any further mutation.
        """
        info = self.lease_info(job_id)
        if info is None or info["epoch"] != epoch:
            return False
        info["heartbeat"] = time.time()
        lease = self.lease_path(job_id)
        scratch = f"{lease}.tmp-hb-{os.getpid()}"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(info, handle)
        crashpoint("lease.heartbeat.pre_replace", job_id=job_id,
                   path=lease)
        os.replace(scratch, lease)
        return True

    def check_fence(self, job_id: str, epoch: int) -> None:
        """Raise :class:`LeaseFencedError` unless ``epoch`` still owns
        the lease. Workers call this before every terminal transition
        and artifact publish, so a zombie resumed after a false requeue
        can never double-publish."""
        info = self.lease_info(job_id)
        current = None if info is None else info["epoch"]
        if current != epoch:
            raise LeaseFencedError(
                f"job {job_id}: lease epoch {epoch} superseded "
                + ("(lease released)" if current is None
                   else f"(current epoch {current})"),
                job_id=job_id, epoch=epoch, current=current)

    def recover(self) -> List[str]:
        """Requeue or dead-letter jobs whose owner died; returns ids.

        Deadness is decided from the lease, never from pid liveness
        alone: a missing/unreadable lease, a provably dead pid, or a
        heartbeat older than ``lease_timeout_s`` all mean the owner is
        gone. A live-looking pid with a stale heartbeat is *still*
        dead — pids get recycled, so ``kill(pid, 0)`` succeeding proves
        nothing; fencing makes the rare false positive safe (the
        demoted worker can no longer publish).

        Each crash bumps the record's persisted ``crash_count``:
        within budget the job is requeued to ``submitted`` with an
        exponential-backoff ``next_attempt_at``; beyond ``max_crashes``
        it is dead-lettered. A crash between lease claim and the first
        running transition leaves a ``submitted`` record with an
        orphaned lease — reaped here too (the lease is dropped and the
        crash counted, with no state edge to take).
        """
        handled: List[str] = []
        now = time.time()
        for record in self.list(RUNNING_STATES + (JobState.SUBMITTED,)):
            if record.state is JobState.SUBMITTED \
                    and not os.path.exists(self.lease_path(record.job_id)):
                continue  # cleanly queued, nothing to recover
            verdict = self._lease_verdict(record.job_id, now)
            if verdict is None:
                continue  # owner demonstrably alive
            info = self.lease_info(record.job_id)
            self._emit("job_recovered", job_id=record.job_id,
                       dead_pid=(info["pid"] if info else 0),
                       from_state=record.state.value, verdict=verdict)
            self.release_lease(record.job_id)
            self._requeue_or_dead_letter(record, now)
            handled.append(record.job_id)
        return handled

    def _lease_verdict(self, job_id: str, now: float) -> Optional[str]:
        """Why the lease's owner is dead, or None when it is alive."""
        info = self.lease_info(job_id)
        if info is None:
            return "lease missing or unreadable"
        if not _pid_alive(info["pid"]):
            return f"owner pid {info['pid']} is dead"
        age = now - info["heartbeat"]
        if age > self.lease_timeout_s:
            return (f"heartbeat stale ({age:.1f}s > "
                    f"{self.lease_timeout_s:.1f}s)")
        return None

    def _requeue_or_dead_letter(self, record: CloneJobRecord,
                                now: float) -> None:
        record.crash_count += 1
        limit = record.spec.max_crashes
        if limit is None:
            limit = self.max_crashes
        if record.crash_count > limit:
            record.error = (f"dead-lettered after {record.crash_count} "
                            f"crashes (budget {limit})")
            self.transition(record, JobState.DEAD_LETTERED,
                            reason=record.error)
            self._emit("job_dead_lettered", job_id=record.job_id,
                       crash_count=record.crash_count, budget=limit)
            return
        record.next_attempt_at = now + self.crash_backoff_s * (
            2 ** (record.crash_count - 1))
        if record.state is JobState.SUBMITTED:
            self.save(record)  # no self-edge; the crash fields persist
        else:
            self.transition(record, JobState.SUBMITTED,
                            reason="recovered")
        self._counters["recovered"].inc()

    def retry_dead_letter(self, job_id: str) -> CloneJobRecord:
        """Give a dead-lettered job a fresh crash budget and requeue it."""
        record = self.get(job_id)
        if record.state is not JobState.DEAD_LETTERED:
            raise JobStateError(
                f"job {job_id} is {record.state}, not dead_lettered")
        record.crash_count = 0
        record.next_attempt_at = 0.0
        record.error = ""
        self.transition(record, JobState.SUBMITTED,
                        reason="dead-letter retry")
        return record

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def request_cancel(self, job_id: str) -> CloneJobRecord:
        """Ask for ``job_id`` to stop; returns the (possibly updated) record.

        A job that has not started (``submitted``, no lease) cancels
        immediately. A running job gets a marker the worker observes at
        its next phase boundary; terminal jobs are left untouched.
        """
        record = self.get(job_id)
        if record.terminal:
            return record
        if record.state is JobState.SUBMITTED \
                and self.claim_lease(job_id):
            try:
                self.transition(record, JobState.CANCELLED,
                                reason="cancelled before start")
                record.error = "cancelled before start"
                self.save(record)
            finally:
                self.release_lease(job_id)
            return record
        with open(self.cancel_path(job_id), "w", encoding="utf-8") as handle:
            handle.write(f"{time.time()}\n")
        self._emit("cancel_requested", job_id=job_id,
                   state=record.state.value)
        return record

    def cancel_requested(self, job_id: str) -> bool:
        return os.path.exists(self.cancel_path(job_id))

    # ------------------------------------------------------------------ #
    # profiles (keyed by spec digest — cross-job reuse)
    # ------------------------------------------------------------------ #
    def save_profile(self, spec_digest: str,
                     profile: ApplicationProfile) -> None:
        """Persist a profiling session for every job sharing this spec."""
        path = self.profile_path(spec_digest)
        if not os.path.exists(path):
            integrity.save_object(path, profile, schema=PROFILE_SCHEMA,
                                  version=SCHEMA_VERSION)

    def load_profile(self, spec_digest: str) -> Optional[ApplicationProfile]:
        """A stored profile for this spec, or None (miss/corruption)."""
        try:
            profile = integrity.load_object(self.profile_path(spec_digest),
                                            schema=PROFILE_SCHEMA,
                                            max_version=SCHEMA_VERSION)
        except (FileNotFoundError, ArtifactIntegrityError):
            return None
        self._counters["profile_reuse"].inc()
        self._emit("profile_reused", digest=spec_digest[:32])
        return profile

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #
    def save_result(self, result: JobResult) -> None:
        """Persist a published clone + its FidelityReport JSON artifact.

        Gated results additionally feed the drift monitor: one line in
        the spec's fidelity history and a refresh of the
        ``ditto_fidelity_error{metric,platform}`` gauges.
        """
        integrity.save_object(self.result_path(result.job_id), result,
                              schema=RESULT_SCHEMA, version=SCHEMA_VERSION)
        if result.fidelity is not None:
            document = integrity.stamp_json({
                "format": "ditto-fleet-fidelity/1",
                "job_id": result.job_id,
                "report": result.fidelity,
            })
            scratch = f"{self.fidelity_path(result.job_id)}.tmp-{os.getpid()}"
            with open(scratch, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True)
            os.replace(scratch, self.fidelity_path(result.job_id))
            if result.spec_digest:
                self._append_fidelity_history(result)
            self._record_fidelity_gauges(result.fidelity)
        self._emit("result_published", job_id=result.job_id,
                   result_digest=result.result_digest,
                   gated=result.fidelity is not None,
                   fidelity_passed=bool((result.fidelity or {})
                                        .get("passed", True)),
                   remediation=len(result.remediation))

    def _append_fidelity_history(self, result: JobResult) -> None:
        """One O_APPEND line per published gated job (crash-tolerant,
        same single-``write(2)`` discipline as the flight log)."""
        report: Dict = result.fidelity or {}
        entry = {
            "job_id": result.job_id,
            "at": time.time(),
            "label": report.get("label", ""),
            "platform": report.get("platform", ""),
            "mode": report.get("mode", ""),
            "passed": report.get("passed", True),
            "mean_error": report.get("mean_error", 0.0),
            "checks": report.get("checks", []),
        }
        line = json.dumps(entry, sort_keys=True,
                          separators=(",", ":")) + "\n"
        fd = os.open(self.fidelity_history_path(result.spec_digest),
                     os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def _record_fidelity_gauges(self, report: dict) -> None:
        platform = report.get("platform", "") or "?"
        for check in report.get("checks", []):
            error = check.get("error", 0.0)
            if error == "inf" or not math.isfinite(float(error)):
                continue  # exposition format cannot carry inf usefully
            self._fidelity_error.set(float(error),
                                     metric=check.get("metric", ""),
                                     platform=platform)

    def result(self, job_id: str) -> JobResult:
        """Load a published job's result (raises when absent/corrupt)."""
        return integrity.load_object(self.result_path(job_id),
                                     schema=RESULT_SCHEMA,
                                     max_version=SCHEMA_VERSION)

    def fidelity_history(self, spec_digest: Optional[str] = None,
                         ) -> Dict[str, List[dict]]:
        """Parsed drift histories, ``{digest: [entry, ...]}``."""
        from repro.fleet.obs.drift import load_fidelity_history
        return load_fidelity_history(self.fidelity_dir, spec_digest)
