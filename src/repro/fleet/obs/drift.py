"""Fidelity-drift monitoring: see the §6 envelope eroding before gates fail.

Every published *gated* job appends its per-metric
:class:`~repro.validation.gate.FidelityReport` deltas to a digest-keyed
history (``<store>/fidelity/<spec-digest>.jsonl`` — one line per
published job, same crash-tolerant append discipline as the flight
recorder). This module reads those histories back and answers the
operator question the gate itself cannot: *is this metric trending
toward its tolerance across successive jobs of the same spec?*

Per (spec, metric, service) series we track the **tolerance fraction**
— the worst observed error divided by its acceptance bound (relative
bound when one is set, absolute slack otherwise) — so 1.0 always means
"the gate would fail now", whatever the metric's units. Verdicts:

- ``DRIFTING``: the latest fraction is at or past ``--warn`` (default
  0.8) — envelope nearly spent;
- ``WATCH``: the fraction widened monotonically across the last
  ``--window`` jobs (default 3) and has crossed half the warn level —
  early erosion, worth a look before it pages anyone;
- ``OK``: everything else.

``python -m repro.fleet drift`` renders the table; ``--strict`` makes
DRIFTING a non-zero exit for CI gating.
"""

from __future__ import annotations

import glob
import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "DriftFlag",
    "DriftReport",
    "analyze_drift",
    "load_fidelity_history",
    "render_drift_report",
]

#: latest tolerance fraction at/above which a series is DRIFTING
DEFAULT_WARN_FRACTION = 0.8
#: monotonic-widening run length that earns a WATCH verdict
DEFAULT_TREND_WINDOW = 3


@dataclass(frozen=True)
class DriftFlag:
    """One (spec, metric, service) series and its drift verdict."""

    spec_digest: str
    label: str
    metric: str
    service: str
    platform: str
    #: jobs contributing a sample, oldest first
    jobs: Tuple[str, ...]
    #: per-job worst relative error for this metric
    errors: Tuple[float, ...]
    #: per-job tolerance fraction (1.0 = at the gate's bound)
    fractions: Tuple[float, ...]
    verdict: str = "OK"

    @property
    def latest_fraction(self) -> float:
        return self.fractions[-1] if self.fractions else 0.0

    @property
    def widening(self) -> bool:
        """Strictly non-decreasing with a net increase over the series."""
        if len(self.fractions) < 2:
            return False
        pairs = zip(self.fractions, self.fractions[1:])
        return (all(later >= earlier for earlier, later in pairs)
                and self.fractions[-1] > self.fractions[0])

    def to_dict(self) -> dict:
        return {
            "spec_digest": self.spec_digest, "label": self.label,
            "metric": self.metric, "service": self.service,
            "platform": self.platform, "jobs": list(self.jobs),
            "errors": [e if math.isfinite(e) else "inf"
                       for e in self.errors],
            "fractions": [f if math.isfinite(f) else "inf"
                          for f in self.fractions],
            "verdict": self.verdict,
        }


@dataclass
class DriftReport:
    """Every tracked series, worst first."""

    series: List[DriftFlag] = field(default_factory=list)

    def flagged(self) -> List[DriftFlag]:
        return [s for s in self.series if s.verdict != "OK"]

    def drifting(self) -> List[DriftFlag]:
        return [s for s in self.series if s.verdict == "DRIFTING"]

    def to_dict(self) -> dict:
        return {
            "format": "ditto-fleet-drift/1",
            "series": [s.to_dict() for s in self.series],
            "flagged": len(self.flagged()),
            "drifting": len(self.drifting()),
        }


def load_fidelity_history(fidelity_dir: str,
                          spec_digest: Optional[str] = None,
                          ) -> Dict[str, List[dict]]:
    """Read per-spec fidelity histories (corrupt lines skipped).

    Returns ``{spec_digest_prefix: [entry, ...]}`` with entries ordered
    as appended (publication order). Each entry is the document written
    by :meth:`repro.fleet.store.JobStore.save_result`.
    """
    histories: Dict[str, List[dict]] = {}
    pattern = (f"{spec_digest[:32]}.jsonl" if spec_digest
               else "*.jsonl")
    for path in sorted(glob.glob(os.path.join(fidelity_dir, pattern))):
        digest = os.path.basename(path)[:-len(".jsonl")]
        entries: List[dict] = []
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn tail after a crash — skip, keep rest
                if isinstance(entry, dict) and entry.get("checks"):
                    entries.append(entry)
        if entries:
            histories[digest] = entries
    return histories


def _tolerance_fraction(check: dict) -> float:
    """Worst-case error as a fraction of its acceptance bound."""
    error = check.get("error", 0.0)
    error = math.inf if error == "inf" else float(error)
    relative = float(check.get("relative_tolerance", 0.0))
    absolute = float(check.get("absolute_tolerance", 0.0))
    if relative > 0.0 and math.isfinite(error):
        fraction = error / relative
        if absolute > 0.0:
            # The absolute slack floor forgives small deltas outright;
            # honour it so near-zero metrics do not cry wolf.
            delta = abs(float(check.get("clone", 0.0))
                        - float(check.get("original", 0.0)))
            fraction = min(fraction, delta / absolute)
        return fraction
    delta = abs(float(check.get("clone", 0.0))
                - float(check.get("original", 0.0)))
    if absolute > 0.0:
        return delta / absolute
    return math.inf if (error > 0 or delta > 0) else 0.0


def analyze_drift(histories: Dict[str, List[dict]], *,
                  warn_fraction: float = DEFAULT_WARN_FRACTION,
                  trend_window: int = DEFAULT_TREND_WINDOW,
                  ) -> DriftReport:
    """Turn raw per-spec histories into verdicts, worst series first."""
    report = DriftReport()
    for digest, entries in sorted(histories.items()):
        series: Dict[Tuple[str, str], List[Tuple[str, float, float]]] = {}
        label = ""
        platform = ""
        for entry in entries:
            label = entry.get("label") or label
            platform = entry.get("platform") or platform
            for check in entry.get("checks", []):
                key = (check.get("metric", ""),
                       check.get("service", ""))
                error = check.get("error", 0.0)
                error = math.inf if error == "inf" else float(error)
                series.setdefault(key, []).append(
                    (entry.get("job_id", ""), error,
                     _tolerance_fraction(check)))
        for (metric, service), samples in sorted(series.items()):
            fractions = tuple(fraction for _, _, fraction in samples)
            flag = DriftFlag(
                spec_digest=digest, label=label, metric=metric,
                service=service, platform=platform,
                jobs=tuple(job for job, _, _ in samples),
                errors=tuple(error for _, error, _ in samples),
                fractions=fractions,
            )
            verdict = "OK"
            if flag.latest_fraction >= warn_fraction:
                verdict = "DRIFTING"
            elif (len(fractions) >= trend_window and flag.widening
                  and flag.latest_fraction >= warn_fraction / 2):
                verdict = "WATCH"
            report.series.append(
                DriftFlag(**{**flag.__dict__, "verdict": verdict}))
    report.series.sort(
        key=lambda s: (-(s.latest_fraction
                         if math.isfinite(s.latest_fraction)
                         else 1e9),
                       s.spec_digest, s.metric, s.service))
    return report


def _fmt(value: float) -> str:
    return f"{value:.1%}" if math.isfinite(value) else "inf"


def render_drift_report(report: DriftReport, *, store_root: str = "",
                        limit: int = 0) -> str:
    """The operator-facing drift table."""
    lines = [f"fidelity drift — {store_root or 'fleet store'}"]
    if not report.series:
        lines.append("(no gated fidelity history — submit jobs with "
                     "--validate to record one)")
        return "\n".join(lines)
    shown = report.series[:limit] if limit else report.series
    current = None
    for flag in shown:
        if flag.spec_digest != current:
            current = flag.spec_digest
            name = f" ({flag.label})" if flag.label else ""
            lines.append(f"\nspec {flag.spec_digest[:12]}{name}  "
                         f"platform={flag.platform or '?'}  "
                         f"jobs={len(flag.jobs)}")
            lines.append(f"  {'metric':<14} {'service':<16} "
                         f"{'first':>8} {'latest':>8} {'tol-used':>9}  "
                         f"trend      verdict")
        trend = ("widening" if flag.widening
                 else ("stable" if len(flag.errors) > 1 else "n/a"))
        lines.append(
            f"  {flag.metric:<14} {flag.service or '(run)':<16} "
            f"{_fmt(flag.errors[0]):>8} {_fmt(flag.errors[-1]):>8} "
            f"{_fmt(flag.latest_fraction):>9}  {trend:<9}  "
            f"{flag.verdict}")
    if limit and len(report.series) > limit:
        lines.append(f"  ... {len(report.series) - limit} more series "
                     f"(raise --limit)")
    flagged = report.flagged()
    lines.append(
        f"\n{len(report.series)} series tracked; "
        f"{len(flagged)} flagged "
        f"({len(report.drifting())} drifting)")
    return "\n".join(lines)
