"""Live fleet status over HTTP (stdlib-only, off by default).

A :class:`FleetStatusServer` is a daemon-threaded
:class:`~http.server.ThreadingHTTPServer` bound next to a
:class:`~repro.fleet.store.JobStore`, serving three read-only routes:

- ``/metrics`` — Prometheus text exposition of the fleet's registries
  (the scheduler's telemetry session and the store's own counters,
  merged at scrape time);
- ``/jobs`` — the job table as JSON: state, durations, remediation
  attempts, digests and errors per job, read fresh from the store on
  every request so any process sharing the store root can be watched;
- ``/healthz`` — liveness plus a per-state job census.

Start it via ``FleetScheduler(serve_metrics=":9090")`` or
``python -m repro.fleet run --serve :9090``; pass ``True``/``0`` for an
ephemeral port (the bound port is on :attr:`FleetStatusServer.port`).
Everything here is wall-clock-side observation — no route mutates the
store, and clone output is bit-identical with the server on or off.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple, Union

from repro.fleet.job import JobState
from repro.telemetry.registry import MetricsRegistry
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.store import JobStore

__all__ = ["FleetStatusServer", "parse_serve_address"]


def parse_serve_address(
    spec: Union[bool, int, str, None],
) -> Optional[Tuple[str, int]]:
    """Normalize a ``serve_metrics`` knob to ``(host, port)`` or None.

    ``None``/``False`` disable the server; ``True`` binds an ephemeral
    port on localhost; an int is a localhost port; a string is
    ``host:port`` with an empty host meaning localhost (``":9090"``).
    """
    if spec is None or spec is False:
        return None
    if spec is True:
        return ("127.0.0.1", 0)
    if isinstance(spec, int):
        return ("127.0.0.1", spec)
    if isinstance(spec, str):
        host, sep, port = spec.rpartition(":")
        if not sep:
            host, port = "", spec
        try:
            return (host or "127.0.0.1", int(port))
        except ValueError:
            pass
    raise ConfigurationError(
        f"serve_metrics takes True, a port, or 'host:port', got {spec!r}")


def _job_entry(record) -> dict:
    return {
        "job_id": record.job_id,
        "name": record.spec.name,
        "state": record.state.value,
        "priority": record.spec.priority,
        "spec_digest": record.spec_digest,
        "result_digest": record.result_digest,
        "remediation_attempts": record.attempts,
        "crashes": record.crash_count,
        "transitions": len(record.history),
        "error": record.error,
        "created_at": record.created_at,
        "updated_at": record.updated_at,
        "duration_s": max(0.0, record.updated_at - record.created_at),
    }


class FleetStatusServer:
    """Serve ``/metrics``, ``/jobs`` and ``/healthz`` for one store."""

    def __init__(self, store: "JobStore", *,
                 registries: Iterable[MetricsRegistry] = (),
                 address: Union[bool, int, str, None] = True) -> None:
        parsed = parse_serve_address(address)
        if parsed is None:
            raise ConfigurationError(
                f"cannot serve on a disabled address ({address!r})")
        self.store = store
        # Dedupe by identity: the store registry is often also the
        # session registry, and double-merging would double counters.
        seen: List[MetricsRegistry] = []
        for registry in (*registries, store.registry):
            if not any(registry is existing for existing in seen):
                seen.append(registry)
        self.registries = seen
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, *_args) -> None:  # keep stderr quiet
                pass

            def do_GET(self) -> None:  # noqa: N802 — http.server API
                try:
                    route = self.path.split("?", 1)[0]
                    if route == "/metrics":
                        body = server.metrics_text().encode("utf-8")
                        ctype = "text/plain; version=0.0.4; charset=utf-8"
                    elif route == "/jobs":
                        body = json.dumps(server.jobs_document(),
                                          indent=2).encode("utf-8")
                        ctype = "application/json"
                    elif route == "/healthz":
                        body = json.dumps(server.health_document(),
                                          indent=2).encode("utf-8")
                        ctype = "application/json"
                    else:
                        self.send_error(404, "unknown route")
                        return
                except Exception as error:  # noqa: BLE001 — keep serving
                    self.send_error(500, type(error).__name__)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer(parsed, _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="ditto-fleet-status", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ #
    # route bodies (also the test surface — no HTTP needed)
    # ------------------------------------------------------------------ #
    def metrics_text(self) -> str:
        """Prometheus exposition over the merged fleet registries."""
        if len(self.registries) == 1:
            return self.registries[0].to_prometheus_text()
        merged = MetricsRegistry()
        for registry in self.registries:
            merged.merge(registry.snapshot())
        return merged.to_prometheus_text()

    def jobs_document(self) -> List[dict]:
        """The job table, newest update first."""
        records = sorted(self.store.list(),
                         key=lambda r: -r.updated_at)
        return [_job_entry(record) for record in records]

    def health_document(self) -> dict:
        counts = {state.value: 0 for state in JobState}
        for record in self.store.list():
            counts[record.state.value] += 1
        return {
            "status": "ok",
            "store": self.store.root,
            "jobs": counts,
            "queue_depth": counts[JobState.SUBMITTED.value],
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)
