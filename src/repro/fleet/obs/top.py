"""``python -m repro.fleet top`` — a textual fleet dashboard.

One render is a snapshot assembled from the three observability feeds:
the job table (states, remediation attempts, durations), the store's
metrics registry (throughput, cache effectiveness, recoveries) and the
flight log (event volume, corruption count). The CLI refreshes it on an
interval; everything here is pure rendering so tests can assert on a
single frame without a terminal.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.fleet.job import (JobState, RUNNING_STATES, TERMINAL_STATES)
from repro.fleet.obs.flight import FlightLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.store import JobStore

__all__ = ["render_top"]

_STATE_ORDER = [
    JobState.SUBMITTED, JobState.PROFILING, JobState.TUNING,
    JobState.VALIDATING, JobState.PUBLISHED, JobState.FAILED,
    JobState.CANCELLED, JobState.RETIRED, JobState.DEAD_LETTERED,
]


def _metric_value(snapshot: dict, name: str) -> float:
    total = 0.0
    for metric in snapshot.get("metrics", []):
        if metric.get("name") == name:
            for sample in metric.get("samples", []):
                value = sample.get("value")
                if isinstance(value, (int, float)):
                    total += value
                elif isinstance(value, dict):  # histogram sample
                    total += value.get("count", 0)
    return total


def render_top(store: "JobStore",
               flight: Optional[FlightLog] = None, *,
               now: Optional[float] = None) -> str:
    """One dashboard frame for the given store."""
    now = time.time() if now is None else now
    records = store.list()
    counts = {state: 0 for state in JobState}
    attempts = 0
    oldest_queued: Optional[float] = None
    for record in records:
        counts[record.state] += 1
        attempts += record.attempts
        if record.state is JobState.SUBMITTED:
            if oldest_queued is None or record.created_at < oldest_queued:
                oldest_queued = record.created_at

    running = sum(counts[state] for state in RUNNING_STATES)
    done = sum(counts[state] for state in TERMINAL_STATES)
    lines = [
        f"ditto fleet top — {store.root}",
        f"jobs: {len(records)} total | queue {counts[JobState.SUBMITTED]}"
        f" | running {running} | done {done}"
        + (f" | oldest queued {now - oldest_queued:.0f}s"
           if oldest_queued is not None else ""),
        "  " + "  ".join(f"{state.value}={counts[state]}"
                         for state in _STATE_ORDER if counts[state]),
    ]

    snapshot = store.registry.snapshot()
    published = _metric_value(snapshot, "ditto_fleet_jobs_published_total")
    failed = _metric_value(snapshot, "ditto_fleet_jobs_failed_total")
    recovered = _metric_value(snapshot, "ditto_fleet_jobs_recovered_total")
    reused = _metric_value(snapshot, "ditto_fleet_profile_reuse_total")
    hits = _metric_value(snapshot, "ditto_shared_cache_hits_total")
    misses = _metric_value(snapshot, "ditto_shared_cache_misses_total")
    lookups = hits + misses
    lines.append(
        f"this process: published={published:.0f} failed={failed:.0f} "
        f"recovered={recovered:.0f} profile-reuses={reused:.0f} "
        f"remediation-attempts={attempts}")
    if lookups:
        lines.append(
            f"shared cache: {hits:.0f}/{lookups:.0f} hits "
            f"({hits / lookups:.0%})")

    if flight is not None and (flight.events or flight.skipped):
        kinds = flight.counts()
        top_kinds = sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0]))
        summary = " ".join(f"{kind}={count}"
                           for kind, count in top_kinds[:6])
        span = (flight.events[-1].ts - flight.events[0].ts
                if len(flight.events) > 1 else 0.0)
        lines.append(
            f"flight log: {len(flight.events)} events over {span:.1f}s"
            + (f", {flight.skipped} corrupt skipped" if flight.skipped
               else "")
            + f" | {summary}")
    return "\n".join(lines)
