"""Fleet observability: flight recorder, status endpoint, drift monitor.

Three read-side views of a running (or crashed) fleet, all stdlib-only
and all strictly on the wall-clock side of the determinism boundary —
enabling any of them leaves clone digests bit-identical:

- :mod:`repro.fleet.obs.flight` — the append-only, integrity-enveloped
  event log every fleet process writes;
- :mod:`repro.fleet.obs.httpd` — ``/metrics``, ``/jobs``, ``/healthz``
  over a daemon-threaded stdlib HTTP server;
- :mod:`repro.fleet.obs.drift` — per-spec fidelity histories and the
  tolerance-erosion report;
- :mod:`repro.fleet.obs.top` — the textual dashboard frame.
"""

from repro.fleet.obs.drift import (DriftFlag, DriftReport, analyze_drift,
                                   load_fidelity_history,
                                   render_drift_report)
from repro.fleet.obs.flight import (FLIGHT_FORMAT, FlightEvent, FlightLog,
                                    FlightRecorder, chrome_events,
                                    read_flight_log)
from repro.fleet.obs.httpd import FleetStatusServer, parse_serve_address
from repro.fleet.obs.top import render_top

__all__ = [
    "FLIGHT_FORMAT",
    "DriftFlag",
    "DriftReport",
    "FleetStatusServer",
    "FlightEvent",
    "FlightLog",
    "FlightRecorder",
    "analyze_drift",
    "chrome_events",
    "load_fidelity_history",
    "parse_serve_address",
    "render_drift_report",
    "render_top",
    "read_flight_log",
]
