"""The fleet flight recorder: an append-only, crash-readable event log.

Every consequential moment in a fleet run — a job submitted, a
state-machine edge taken, a lease claimed or released, a crash
recovery, a remediation rung, a cache summary, a published result —
is appended as one JSONL line to ``<store>/flight/events.jsonl`` by
whichever process witnessed it (scheduler, pool worker, CLI). The log
is the fleet's black box: after a crash it reconstructs exactly what
every job went through, in order, across processes.

Crash-readability is structural, not best-effort:

- **append-only, one ``write(2)`` per event** — lines are written with
  ``O_APPEND`` in a single syscall, so concurrent writers (process-pool
  workers included) never interleave bytes within a line, and a killed
  process can lose at most its final, partial line;
- **per-line integrity envelope** — each line carries a SHA-256
  signature over its canonical payload; a torn tail or a flipped bit
  fails verification and is *skipped and counted*, never trusted;
- **monotonic sequence numbers** — each writer process stamps a
  process-wide monotonic ``seq``, so events from one pid totally order
  even when wall-clock timestamps collide; the reader merges streams
  by ``(ts, pid, seq)``.

The recorder is pure wall-clock side logging: it never touches a
random stream, so clone output is bit-identical with it on or off.
:func:`chrome_events` renders the log as Chrome trace events on the
wall-clock axis, mergeable with the PR-2 pipeline spans into one
Perfetto timeline (``python -m repro.fleet trace``).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "FLIGHT_FORMAT",
    "FlightEvent",
    "FlightLog",
    "FlightRecorder",
    "chrome_events",
    "read_flight_log",
]

#: format tag stamped on every event line
FLIGHT_FORMAT = "ditto-flight/1"

#: hex digits of the per-line SHA-256 signature kept on disk
_SIG_HEX = 16

#: synthetic pid namespace for flight-recorder tracks in Chrome traces
#: (distinct from the sim-timeline namespace in
#: :mod:`repro.telemetry.chrometrace`)
FLIGHT_PID_BASE = 1 << 21

#: one process-wide event counter shared by every recorder instance, so
#: ``(pid, seq)`` is unique and monotonic no matter how many JobStore
#: handles a process opens
_SEQ = itertools.count()
_SEQ_LOCK = threading.Lock()


def _next_seq() -> int:
    with _SEQ_LOCK:
        return next(_SEQ)


def _sign(body: Dict[str, Any]) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:_SIG_HEX]


@dataclass(frozen=True)
class FlightEvent:
    """One recorded fleet event (verified on read)."""

    seq: int
    ts: float
    pid: int
    kind: str
    job_id: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def order(self) -> Tuple[float, int, int]:
        """The merge key across writer processes."""
        return (self.ts, self.pid, self.seq)


class FlightRecorder:
    """Appends verified events to one flight log file."""

    def __init__(self, path: str) -> None:
        self.path = path
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._fd: Optional[int] = None
        self._pid = os.getpid()

    def _handle(self) -> int:
        # Re-open after fork: an inherited descriptor would stamp the
        # parent's pid on the child's O_APPEND offset bookkeeping.
        if self._fd is None or self._pid != os.getpid():
            self._pid = os.getpid()
            self._fd = os.open(self.path,
                               os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                               0o644)
        return self._fd

    def emit(self, kind: str, *, job_id: str = "",
             **data: Any) -> FlightEvent:
        """Record one event; returns it (mostly for tests)."""
        event = FlightEvent(seq=_next_seq(), ts=time.time(),
                            pid=os.getpid(), kind=kind, job_id=job_id,
                            data=dict(data))
        body = {
            "format": FLIGHT_FORMAT,
            "seq": event.seq, "ts": event.ts, "pid": event.pid,
            "kind": event.kind, "job_id": event.job_id,
            "data": event.data,
        }
        line = json.dumps({**body, "sig": _sign(body)},
                          sort_keys=True, separators=(",", ":"))
        os.write(self._handle(), (line + "\n").encode("utf-8"))
        return event

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


@dataclass
class FlightLog:
    """A parsed flight log: verified events plus corruption accounting."""

    events: List[FlightEvent] = field(default_factory=list)
    #: lines that failed JSON parsing or signature verification (a torn
    #: tail after a crash lands here — it is expected, not an error)
    skipped: int = 0

    def filter(self, *, job_id: Optional[str] = None,
               kind: Optional[str] = None) -> List[FlightEvent]:
        """Events matching the given job and/or kind, in merge order."""
        return [event for event in self.events
                if (job_id is None or event.job_id == job_id)
                and (kind is None or event.kind == kind)]

    def job_ids(self) -> List[str]:
        """Every job the log mentions, in first-seen order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            if event.job_id and event.job_id not in seen:
                seen[event.job_id] = None
        return list(seen)

    def lifecycle(self, job_id: str) -> List[str]:
        """One job's state sequence as recorded, submission included.

        The reconstruction the acceptance gate checks: a crashed and
        recovered job shows ``... -> tuning -> submitted -> ...`` with
        the requeue edge carrying reason ``recovered``.
        """
        states: List[str] = []
        for event in self.filter(job_id=job_id):
            if event.kind == "job_submitted":
                states.append("submitted")
            elif event.kind == "job_state":
                states.append(event.data.get("to", ""))
        return states

    def counts(self) -> Dict[str, int]:
        """Events per kind (the ``top`` dashboard's summary feed)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


def _parse_line(line: str) -> Optional[FlightEvent]:
    try:
        doc = json.loads(line)
    except ValueError:
        return None
    if not isinstance(doc, dict) or doc.get("format") != FLIGHT_FORMAT:
        return None
    sig = doc.pop("sig", None)
    if sig != _sign(doc):
        return None
    try:
        return FlightEvent(seq=int(doc["seq"]), ts=float(doc["ts"]),
                           pid=int(doc["pid"]), kind=str(doc["kind"]),
                           job_id=str(doc.get("job_id", "")),
                           data=dict(doc.get("data", {})))
    except (KeyError, TypeError, ValueError):
        return None


def read_flight_log(path: str) -> FlightLog:
    """Parse a flight log; corrupt/torn lines are skipped and counted.

    Reading never raises on content: a log truncated mid-line by a
    crash yields every complete event before the tear. A missing file
    reads as an empty log.
    """
    log = FlightLog()
    try:
        handle = open(path, "r", encoding="utf-8", errors="replace")
    except FileNotFoundError:
        return log
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = _parse_line(line)
            if event is None:
                log.skipped += 1
            else:
                log.events.append(event)
    log.events.sort(key=lambda event: event.order)
    return log


def chrome_events(events: Iterable[FlightEvent]) -> List[dict]:
    """Render flight events as Chrome trace events (wall-clock axis).

    One synthetic process row ("fleet flight recorder"), one thread row
    per job (plus a ``fleet`` row for store-level events). Consecutive
    ``job_state`` transitions become complete ("X") slices named after
    the state the job was *in* between them, so a job's lifecycle reads
    as a bar per phase; every event additionally lands as an instant.
    Timestamps are absolute epoch microseconds — pass the result to
    :func:`repro.telemetry.chrometrace.chrome_trace` as
    ``extra_events`` and it rebases them together with pipeline spans.
    """
    pid = FLIGHT_PID_BASE
    out: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "fleet flight recorder"},
    }]
    tids: Dict[str, int] = {}
    open_state: Dict[str, Tuple[str, float]] = {}

    def tid_for(job_id: str) -> int:
        label = job_id or "fleet"
        tid = tids.get(label)
        if tid is None:
            tid = len(tids) + 1
            tids[label] = tid
            out.append({"name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": label}})
        return tid

    for event in sorted(events, key=lambda e: e.order):
        tid = tid_for(event.job_id)
        ts_us = event.ts * 1e6
        if event.job_id:
            state: Optional[str] = None
            if event.kind == "job_submitted":
                state = "submitted"
            elif event.kind == "job_state":
                state = event.data.get("to", "")
            if state is not None:
                previous = open_state.get(event.job_id)
                if previous is not None:
                    name, since_us = previous
                    out.append({"name": name, "cat": "fleet", "ph": "X",
                                "ts": since_us,
                                "dur": max(0.0, ts_us - since_us),
                                "pid": pid, "tid": tid})
                open_state[event.job_id] = (state, ts_us)
        out.append({
            "name": event.kind, "cat": "fleet", "ph": "i",
            "ts": ts_us, "pid": pid, "tid": tid, "s": "t",
            "args": {"job_id": event.job_id, "seq": event.seq,
                     "writer_pid": event.pid, **event.data},
        })
    return out
