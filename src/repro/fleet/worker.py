"""One fleet job, executed end to end (the scheduler's unit of work).

:func:`execute_job` is a module-level function of picklable arguments —
``(store_root, job_id)`` — so the scheduler can run it in-process, in a
thread, or in a process-pool worker interchangeably. It loads the job
record, replays the clone through :class:`~repro.core.cloner.DittoCloner`
with the store wired in as infrastructure:

- a :class:`_StoreObserver` turns the cloner's phase boundaries into
  persisted state-machine transitions (and raises
  :class:`~repro.util.errors.JobCancelledError` when a cancel marker
  appears, so cancellation lands on a clean phase edge);
- the job's checkpoint directory makes tier progress durable
  (:class:`~repro.core.pipeline.TierCheckpoint`), so a crashed job
  resumes instead of restarting;
- the store's ``cache/`` directory becomes the fleet-wide
  :class:`~repro.runtime.expcache.SharedExperimentCache`, so identical
  specs reuse each other's tuning measurements;
- profiling sessions are saved keyed by spec digest and reused outright
  by later jobs with the same spec.

When the scheduler passes the lease's fencing ``epoch``, the worker is
a *fenced* participant: a daemon thread refreshes the lease heartbeat
every ``heartbeat_interval_s``, and the epoch is re-checked at every
phase boundary, before artifact publish, and before every terminal
transition. A zombie — a worker falsely declared dead, whose job was
re-claimed at a newer epoch — gets :class:`~repro.util.errors.
LeaseFencedError` and reports a ``fenced`` outcome **without touching
the record**: the new owner's run is authoritative. Direct calls
without an epoch (tests, one-off tools) skip fencing entirely.

Tiers run serially *within* a job — the fleet parallelises across jobs,
and nesting a process pool inside a pool worker would deadlock. Output
is bit-identical to the one-shot path: the executor mode, cache
placement, fencing and heartbeats are not inputs to any random stream.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.cloner import CloneObserver, DittoCloner
from repro.fleet.chaos import ChaosPlan, crashpoint, maybe_active
from repro.fleet.job import JobResult, JobState, MigrationJobSpec
from repro.fleet.store import JobStore
from repro.telemetry.context import current_session
from repro.telemetry.session import Telemetry, WorkerTelemetry
from repro.util.errors import (
    ArtifactIntegrityError,
    JobCancelledError,
    LeaseFencedError,
    MigrationError,
)
from repro.util.spec_hash import stable_digest
from repro.validation.remediate import RemediationStep

__all__ = ["JobWorkerOutcome", "execute_job"]

#: cloner phase → job state the observer drives the record into
_PHASE_STATES = {
    "profiling": JobState.PROFILING,
    "tuning": JobState.TUNING,
    "validating": JobState.VALIDATING,
}

#: migration-engine stage → job state (see ``repro.migrate.engine``)
_MIGRATE_PHASE_STATES = {
    "preflight": JobState.MIGRATING_PREFLIGHT,
    "retune": JobState.MIGRATING_RETUNE,
    "gate": JobState.MIGRATING_GATE,
}


@dataclass
class JobWorkerOutcome:
    """What one worker invocation reports back (picklable)."""

    job_id: str
    state: JobState
    error: str = ""
    result_digest: str = ""
    #: remediation rungs climbed during this invocation
    attempts: int = 0
    #: True when the worker was stopped by lease fencing — the job now
    #: belongs to a newer claim and this invocation changed nothing
    fenced: bool = False
    #: spans + counters recorded by the worker-local session (None when
    #: the job ran under the scheduler's own ambient session)
    telemetry: Optional[WorkerTelemetry] = None


class _StoreObserver(CloneObserver):
    """Persist the cloner's phase boundaries as job transitions."""

    def __init__(self, store: JobStore, record,
                 fence: Optional[Callable[[], None]] = None) -> None:
        self.store = store
        self.record = record
        self.fence = fence

    def on_phase(self, phase: str, *, attempt: int = 0,
                 reason: str = "") -> None:
        if self.fence is not None:
            self.fence()
        if self.store.cancel_requested(self.record.job_id):
            raise JobCancelledError(
                f"job {self.record.job_id} cancelled "
                f"(marker observed entering {phase!r})",
                job_id=self.record.job_id)
        target = _PHASE_STATES.get(phase)
        if target is None:
            return
        if self.record.state is target:
            if target is not JobState.TUNING or attempt == 0:
                return  # idempotent re-entry; only remediation loops
        self.store.transition(self.record, target, reason=reason or phase)

    def on_remediation(self, step: RemediationStep) -> None:
        self.record.attempts += 1
        self.store.save(self.record)
        self.store._emit("remediation", job_id=self.record.job_id,
                         rung=self.record.attempts, reason=step.reason)


class _LeaseHeartbeat:
    """Refresh a job's lease heartbeat on an interval (daemon thread).

    Exits silently when the lease disappears or the epoch is
    superseded — the fence checks in the main execution path do the
    actual enforcement; the beat only keeps a live worker *looking*
    alive to :meth:`~repro.fleet.store.JobStore.recover`.
    """

    def __init__(self, store: JobStore, job_id: str, epoch: int) -> None:
        self.store = store
        self.job_id = job_id
        self.epoch = epoch
        self.interval_s = store.heartbeat_interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self.interval_s <= 0:
            return
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"ditto-heartbeat-{self.job_id}")
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                if not self.store.heartbeat(self.job_id, self.epoch):
                    return  # fenced or released: stop beating
            except BaseException:  # noqa: BLE001 — incl. chaos kills
                return  # a failed beat must never take the worker down
        return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)


def execute_job(store_root: str, job_id: str,
                collect_telemetry: bool = True, *,
                epoch: Optional[int] = None,
                chaos: Optional[ChaosPlan] = None) -> JobWorkerOutcome:
    """Run one job to a terminal-or-requeued state; never raises on
    ordinary failure (the failure becomes the job's state).

    ``epoch`` is the fencing epoch of the caller's lease claim (None
    disables fencing and heartbeats — the direct-call path). ``chaos``
    installs a chaos plan for the duration when this process has none
    yet (how a process-pool worker joins the scheduler's plan).

    ``BaseException`` (a kill signal, ``KeyboardInterrupt``, a chaos
    kill) does propagate — that is the crash the lease/recovery
    machinery exists for, and the record deliberately stays in its
    running state so :meth:`~repro.fleet.store.JobStore.recover` can
    requeue it.
    """
    worker_session: Optional[Telemetry] = None
    ambient = current_session()
    foreign = ambient is None or ambient.pid != os.getpid()
    if collect_telemetry and foreign:
        worker_session = Telemetry.for_worker()
        worker_session.activate()
    try:
        with maybe_active(chaos):
            outcome = _execute(store_root, job_id, epoch)
    finally:
        if worker_session is not None:
            worker_session.deactivate()
    if worker_session is not None:
        outcome.telemetry = worker_session.payload()
    return outcome


def _execute(store_root: str, job_id: str,
             epoch: Optional[int]) -> JobWorkerOutcome:
    store = JobStore(store_root)
    record = store.get(job_id)
    crashpoint("worker.start.post_load", job_id=job_id)
    if record.terminal:
        return JobWorkerOutcome(job_id=job_id, state=record.state,
                                error=record.error,
                                result_digest=record.result_digest)

    def fence() -> None:
        if epoch is not None:
            store.check_fence(job_id, epoch)

    beat = (_LeaseHeartbeat(store, job_id, epoch)
            if epoch is not None else None)
    if beat is not None:
        beat.start()
    try:
        return _execute_fenced(store, record, fence)
    except LeaseFencedError as error:
        return _fenced_outcome(store, record, error)
    finally:
        if beat is not None:
            beat.stop()


def _execute_fenced(store: JobStore, record,
                    fence: Callable[[], None]) -> JobWorkerOutcome:
    if isinstance(record.spec, MigrationJobSpec):
        return _execute_migration(store, record, fence)
    job_id = record.job_id
    fence()
    if store.cancel_requested(job_id):
        # Mid-batch cancellation: the marker landed after the scheduler
        # claimed the lease but before this worker picked the job up.
        # Resolve it here, before any phase work — the record goes
        # straight submitted → cancelled, no partial phases.
        record.error = "cancelled before start"
        store.transition(record, JobState.CANCELLED,
                         reason="cancelled before start")
        return JobWorkerOutcome(job_id=job_id, state=JobState.CANCELLED,
                                error=record.error)
    if record.running:
        # Re-dispatched after a pool degradation (or a requeue the
        # scheduler missed): rewind to submitted so the phase
        # transitions replay legally; tier checkpoints keep it cheap.
        store.transition(record, JobState.SUBMITTED, reason="resume")
    attempts_before = record.attempts
    request = record.spec.request
    observer = _StoreObserver(store, record, fence=fence)
    cloner = DittoCloner.for_request(
        request,
        observer=observer,
        checkpoint_dir=store.checkpoint_dir(job_id),
        shared_cache_dir=store.cache_dir,
        executor="serial",
    )
    profile = store.load_profile(record.spec_digest)
    try:
        if profile is not None:
            result = cloner.clone_from_profile(profile, request=request)
        else:
            result = cloner.clone(request)
    except LeaseFencedError:
        raise  # a zombie stops cold — the record is the new owner's
    except JobCancelledError as error:
        fence()
        record.error = str(error)
        store.transition(record, JobState.CANCELLED, reason="cancelled")
        return JobWorkerOutcome(job_id=job_id, state=JobState.CANCELLED,
                                error=record.error,
                                attempts=record.attempts - attempts_before)
    except Exception as error:  # noqa: BLE001 — failures become job state
        fence()
        record.error = f"{type(error).__name__}: {error}"
        store.transition(record, JobState.FAILED,
                         reason=type(error).__name__)
        return JobWorkerOutcome(job_id=job_id, state=JobState.FAILED,
                                error=record.error,
                                attempts=record.attempts - attempts_before)
    report = result.report
    if profile is None and report.profile is not None:
        store.save_profile(record.spec_digest, report.profile)
        crashpoint("worker.profile.post_save", job_id=job_id,
                   path=store.profile_path(record.spec_digest))
    tuned: Dict[str, object] = {
        name: tuning.knobs for name, tuning in report.tuning.items()}
    result_digest = stable_digest({
        "synthetic": result.synthetic, "tuned_knobs": tuned})
    cache = report.cache_stats
    store._emit("job_cache", job_id=job_id, hits=cache.hits,
                misses=cache.misses, bypasses=cache.bypasses)
    job_result = JobResult(
        job_id=job_id,
        synthetic=result.synthetic,
        spec_digest=record.spec_digest,
        fidelity=(report.fidelity.to_dict()
                  if report.fidelity is not None else None),
        remediation=[step.reason for step in report.remediation],
        executor=report.executor,
        cache_stats=report.cache_stats,
        result_digest=result_digest,
        tuning_iterations={name: tuning.iterations
                           for name, tuning in report.tuning.items()},
    )
    try:
        fence()
        crashpoint("worker.publish.pre_artifact", job_id=job_id,
                   path=store.result_path(job_id))
        store.save_result(job_result)
        crashpoint("worker.publish.post_result", job_id=job_id,
                   path=store.result_path(job_id))
        _save_bundle(store, job_id, result,
                     source_platform=request.config.platform)
        record.result_digest = result_digest
        record.error = ""
        crashpoint("worker.publish.pre_transition", job_id=job_id)
        fence()
        store.transition(record, JobState.PUBLISHED,
                         reason=("gate passed"
                                 if report.fidelity is not None
                                 else "published"))
    except LeaseFencedError:
        raise
    except Exception as error:  # noqa: BLE001 — e.g. ENOSPC mid-publish
        fence()
        record.error = f"publish failed: {type(error).__name__}: {error}"
        store.transition(record, JobState.FAILED,
                         reason=type(error).__name__)
        return JobWorkerOutcome(job_id=job_id, state=JobState.FAILED,
                                error=record.error,
                                attempts=record.attempts - attempts_before)
    crashpoint("worker.publish.post_transition", job_id=job_id)
    return JobWorkerOutcome(job_id=job_id, state=JobState.PUBLISHED,
                            result_digest=result_digest,
                            attempts=record.attempts - attempts_before)


def _execute_migration(store: JobStore, record,
                       fence: Callable[[], None]) -> JobWorkerOutcome:
    """Run one migration job through the MIGRATING lifecycle states.

    Mirrors the clone path's robustness surface: fence + cancel checks
    at every stage boundary, crash requeue via the running-state
    rewind, refusals (preflight/retune/gate) landing in ``failed`` with
    the refusing stage in the reason, and a crashpoint-instrumented
    publish. Migrations are cheap enough to re-run whole, so there are
    no checkpoints — determinism makes the re-run byte-identical.
    """
    from repro.core.bundle import deployment_from_bundle
    from repro.migrate.engine import (
        migrate_request,
        write_migration_document,
    )
    job_id = record.job_id
    fence()
    if store.cancel_requested(job_id):
        record.error = "cancelled before start"
        store.transition(record, JobState.CANCELLED,
                         reason="cancelled before start")
        return JobWorkerOutcome(job_id=job_id, state=JobState.CANCELLED,
                                error=record.error)
    if record.running:
        # Crash requeues normally rewind via recover(); this handles a
        # re-dispatch that raced the requeue, same as the clone path.
        store.transition(record, JobState.SUBMITTED, reason="resume")
    attempts_before = record.attempts

    def observer(phase: str, attempt: int = 0) -> None:
        fence()
        if store.cancel_requested(job_id):
            raise JobCancelledError(
                f"job {job_id} cancelled "
                f"(marker observed entering {phase!r})", job_id=job_id)
        target = _MIGRATE_PHASE_STATES.get(phase)
        if target is None:
            return
        left_preflight = (record.state is JobState.MIGRATING_PREFLIGHT
                          and target is not record.state)
        if attempt > 0 and target is JobState.MIGRATING_RETUNE:
            # A remediation rung (sim budget or gate failure).
            record.attempts += 1
            store.save(record)
            store._emit("remediation", job_id=job_id,
                        rung=record.attempts, reason=phase)
        elif record.state is target:
            return  # idempotent re-entry
        store.transition(record, target, reason=phase)
        if left_preflight:
            crashpoint("worker.migrate.post_preflight", job_id=job_id)

    try:
        result = migrate_request(record.spec.request, None,
                                 observer=observer)
    except LeaseFencedError:
        raise  # a zombie stops cold — the record is the new owner's
    except JobCancelledError as error:
        fence()
        record.error = str(error)
        store.transition(record, JobState.CANCELLED, reason="cancelled")
        return JobWorkerOutcome(job_id=job_id, state=JobState.CANCELLED,
                                error=record.error,
                                attempts=record.attempts - attempts_before)
    except MigrationError as error:
        fence()
        stage = error.stage or "refused"
        record.error = (f"migration {stage}: {error}"
                        + (f" [blocking: {', '.join(error.blocking)}]"
                           if error.blocking else ""))
        store.transition(record, JobState.FAILED,
                         reason=f"migration_{stage}")
        return JobWorkerOutcome(job_id=job_id, state=JobState.FAILED,
                                error=record.error,
                                attempts=record.attempts - attempts_before)
    except ArtifactIntegrityError as error:
        fence()
        record.error = f"source bundle quarantined: {error}"
        store.transition(record, JobState.FAILED,
                         reason="source_quarantined")
        return JobWorkerOutcome(job_id=job_id, state=JobState.FAILED,
                                error=record.error,
                                attempts=record.attempts - attempts_before)
    except Exception as error:  # noqa: BLE001 — failures become job state
        fence()
        record.error = f"{type(error).__name__}: {error}"
        store.transition(record, JobState.FAILED,
                         reason=type(error).__name__)
        return JobWorkerOutcome(job_id=job_id, state=JobState.FAILED,
                                error=record.error,
                                attempts=record.attempts - attempts_before)

    result_digest = stable_digest(
        {"migration_document": result.document})
    try:
        fence()
        crashpoint("worker.migrate.publish.pre_write", job_id=job_id,
                   path=store.bundle_path(job_id))
        write_migration_document(result.document,
                                 store.bundle_path(job_id))
        crashpoint("worker.migrate.publish.post_write", job_id=job_id,
                   path=store.bundle_path(job_id))
        job_result = JobResult(
            job_id=job_id,
            synthetic=deployment_from_bundle(store.bundle_path(job_id)),
            spec_digest=record.spec_digest,
            fidelity=result.fidelity.to_dict(),
            remediation=list(result.remediation),
            executor="serial",
            result_digest=result_digest,
            tuning_iterations=dict(result.tuning_iterations),
        )
        store.save_result(job_result)
        record.result_digest = result_digest
        record.error = ""
        crashpoint("worker.publish.pre_transition", job_id=job_id)
        fence()
        store.transition(record, JobState.PUBLISHED,
                         reason="gate passed")
    except LeaseFencedError:
        raise
    except Exception as error:  # noqa: BLE001 — e.g. ENOSPC mid-publish
        fence()
        record.error = f"publish failed: {type(error).__name__}: {error}"
        store.transition(record, JobState.FAILED,
                         reason=type(error).__name__)
        return JobWorkerOutcome(job_id=job_id, state=JobState.FAILED,
                                error=record.error,
                                attempts=record.attempts - attempts_before)
    crashpoint("worker.publish.post_transition", job_id=job_id)
    return JobWorkerOutcome(job_id=job_id, state=JobState.PUBLISHED,
                            result_digest=result_digest,
                            attempts=record.attempts - attempts_before)


def _fenced_outcome(store: JobStore, record,
                    error: LeaseFencedError) -> JobWorkerOutcome:
    """Report a zombie stop: flight event + counter, record untouched."""
    store._emit("worker_fenced", job_id=record.job_id,
                epoch=error.epoch,
                current_epoch=(-1 if error.current is None
                               else error.current))
    store.registry.counter(
        "ditto_fleet_workers_fenced_total",
        "zombie workers stopped by lease fencing", ()).inc()
    return JobWorkerOutcome(job_id=record.job_id, state=record.state,
                            error=str(error), fenced=True)


def _save_bundle(store: JobStore, job_id: str, result,
                 source_platform=None) -> None:
    """Write the shareable clone bundle next to the result.

    The job's platform is recorded as provenance so the published
    bundle can go straight into ``fleet migrate`` without the caller
    restating where its ``target_counters`` came from.
    """
    from repro.core.bundle import save_bundle
    report = result.report
    save_bundle(
        report.features,
        store.bundle_path(job_id),
        entry_service=result.synthetic.entry_service,
        placements={p.service: p.node
                    for p in result.synthetic.placements},
        tuned_knobs={name: tuning.knobs
                     for name, tuning in report.tuning.items()},
        source_platform=source_platform,
    )
