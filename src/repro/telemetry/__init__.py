"""Telemetry: instrumentation of the reproduction itself.

Not to be confused with :mod:`repro.tracing` — that package models the
*paper's* distributed RPC tracer, a profiling **input** Ditto learns the
topology from. This package observes the **reproduction pipeline**: how
long each clone stage took, how effective experiment memoization was,
and what the simulator did on its own clock.

Three coordinated pieces, one handle:

- a **metrics registry** (:mod:`repro.telemetry.registry`) —
  counters/gauges/histograms with labels, Prometheus text exposition
  and JSON snapshots that merge across process boundaries;
- **pipeline spans** (:mod:`repro.telemetry.spans`) — nestable
  wall-clock spans (``with span("fine_tune"):``) that no-op when no
  session is active;
- **simulated-time timelines** (:mod:`repro.telemetry.timeline`) —
  per-service/per-request events stamped with the discrete-event clock.

A :class:`~repro.telemetry.session.Telemetry` session bundles all three
and exports a Perfetto-loadable Chrome trace
(:mod:`repro.telemetry.chrometrace`) plus a saved-run JSON that
``python -m repro.telemetry.report`` summarizes as a text table.

>>> from repro.telemetry import Telemetry
>>> telemetry = Telemetry(label="demo")
>>> cloner = DittoCloner(telemetry=telemetry)     # doctest: +SKIP
>>> result = cloner.clone(...)                    # doctest: +SKIP
>>> result.report.telemetry.write_chrome_trace("trace.json")  # doctest: +SKIP

Telemetry observes and never steers: it consumes no random streams and
adds no simulation events, so a telemetry-enabled clone is bit-identical
to a disabled one.
"""

from repro.telemetry.chrometrace import chrome_trace, write_chrome_trace
from repro.telemetry.context import current_session
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.telemetry.session import Telemetry, WorkerTelemetry
from repro.telemetry.spans import SpanCollector, SpanRecord, span
from repro.telemetry.timeline import SimEvent, SimTimeline, TimelineRun

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SimEvent",
    "SimTimeline",
    "SpanCollector",
    "SpanRecord",
    "Telemetry",
    "TimelineRun",
    "WorkerTelemetry",
    "chrome_trace",
    "current_session",
    "default_registry",
    "set_default_registry",
    "span",
    "write_chrome_trace",
]
