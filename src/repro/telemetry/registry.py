"""Metrics registry: counters, gauges and histograms with labels.

A deliberately small Prometheus-flavoured metrics core for instrumenting
the reproduction *itself* (pipeline throughput, cache hit rates, tuning
iterations) — distinct from :mod:`repro.runtime.metrics`, which models
the simulated hardware counters the paper reports.

Metrics are registered in a :class:`MetricsRegistry`. Each metric owns a
family of *series* keyed by label values; a metric with no labels has a
single unlabelled series. Registries serialise to a JSON-safe snapshot
(for crossing process boundaries: pipeline workers snapshot their
registry and the parent :meth:`MetricsRegistry.merge`\\ s it back in) and
render as Prometheus text exposition for scraping/diffing.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
]

#: hard ceiling on distinct label-value combinations per metric — a
#: mis-labelled metric (e.g. a request id used as a label) fails loudly
#: instead of silently eating memory.
MAX_SERIES_PER_METRIC = 4096

#: default histogram bucket upper bounds (seconds-flavoured, like the
#: Prometheus client default, extended downward for sub-ms spans)
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelKey = Tuple[str, ...]


def _label_key(
    metric: "_Metric", labels: Mapping[str, object]
) -> LabelKey:
    if set(labels) != set(metric.label_names):
        raise ConfigurationError(
            f"metric {metric.name!r} takes labels {metric.label_names}, "
            f"got {tuple(sorted(labels))}")
    return tuple(str(labels[name]) for name in metric.label_names)


class _Metric:
    """Shared machinery for one metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ConfigurationError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names: LabelKey = tuple(label_names)
        self._lock = threading.Lock()

    def _check_cardinality(self, series: Mapping) -> None:
        if len(series) >= MAX_SERIES_PER_METRIC:
            raise ConfigurationError(
                f"metric {self.name!r} exceeded {MAX_SERIES_PER_METRIC} "
                f"label combinations — a high-cardinality value (request "
                f"id, timestamp, ...) is probably being used as a label")

    # -- subclass interface ------------------------------------------- #
    def _series_items(self) -> List[Tuple[LabelKey, object]]:
        raise NotImplementedError

    def _snapshot_series(self) -> List[dict]:
        raise NotImplementedError

    def _merge_series(self, series: List[dict]) -> None:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (>= 0) to the series selected by ``labels``."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        key = _label_key(self, labels)
        with self._lock:
            if key not in self._values:
                self._check_cardinality(self._values)
                self._values[key] = 0.0
            self._values[key] += amount

    def value(self, **labels: object) -> float:
        """Current count for one series (0 if never incremented)."""
        return self._values.get(_label_key(self, labels), 0.0)

    def total(self) -> float:
        """Sum over every series."""
        return sum(self._values.values())

    def _series_items(self):
        return sorted(self._values.items())

    def _snapshot_series(self) -> List[dict]:
        return [{"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in self._series_items()]

    def _merge_series(self, series: List[dict]) -> None:
        for entry in series:
            if entry["value"]:
                self.inc(entry["value"], **entry["labels"])


class Gauge(_Metric):
    """A value that can go up and down (last write wins on merge)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Set the series selected by ``labels`` to ``value``."""
        key = _label_key(self, labels)
        with self._lock:
            if key not in self._values:
                self._check_cardinality(self._values)
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        key = _label_key(self, labels)
        with self._lock:
            if key not in self._values:
                self._check_cardinality(self._values)
                self._values[key] = 0.0
            self._values[key] += amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        """Adjust the gauge down by ``amount``."""
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        """Current value for one series (0 if never set)."""
        return self._values.get(_label_key(self, labels), 0.0)

    def _series_items(self):
        return sorted(self._values.items())

    def _snapshot_series(self) -> List[dict]:
        return [{"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in self._series_items()]

    def _merge_series(self, series: List[dict]) -> None:
        for entry in series:
            self.set(entry["value"], **entry["labels"])


class _HistogramState:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets   # per-bucket, non-cumulative
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Distribution of observations over fixed buckets.

    ``buckets`` are upper bounds (``le``); an implicit +Inf bucket
    catches everything above the last bound.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing")
        self.buckets: Tuple[float, ...] = bounds
        self._states: Dict[LabelKey, _HistogramState] = {}

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        key = _label_key(self, labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                self._check_cardinality(self._states)
                state = self._states[key] = _HistogramState(
                    len(self.buckets) + 1)
            index = len(self.buckets)   # +Inf
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            state.counts[index] += 1
            state.sum += value
            state.count += 1

    def count(self, **labels: object) -> int:
        """Total observations for one series."""
        state = self._states.get(_label_key(self, labels))
        return state.count if state else 0

    def sum(self, **labels: object) -> float:
        """Sum of observations for one series."""
        state = self._states.get(_label_key(self, labels))
        return state.sum if state else 0.0

    def bucket_counts(self, **labels: object) -> List[int]:
        """Per-bucket (non-cumulative) counts, +Inf last."""
        state = self._states.get(_label_key(self, labels))
        if state is None:
            return [0] * (len(self.buckets) + 1)
        return list(state.counts)

    def _series_items(self):
        return sorted(self._states.items())

    def _snapshot_series(self) -> List[dict]:
        return [
            {
                "labels": dict(zip(self.label_names, key)),
                "buckets": list(self.buckets),
                "counts": list(state.counts),
                "sum": state.sum,
                "count": state.count,
            }
            for key, state in self._series_items()
        ]

    def _merge_series(self, series: List[dict]) -> None:
        for entry in series:
            if tuple(entry["buckets"]) != self.buckets:
                raise ConfigurationError(
                    f"histogram {self.name!r}: cannot merge differing "
                    f"bucket layouts")
            key = _label_key(self, entry["labels"])
            with self._lock:
                state = self._states.get(key)
                if state is None:
                    self._check_cardinality(self._states)
                    state = self._states[key] = _HistogramState(
                        len(self.buckets) + 1)
                for i, c in enumerate(entry["counts"]):
                    state.counts[i] += c
                state.sum += entry["sum"]
                state.count += entry["count"]


_METRIC_TYPES = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, _Metric]" = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def metrics(self) -> List[_Metric]:
        """All registered metrics, sorted by name."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Optional[_Metric]:
        """The metric registered under ``name``, if any."""
        return self._metrics.get(name)

    def _get_or_create(self, cls, name: str, help: str,
                       label_names: Sequence[str], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) \
                        or existing.label_names != tuple(label_names):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{existing.label_names}")
                return existing
            metric = cls(name, help, label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, label_names,
                                   buckets=buckets)

    # ------------------------------------------------------------------ #
    # export / merge
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-safe dump of every metric (the cross-process format)."""
        out = {}
        for metric in self.metrics():
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "series": metric._snapshot_series(),
            }
        return out

    def merge(self, snapshot: Mapping[str, dict]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot` in: counters/histograms add, gauges
        take the snapshot's value. Unknown metrics are created."""
        for name in sorted(snapshot):
            entry = snapshot[name]
            cls = _METRIC_TYPES.get(entry["type"])
            if cls is None:
                raise ConfigurationError(
                    f"cannot merge metric {name!r} of unknown type "
                    f"{entry['type']!r}")
            kwargs = {}
            if cls is Histogram and entry["series"]:
                kwargs["buckets"] = entry["series"][0]["buckets"]
            metric = self._get_or_create(
                cls, name, entry.get("help", ""),
                entry.get("label_names", ()), **kwargs)
            metric._merge_series(entry["series"])
        return self

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for key, state in metric._series_items():
                labels = dict(zip(metric.label_names, key))
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(
                            list(metric.buckets) + [float("inf")],
                            state.counts):
                        cumulative += count
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_fmt_labels({**labels, 'le': le})} "
                            f"{cumulative}")
                    lines.append(
                        f"{metric.name}_sum{_fmt_labels(labels)} "
                        f"{_fmt_value(state.sum)}")
                    lines.append(
                        f"{metric.name}_count{_fmt_labels(labels)} "
                        f"{state.count}")
                else:
                    lines.append(
                        f"{metric.name}{_fmt_labels(labels)} "
                        f"{_fmt_value(state)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape(str(value))}"'
        for name, value in labels.items())
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace(
        "\n", r"\n")


def _fmt_value(value: float) -> str:
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry (ambient instrumentation target)."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
