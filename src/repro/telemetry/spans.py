"""Wall-clock pipeline spans.

A :class:`SpanCollector` records :class:`SpanRecord`\\ s — named
wall-clock intervals tagged with the recording process and thread, so a
process-pool clone's per-tier stages land on separate tracks when the
collection is exported as a Chrome trace. Spans are opened with the
module-level :func:`span` context manager, which consults the ambient
telemetry session (:mod:`repro.telemetry.context`): with no session
active it returns a shared no-op object, so instrumented code costs one
context-variable read when telemetry is off.

Spans nest naturally (the exporter reconstructs nesting from interval
containment within a thread) and are exception-safe: a span whose body
raises is still recorded, tagged with the error, and the exception
propagates.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.context import current_session

__all__ = ["SpanCollector", "SpanRecord", "span"]


@dataclass
class SpanRecord:
    """One recorded wall-clock interval (picklable)."""

    name: str
    category: str
    #: wall-clock start, microseconds since the epoch
    ts_us: int
    #: duration in microseconds (perf_counter precision)
    dur_us: float
    pid: int
    tid: int
    thread_name: str
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration in seconds."""
        return self.dur_us / 1e6

    def to_dict(self) -> dict:
        """JSON-safe form (the saved-run format)."""
        return {
            "name": self.name, "category": self.category,
            "ts_us": self.ts_us, "dur_us": self.dur_us,
            "pid": self.pid, "tid": self.tid,
            "thread_name": self.thread_name, "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SpanRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(name=doc["name"], category=doc["category"],
                   ts_us=doc["ts_us"], dur_us=doc["dur_us"],
                   pid=doc["pid"], tid=doc["tid"],
                   thread_name=doc.get("thread_name", ""),
                   args=dict(doc.get("args", {})))


class SpanCollector:
    """Accumulates finished spans (thread-safe append)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.records: List[SpanRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def add(self, record: SpanRecord) -> None:
        """Record one finished span."""
        with self._lock:
            self.records.append(record)

    def extend(self, records: List[SpanRecord]) -> None:
        """Fold another collector's records in (cross-worker merge)."""
        with self._lock:
            self.records.extend(records)

    def by_name(self) -> Dict[str, List[SpanRecord]]:
        """Records grouped by span name."""
        grouped: Dict[str, List[SpanRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.name, []).append(record)
        return grouped


class _ActiveSpan:
    """Context manager recording one interval into a collector."""

    __slots__ = ("_collector", "_name", "_category", "_args", "_t0",
                 "_ts_us")

    def __init__(self, collector: SpanCollector, name: str, category: str,
                 args: Dict[str, Any]) -> None:
        self._collector = collector
        self._name = name
        self._category = category
        self._args = args
        self._t0 = 0.0
        self._ts_us = 0

    def __enter__(self) -> "_ActiveSpan":
        self._ts_us = time.time_ns() // 1000
        self._t0 = time.perf_counter()
        return self

    def set(self, **args: Any) -> None:
        """Attach arguments to the span after it was opened."""
        self._args.update(args)

    def __exit__(self, exc_type, exc, _tb) -> bool:
        dur_us = (time.perf_counter() - self._t0) * 1e6
        if exc is not None:
            self._args["error"] = repr(exc)
        thread = threading.current_thread()
        self._collector.add(SpanRecord(
            name=self._name,
            category=self._category,
            ts_us=self._ts_us,
            dur_us=dur_us,
            pid=os.getpid(),
            tid=threading.get_ident(),
            thread_name=thread.name,
            args=self._args,
        ))
        return False    # propagate exceptions


class _NoopSpan:
    """Shared do-nothing span for disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def set(self, **args: Any) -> None:
        pass

    def __exit__(self, *_exc) -> bool:
        return False


_NOOP = _NoopSpan()


def span(name: str, category: str = "pipeline", *,
         collector: Optional[SpanCollector] = None, **args: Any):
    """Open a wall-clock span named ``name``.

    Records into ``collector`` when given, else into the ambient
    telemetry session's collector; a shared no-op when neither exists.
    Usable both as ``with span("stage"):`` and
    ``with span("stage") as s: s.set(items=n)``.
    """
    if collector is None:
        session = current_session()
        if session is None:
            return _NOOP
        collector = session.spans
    return _ActiveSpan(collector, name, category, dict(args))
