"""Simulated-time timelines.

Where :mod:`repro.telemetry.spans` measures the reproduction's own
wall-clock, this module records what happened *inside the simulation*:
per-service request execution and device activity, stamped with the
discrete-event clock. The simulation engine exposes the hook
(:class:`~repro.sim.engine.Environment` accepts a ``timeline``); the
service runtime and kernel devices emit events through it only when a
run is being observed, so unobserved simulations pay a single ``is not
None`` check per site.

One :class:`SimTimeline` can record several simulation runs (profiling,
fine-tune measurements, validation): each run gets its own
:class:`TimelineRun` handle whose events the Chrome exporter renders as
a separate process group, since independent runs all start at sim time
zero.

Recording is bounded: past ``max_events`` the timeline drops new events
(counting them in :attr:`SimTimeline.dropped`) instead of growing
without limit — telemetry must never be the memory hog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.util.errors import ConfigurationError

__all__ = ["SimEvent", "SimTimeline", "TimelineRun"]

#: default cap on recorded simulated-time events per timeline
DEFAULT_MAX_SIM_EVENTS = 100_000


@dataclass
class SimEvent:
    """One simulated-time occurrence."""

    run: int
    #: track the event renders on (service or device name)
    track: str
    name: str
    #: Chrome trace phase: "X" complete, "B" begin, "E" end, "i" instant
    ph: str
    #: simulated time, seconds
    ts: float
    #: interval length in simulated seconds ("X" events only)
    dur: Optional[float] = None
    args: Optional[Dict[str, Any]] = None

    def to_dict(self) -> dict:
        """JSON-safe form (the saved-run format)."""
        doc = {"run": self.run, "track": self.track, "name": self.name,
               "ph": self.ph, "ts": self.ts}
        if self.dur is not None:
            doc["dur"] = self.dur
        if self.args:
            doc["args"] = dict(self.args)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "SimEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(run=doc["run"], track=doc["track"], name=doc["name"],
                   ph=doc["ph"], ts=doc["ts"], dur=doc.get("dur"),
                   args=doc.get("args"))


class TimelineRun:
    """Event sink for one simulation run (what ``env.timeline`` holds)."""

    __slots__ = ("timeline", "run_id", "label")

    def __init__(self, timeline: "SimTimeline", run_id: int,
                 label: str) -> None:
        self.timeline = timeline
        self.run_id = run_id
        self.label = label

    def complete(self, track: str, name: str, ts: float, dur: float,
                 **args: Any) -> None:
        """Record a finished interval (emit at completion, ts = start).

        Preferred over begin/end pairs: concurrent intervals on one
        track (overlapping requests on a service) stay well-formed.
        """
        self.timeline._record(SimEvent(self.run_id, track, name, "X", ts,
                                       dur=dur, args=args or None))

    def begin(self, track: str, name: str, ts: float,
              **args: Any) -> None:
        """Open an interval on ``track`` at sim time ``ts``."""
        self.timeline._record(SimEvent(self.run_id, track, name, "B", ts,
                                       args=args or None))

    def end(self, track: str, name: str, ts: float) -> None:
        """Close the innermost open interval named ``name``."""
        self.timeline._record(SimEvent(self.run_id, track, name, "E", ts))

    def instant(self, track: str, name: str, ts: float,
                **args: Any) -> None:
        """Record a point event."""
        self.timeline._record(SimEvent(self.run_id, track, name, "i", ts,
                                       args=args or None))


class SimTimeline:
    """Bounded collection of :class:`SimEvent`\\ s across runs."""

    def __init__(self, max_events: int = DEFAULT_MAX_SIM_EVENTS) -> None:
        if max_events < 1:
            raise ConfigurationError("max_events must be >= 1")
        self.max_events = max_events
        self.events: List[SimEvent] = []
        self.dropped = 0
        self.run_labels: List[str] = []

    def __len__(self) -> int:
        return len(self.events)

    def begin_run(self, label: str = "") -> TimelineRun:
        """Open a new simulation run; events are namespaced under it."""
        run_id = len(self.run_labels)
        self.run_labels.append(label or f"run {run_id}")
        return TimelineRun(self, run_id, self.run_labels[-1])

    def _record(self, event: SimEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def tracks(self) -> Dict[int, List[str]]:
        """Per run: track names in first-seen order."""
        seen: Dict[int, List[str]] = {}
        for event in self.events:
            names = seen.setdefault(event.run, [])
            if event.track not in names:
                names.append(event.track)
        return seen

    def to_dict(self) -> dict:
        """JSON-safe form (the saved-run format)."""
        return {
            "run_labels": list(self.run_labels),
            "dropped": self.dropped,
            "max_events": self.max_events,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SimTimeline":
        """Inverse of :meth:`to_dict`."""
        timeline = cls(max_events=doc.get("max_events",
                                          DEFAULT_MAX_SIM_EVENTS))
        timeline.run_labels = list(doc.get("run_labels", []))
        timeline.dropped = doc.get("dropped", 0)
        timeline.events = [SimEvent.from_dict(entry)
                           for entry in doc.get("events", [])]
        return timeline
