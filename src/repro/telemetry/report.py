"""Text summary of a saved telemetry run (or a fleet's artifacts).

``python -m repro.telemetry.report run.json`` prints where a clone run
spent its time (wall-clock stages aggregated from pipeline spans),
experiment-cache effectiveness, the leading metrics, and what the
simulated-time timeline recorded. ``--prometheus`` additionally dumps
the raw registry in text exposition format.

Inputs are detected per path:

- a :meth:`repro.telemetry.session.Telemetry.save` document → the
  classic run summary;
- a fleet fidelity artifact (``ditto-fleet-fidelity/1``, written next
  to every gated published job) → the per-metric fidelity table;
- a migrated clone bundle (``ditto-migration/1``, published by
  ``python -m repro.migrate``) → the preflight verdict sheet, re-tuned
  knob deltas and destination-gate table;
- a fleet store *directory* → one section per job (state history,
  remediation ladder, fidelity verdict) plus the flight-log summary.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanRecord

__all__ = [
    "load_run",
    "main",
    "render_fidelity_artifact",
    "render_fleet_report",
    "render_migration_document",
    "render_report",
]

#: how many metric series the "top metrics" section shows
TOP_METRICS = 15


def load_run(path: str) -> dict:
    """Read a saved telemetry run document from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _stage_table(spans: List[SpanRecord]) -> List[str]:
    lines = [f"{'stage':<32}{'count':>7}{'total s':>12}{'mean s':>12}"
             f"{'max s':>12}"]
    grouped: Dict[str, List[SpanRecord]] = {}
    for record in spans:
        grouped.setdefault(record.name, []).append(record)
    ordered = sorted(grouped.items(),
                     key=lambda item: -sum(r.dur_us for r in item[1]))
    for name, records in ordered:
        durations = [r.duration_s for r in records]
        total = sum(durations)
        lines.append(f"{name:<32}{len(records):>7}{total:>12.4f}"
                     f"{total / len(durations):>12.4f}"
                     f"{max(durations):>12.4f}")
    return lines


def _cache_table(metrics: dict) -> Optional[List[str]]:
    def series(metric_name: str) -> Dict[str, float]:
        entry = metrics.get(metric_name)
        if entry is None:
            return {}
        return {s["labels"].get("cache", ""): s["value"]
                for s in entry["series"]}

    hits = series("ditto_expcache_hits_total")
    misses = series("ditto_expcache_misses_total")
    bypasses = series("ditto_expcache_bypasses_total")
    evictions = series("ditto_expcache_evictions_total")
    caches = sorted(set(hits) | set(misses) | set(bypasses)
                    | set(evictions))
    if not caches:
        return None
    lines = [f"{'cache':<24}{'hits':>8}{'misses':>8}{'bypass':>8}"
             f"{'evict':>8}{'hit rate':>10}"]
    totals = [0.0, 0.0, 0.0, 0.0]
    for cache in caches:
        row = (hits.get(cache, 0.0), misses.get(cache, 0.0),
               bypasses.get(cache, 0.0), evictions.get(cache, 0.0))
        totals = [t + v for t, v in zip(totals, row)]
        lookups = row[0] + row[1]
        rate = row[0] / lookups if lookups else 0.0
        lines.append(f"{cache:<24}{row[0]:>8.0f}{row[1]:>8.0f}"
                     f"{row[2]:>8.0f}{row[3]:>8.0f}{rate:>10.1%}")
    if len(caches) > 1:
        lookups = totals[0] + totals[1]
        rate = totals[0] / lookups if lookups else 0.0
        lines.append(f"{'(all)':<24}{totals[0]:>8.0f}{totals[1]:>8.0f}"
                     f"{totals[2]:>8.0f}{totals[3]:>8.0f}{rate:>10.1%}")
    return lines


def _top_metrics(metrics: dict) -> List[str]:
    rows = []
    for name in sorted(metrics):
        entry = metrics[name]
        if entry["type"] == "histogram":
            for s in entry["series"]:
                labels = _label_text(s["labels"])
                rows.append((s["count"],
                             f"{name}{labels} count={s['count']} "
                             f"sum={s['sum']:.4g}"))
        else:
            for s in entry["series"]:
                labels = _label_text(s["labels"])
                rows.append((abs(s["value"]),
                             f"{name}{labels} = {s['value']:g}"))
    rows.sort(key=lambda row: -row[0])
    return [text for _, text in rows[:TOP_METRICS]]


def _label_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) \
        + "}"


def _timeline_lines(doc: Optional[dict]) -> List[str]:
    if not doc or not doc.get("events"):
        return ["(no simulated-time events recorded)"]
    events = doc["events"]
    labels = doc.get("run_labels", [])
    lines = []
    per_run: Dict[int, List[dict]] = {}
    for event in events:
        per_run.setdefault(event["run"], []).append(event)
    for run in sorted(per_run):
        run_events = per_run[run]
        tracks = sorted({e["track"] for e in run_events})
        extent = max(e["ts"] for e in run_events)
        label = labels[run] if run < len(labels) else f"run {run}"
        lines.append(f"run {run} ({label}): {len(run_events)} events, "
                     f"{len(tracks)} tracks, {extent * 1e3:.2f} ms sim "
                     f"time")
        lines.append("  tracks: " + ", ".join(tracks[:8])
                     + (" ..." if len(tracks) > 8 else ""))
    if doc.get("dropped"):
        lines.append(f"(capped: {doc['dropped']} events dropped beyond "
                     f"max_events={doc.get('max_events')})")
    return lines


def render_report(doc: dict) -> str:
    """Render the saved-run document as the summary table."""
    sections: List[str] = []
    label = doc.get("label") or "(unlabelled run)"
    sections.append(f"telemetry report — {label}")
    spans = [SpanRecord.from_dict(entry)
             for entry in doc.get("spans", [])]
    sections.append("\n== pipeline stages (wall clock) ==")
    if spans:
        pids = sorted({record.pid for record in spans})
        sections.extend(_stage_table(spans))
        sections.append(f"({len(spans)} spans from {len(pids)} "
                        f"process{'es' if len(pids) != 1 else ''})")
    else:
        sections.append("(no spans recorded)")
    metrics = doc.get("metrics", {})
    cache_lines = _cache_table(metrics)
    if cache_lines:
        sections.append("\n== experiment cache ==")
        sections.extend(cache_lines)
    sections.append("\n== top metrics ==")
    top = _top_metrics(metrics)
    sections.extend(top if top else ["(registry is empty)"])
    sections.append("\n== simulated timeline ==")
    sections.extend(_timeline_lines(doc.get("sim_timeline")))
    return "\n".join(sections)


def render_fidelity_artifact(doc: dict) -> str:
    """Summarize one fleet fidelity artifact (per-metric table)."""
    from repro.validation.gate import FidelityReport
    report = FidelityReport.from_dict(doc.get("report", doc))
    job_id = doc.get("job_id", "")
    header = (f"fleet fidelity artifact — job {job_id}" if job_id
              else "fidelity artifact")
    return header + "\n" + report.summary()


def render_migration_document(doc: dict) -> str:
    """Summarize one ``ditto-migration/1`` artifact.

    Three sections mirror the pipeline's three stages: the preflight
    verdict sheet, the warm-start re-tune (knob deltas + iterations per
    tier), and the destination fidelity gate's per-metric table.
    """
    from repro.migrate.preflight import PreflightReport
    from repro.validation.gate import FidelityReport

    migration = doc.get("migration", {})
    sections = [f"migration artifact — {migration.get('source', '?')} -> "
                f"{migration.get('destination', '?')} "
                f"(entry {doc.get('entry_service', '?')}, "
                f"seed {migration.get('seed', '?')})"]
    sections.append("\n== preflight ==")
    sections.append(PreflightReport.from_dict(
        migration.get("preflight", {})).summary())
    sections.append("\n== re-tune ==")
    deltas = migration.get("retune", {})
    iterations = migration.get("tuning_iterations", {})
    if deltas:
        for tier in sorted(deltas):
            spent = iterations.get(tier, 0)
            sections.append(f"{tier} ({spent} iteration"
                            f"{'s' if spent != 1 else ''}):")
            for knob, move in sorted(deltas[tier].items()):
                sections.append(f"  {knob:<20} {move['from']:.4g} -> "
                                f"{move['to']:.4g}")
    else:
        sections.append("(every knob transferred unchanged)")
    for step in migration.get("remediation", []):
        sections.append(f"remediation: {step}")
    sections.append("\n== destination gate ==")
    sections.append(FidelityReport.from_dict(
        migration.get("fidelity", {})).summary())
    return "\n".join(sections)


def render_fleet_report(store_root: str) -> str:
    """One section per fleet job, plus the flight-log summary.

    Imports stay local so the telemetry layer keeps no hard dependency
    on the fleet package (it is the fleet that builds on telemetry).
    """
    from repro.fleet.obs.flight import read_flight_log
    from repro.fleet.store import JobStore
    from repro.validation.gate import FidelityReport

    store = JobStore(store_root, flight=False)
    sections = [f"fleet report — {store_root}"]
    records = store.list()
    if not records:
        sections.append("(store holds no jobs)")
    for record in records:
        sections.append(f"\n== job {record.job_id} "
                        f"({record.state.value}) ==")
        sections.append(record.spec.describe())
        for edge in record.history:
            reason = f"  ({edge.reason})" if edge.reason else ""
            sections.append(f"  {edge.from_state.value} -> "
                            f"{edge.to_state.value}{reason}")
        if record.attempts:
            sections.append(f"  remediation rungs climbed: "
                            f"{record.attempts}")
        if record.error:
            sections.append(f"  error: {record.error}")
        fidelity_path = store.fidelity_path(record.job_id)
        if os.path.exists(fidelity_path):
            try:
                artifact = load_run(fidelity_path)
                report = FidelityReport.from_dict(
                    artifact.get("report", {}))
            except (ValueError, KeyError, TypeError):
                sections.append("  (fidelity artifact unreadable)")
            else:
                sections.extend("  " + line
                                for line in report.summary().splitlines())
    flight = read_flight_log(store.flight_path)
    if flight.events or flight.skipped:
        sections.append("\n== flight log ==")
        counts = sorted(flight.counts().items(),
                        key=lambda kv: (-kv[1], kv[0]))
        sections.append(f"{len(flight.events)} events"
                        + (f", {flight.skipped} corrupt skipped"
                           if flight.skipped else ""))
        sections.extend(f"  {kind}: {count}" for kind, count in counts)
    return "\n".join(sections)


def _render_any(path: str, prometheus: bool) -> None:
    if os.path.isdir(path):
        print(render_fleet_report(path))
        return
    doc = load_run(path)
    if doc.get("format") == "ditto-fleet-fidelity/1":
        print(render_fidelity_artifact(doc))
        return
    if doc.get("format") == "ditto-migration":
        print(render_migration_document(doc))
        return
    print(render_report(doc))
    if prometheus:
        registry = MetricsRegistry().merge(doc.get("metrics", {}))
        print("\n== prometheus exposition ==")
        print(registry.to_prometheus_text(), end="")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: summarize runs, fleet artifacts, or stores."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarize saved Ditto telemetry runs and fleet "
                    "artifacts.")
    parser.add_argument("run", nargs="+",
                        help="telemetry run JSON (Telemetry.save "
                        "output), fleet fidelity artifact, or a fleet "
                        "store directory")
    parser.add_argument("--prometheus", action="store_true",
                        help="also dump the metrics registry in "
                        "Prometheus text exposition format")
    args = parser.parse_args(argv)
    for index, path in enumerate(args.run):
        if index:
            print()
        _render_any(path, args.prometheus)
    return 0


if __name__ == "__main__":    # pragma: no cover - exercised via CLI
    raise SystemExit(main())
