"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

Renders a telemetry session as the Trace Event Format's "JSON object"
flavour: ``{"traceEvents": [...]}``. Two track groups:

- **wall-clock pipeline spans** — one process row per OS process that
  recorded spans (so a process-pool clone shows its workers side by
  side), one thread row per recording thread, spans as complete ("X")
  events;
- **simulated time** — one synthetic process row per recorded
  simulation run (every run starts at sim time zero, so runs must not
  share a clock axis), one thread row per service/device track, events
  as duration ("B"/"E") and instant ("i") phases.

Timestamps are microseconds, as the format requires; wall-clock spans
are rebased to the earliest span so traces open near t=0.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.spans import SpanRecord
from repro.telemetry.timeline import SimTimeline

__all__ = ["chrome_trace", "write_chrome_trace"]

#: synthetic pid namespace for simulated-time tracks (real pids are
#: comfortably below this)
SIM_PID_BASE = 1 << 22


def _metadata(name: str, pid: int, tid: int, value: str) -> dict:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": value}}


def _span_events(records: Sequence[SpanRecord],
                 main_pid: Optional[int],
                 base_us: Optional[int] = None) -> List[dict]:
    if not records:
        return []
    if base_us is None:
        base_us = min(record.ts_us for record in records)
    events: List[dict] = []
    named_pids: Dict[int, None] = {}
    named_tids: Dict[tuple, None] = {}
    for record in records:
        if record.pid not in named_pids:
            named_pids[record.pid] = None
            role = ("pipeline" if main_pid is None or record.pid == main_pid
                    else "pipeline worker")
            events.append(_metadata("process_name", record.pid, 0,
                                    f"ditto {role} (pid {record.pid})"))
        if (record.pid, record.tid) not in named_tids:
            named_tids[(record.pid, record.tid)] = None
            events.append(_metadata("thread_name", record.pid, record.tid,
                                    record.thread_name))
        events.append({
            "name": record.name,
            "cat": record.category,
            "ph": "X",
            "ts": record.ts_us - base_us,
            "dur": record.dur_us,
            "pid": record.pid,
            "tid": record.tid,
            "args": dict(record.args),
        })
    return events


def _sim_events(timeline: SimTimeline) -> List[dict]:
    events: List[dict] = []
    track_tids: Dict[tuple, int] = {}
    named_runs: Dict[int, None] = {}
    for event in timeline.events:
        pid = SIM_PID_BASE + event.run
        if event.run not in named_runs:
            named_runs[event.run] = None
            label = (timeline.run_labels[event.run]
                     if event.run < len(timeline.run_labels)
                     else f"run {event.run}")
            events.append(_metadata("process_name", pid, 0,
                                    f"simulated time: {label}"))
        key = (event.run, event.track)
        tid = track_tids.get(key)
        if tid is None:
            tid = len(track_tids) + 1
            track_tids[key] = tid
            events.append(_metadata("thread_name", pid, tid, event.track))
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": "sim",
            "ph": event.ph,
            "ts": event.ts * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if event.ph == "X":
            entry["dur"] = (event.dur or 0.0) * 1e6
        if event.ph == "i":
            entry["s"] = "t"    # thread-scoped instant
        if event.args:
            entry["args"] = dict(event.args)
        events.append(entry)
    return events


def chrome_trace(
    spans: Sequence[SpanRecord] = (),
    timeline: Optional[SimTimeline] = None,
    *,
    main_pid: Optional[int] = None,
    metadata: Optional[Dict[str, Any]] = None,
    extra_events: Sequence[dict] = (),
) -> dict:
    """Build the trace-event document for spans and/or a sim timeline.

    ``extra_events`` are preformatted trace events on the *wall-clock*
    axis (``ts`` in absolute epoch microseconds, like
    :attr:`SpanRecord.ts_us`); they are rebased together with the spans
    so externally recorded timelines — the fleet flight recorder — line
    up with the pipeline spans in one merged Perfetto view. Metadata
    ("M") events pass through untouched.
    """
    span_list = list(spans)
    extras = [dict(event) for event in extra_events]
    bases = [record.ts_us for record in span_list]
    bases += [event["ts"] for event in extras if event.get("ph") != "M"]
    base_us = min(bases) if bases else None
    events = _span_events(span_list, main_pid, base_us)
    for event in extras:
        if event.get("ph") != "M":
            event["ts"] -= base_us
    events.extend(extras)
    if timeline is not None:
        events.extend(_sim_events(timeline))
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def write_chrome_trace(path: str, spans: Sequence[SpanRecord] = (),
                       timeline: Optional[SimTimeline] = None,
                       **kwargs: Any) -> str:
    """Write :func:`chrome_trace` output to ``path``; returns ``path``."""
    doc = chrome_trace(spans, timeline, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
    return path
