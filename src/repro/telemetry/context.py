"""Ambient telemetry session lookup.

Instrumentation sites (:func:`repro.telemetry.spans.span`, the runtime's
sim-timeline hooks, :class:`~repro.runtime.expcache.ExperimentCache`)
look up the *current* :class:`~repro.telemetry.session.Telemetry`
session here instead of taking it as a parameter, so code that is not
being observed pays one context-variable read and nothing else.

A :class:`~contextvars.ContextVar` rather than a module global: worker
threads of a thread-pool pipeline each activate their own session
without clobbering each other (context variables are effectively
thread-local unless a context is explicitly propagated).
"""

from __future__ import annotations

from contextvars import ContextVar, Token
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.session import Telemetry

__all__ = ["activate", "current_session", "deactivate"]

_session: "ContextVar[Optional[Telemetry]]" = ContextVar(
    "ditto_telemetry_session", default=None)


def current_session() -> "Optional[Telemetry]":
    """The active telemetry session, or None when telemetry is off."""
    return _session.get()


def activate(session: "Telemetry") -> Token:
    """Install ``session`` as current; returns the restore token."""
    return _session.set(session)


def deactivate(token: Token) -> None:
    """Restore the session that was current before :func:`activate`."""
    _session.reset(token)
