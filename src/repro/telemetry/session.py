"""The telemetry session: registry + spans + sim timeline in one handle.

A :class:`Telemetry` object is what users enable and what
:class:`~repro.core.cloner.CloneReport` carries. Activating it (as a
context manager, or implicitly by handing it to
:class:`~repro.core.cloner.DittoCloner`) installs it as the ambient
session that :func:`repro.telemetry.spans.span`, the experiment
runtime's sim-timeline hooks and
:class:`~repro.runtime.expcache.ExperimentCache` all discover.

Process-pool pipeline workers cannot see the parent's session; they
build their own (:meth:`Telemetry.for_worker`), do the tier's work under
it, and ship back a picklable :class:`WorkerTelemetry` payload that the
parent folds in with :meth:`Telemetry.absorb` — counters add, spans
concatenate (keeping the worker's pid, so the merged Chrome trace shows
each worker as its own process row).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry import context as _context
from repro.telemetry.chrometrace import chrome_trace, write_chrome_trace
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanCollector, SpanRecord
from repro.telemetry.timeline import DEFAULT_MAX_SIM_EVENTS, SimTimeline

__all__ = ["Telemetry", "WorkerTelemetry", "current_session"]

#: saved-run document format tag
RUN_FORMAT = "ditto-telemetry-run/1"

current_session = _context.current_session


@dataclass
class WorkerTelemetry:
    """What a pipeline worker sends back to the parent (picklable)."""

    metrics: Dict[str, dict] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)


class Telemetry:
    """One observability session over clone/experiment runs."""

    def __init__(self, *, label: str = "", sim_timeline: bool = True,
                 max_sim_events: int = DEFAULT_MAX_SIM_EVENTS) -> None:
        self.label = label
        self.registry = MetricsRegistry()
        self.spans = SpanCollector()
        self.timeline: Optional[SimTimeline] = (
            SimTimeline(max_events=max_sim_events) if sim_timeline
            else None)
        #: pid of the process that owns the session (labels the main
        #: pipeline row in the Chrome export)
        self.pid = os.getpid()
        self._token = None
        self._depth = 0

    # ------------------------------------------------------------------ #
    # activation
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Telemetry":
        self.activate()
        return self

    def __exit__(self, *_exc) -> bool:
        self.deactivate()
        return False

    def activate(self) -> "Telemetry":
        """Install as the ambient session (re-entrant activations nest)."""
        self._depth += 1
        if self._token is None:
            self._token = _context.activate(self)
        return self

    def deactivate(self) -> None:
        """Uninstall once the outermost activation exits."""
        if self._depth > 0:
            self._depth -= 1
        if self._depth == 0 and self._token is not None:
            _context.deactivate(self._token)
            self._token = None

    # ------------------------------------------------------------------ #
    # worker round-trip
    # ------------------------------------------------------------------ #
    @classmethod
    def for_worker(cls) -> "Telemetry":
        """A lightweight session for one pipeline worker task.

        No sim timeline: fine-tune measurement runs inside workers are
        numerous and their per-request event streams would dwarf the
        payload shipped back to the parent.
        """
        return cls(sim_timeline=False)

    def payload(self) -> WorkerTelemetry:
        """Snapshot for shipping across a process boundary."""
        return WorkerTelemetry(metrics=self.registry.snapshot(),
                               spans=list(self.spans.records))

    def absorb(self, payload: Optional[WorkerTelemetry]) -> "Telemetry":
        """Fold a worker payload in (None is tolerated and ignored)."""
        if payload is not None:
            self.registry.merge(payload.metrics)
            self.spans.extend(payload.spans)
        return self

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def chrome_trace(self) -> dict:
        """Both timelines as one Chrome trace-event document."""
        return chrome_trace(self.spans.records, self.timeline,
                            main_pid=self.pid,
                            metadata={"label": self.label} if self.label
                            else None)

    def write_chrome_trace(self, path: str) -> str:
        """Write the Chrome trace to ``path`` (Perfetto-loadable)."""
        return write_chrome_trace(path, self.spans.records, self.timeline,
                                  main_pid=self.pid)

    def snapshot(self) -> dict:
        """The saved-run document (input of the report CLI)."""
        return {
            "format": RUN_FORMAT,
            "label": self.label,
            "metrics": self.registry.snapshot(),
            "spans": [record.to_dict() for record in self.spans.records],
            "sim_timeline": (self.timeline.to_dict()
                             if self.timeline is not None else None),
        }

    def save(self, path: str) -> str:
        """Write the saved-run document as JSON; returns ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle)
        return path

    def report_table(self) -> str:
        """The report CLI's text summary for this session."""
        from repro.telemetry.report import render_report
        return render_report(self.snapshot())
