"""Cache models.

Two complementary views of the same hardware:

- :class:`SetAssociativeCache` — an explicit set-associative LRU cache
  simulator. This is what the Valgrind-like working-set profiler drives
  when it sweeps "cache sizes" (§4.4.4): it replays sampled address
  streams and counts hits, exactly as ``cachegrind`` would.
- closed-form hit/miss fractions for the runtime timing model
  (:func:`miss_fraction`), exploiting the paper's key observation: for a
  sequential loop over a working set of W bytes under (pseudo-)LRU, every
  access hits when the cache is at least W bytes and misses otherwise,
  independent of hierarchy depth or inclusion policy.

:class:`CacheHierarchy` composes per-level configs into the L1i/L1d/L2/LLC
stack of Table 1's platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.hw.ir import MemAccessSpec, MemPattern
from repro.hw.stackdist import stack_distances
from repro.util.errors import ConfigurationError

LINE_BYTES = 64

#: below this many addresses the scalar LRU walk beats batch setup costs
_BATCH_MIN = 64


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    latency_cycles: float
    line_bytes: int = LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes < self.line_bytes:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} below one line"
            )
        if self.associativity < 1:
            raise ConfigurationError(f"{self.name}: associativity must be >= 1")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ConfigurationError(
                f"{self.name}: size must be a multiple of line*associativity"
            )
        if self.latency_cycles < 0:
            raise ConfigurationError(f"{self.name}: negative latency")
        # Precomputed (not a dataclass field: digests/eq/repr unchanged) —
        # the simulator reads this once per access.
        object.__setattr__(
            self, "num_sets",
            self.size_bytes // (self.line_bytes * self.associativity))

    def scaled(self, factor: float) -> "CacheConfig":
        """A config with capacity scaled by ``factor`` (sets rounded down).

        Used by the contention model to express a co-runner stealing
        capacity. The result keeps associativity and never shrinks below
        one set.
        """
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        new_sets = max(1, int(self.num_sets * factor))
        return replace(
            self, size_bytes=new_sets * self.line_bytes * self.associativity
        )


class SetAssociativeCache:
    """Explicit set-associative LRU cache simulator over line addresses.

    Addresses are byte addresses; the simulator tracks tags per set with
    true-LRU replacement. It is used by profilers (cache-size sweeps) and
    by tests that validate the closed-form model against simulation.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (state is kept)."""
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all lines and zero the counters."""
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.reset_stats()

    @property
    def accesses(self) -> int:
        """Total accesses observed since the last counter reset."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Miss fraction since the last counter reset (0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        config = self.config
        line = address // config.line_bytes
        ways = self._sets[line % config.num_sets]
        try:
            position = ways.index(line)
        except ValueError:
            self.misses += 1
            ways.insert(0, line)
            if len(ways) > config.associativity:
                ways.pop()
            return False
        self.hits += 1
        ways.insert(0, ways.pop(position))
        return True

    def access_many(self, addresses: Iterable[int]) -> int:
        """Access a stream of addresses; returns the number of hits.

        Large array-like streams take a vectorized path (one Mattson
        stack-distance pass over all sets at once — a within-set
        distance below the associativity is a hit under true LRU) that
        leaves the counters *and* the resident state exactly as the
        per-access walk would; tests cross-check the two.
        """
        if not isinstance(addresses, np.ndarray):
            arr = np.asarray(addresses)
        else:
            arr = addresses
        if arr.dtype == object or arr.ndim != 1 or arr.shape[0] < _BATCH_MIN:
            return self._access_many_scalar(addresses)
        return self._access_many_batch(arr.astype(np.int64, copy=False))

    def _access_many_scalar(self, addresses: Iterable[int]) -> int:
        """Per-access reference walk (also the small-batch fast path)."""
        before = self.hits
        for address in addresses:
            self.access(int(address))
        return self.hits - before

    def _access_many_batch(self, addr: np.ndarray) -> int:
        config = self.config
        num_sets = config.num_sets
        associativity = config.associativity
        lines = addr // config.line_bytes
        sets = lines % num_sets
        # Current contents become pseudo-accesses in LRU->MRU order, so
        # batch accesses to resident lines see their true recency depth.
        prefix: List[int] = []
        for set_index in np.unique(sets).tolist():
            ways = self._sets[set_index]
            if ways:
                prefix.extend(ways[::-1])
        n_prefix = len(prefix)
        if n_prefix:
            all_lines = np.concatenate(
                [np.asarray(prefix, dtype=np.int64), lines])
        else:
            all_lines = lines
        all_sets = all_lines % num_sets
        # Stable sort groups each set's accesses contiguously (prefix
        # entries first, then batch entries in time order); same-set
        # stack distances are then computable in one global pass, since
        # a reuse window never crosses a set boundary.
        order = np.argsort(all_sets, kind="stable")
        ordered = all_lines[order]
        distances = stack_distances(ordered)
        batch_distances = distances[order >= n_prefix]
        hits = int(np.count_nonzero(
            (batch_distances >= 0) & (batch_distances < associativity)))
        self.hits += hits
        self.misses += lines.shape[0] - hits
        # Final residents per set = the associativity most recently used
        # distinct lines; rebuild only the touched sets.
        reverse = ordered[::-1]
        unique_lines, first_in_reverse = np.unique(reverse, return_index=True)
        last_position = ordered.shape[0] - 1 - first_in_reverse
        unique_sets = unique_lines % num_sets
        mru_order = np.lexsort((-last_position, unique_sets))
        grouped_sets = unique_sets[mru_order]
        grouped_lines = unique_lines[mru_order]
        starts = np.nonzero(
            np.r_[True, grouped_sets[1:] != grouped_sets[:-1]])[0]
        ends = np.r_[starts[1:], grouped_sets.shape[0]]
        sets_list = self._sets
        for set_index, start, end in zip(grouped_sets[starts].tolist(),
                                         starts.tolist(), ends.tolist()):
            sets_list[set_index] = \
                grouped_lines[start:min(end, start + associativity)].tolist()
        return hits


def generate_access_stream(
    spec: MemAccessSpec,
    rng: np.random.Generator,
    length: int,
    base: int = 0,
) -> np.ndarray:
    """Materialise a byte-address stream realising ``spec``'s pattern.

    The application models and the synthetic clones both turn their
    :class:`MemAccessSpec`s into concrete streams through this single
    function, so profilers observe addresses produced by the same
    mechanics for either side.
    """
    if length <= 0:
        raise ConfigurationError("stream length must be positive")
    lines = max(1, spec.wset_bytes // LINE_BYTES)
    if spec.pattern is MemPattern.SEQUENTIAL:
        offsets = np.arange(length) % lines
    elif spec.pattern is MemPattern.STRIDED:
        # Stride of 2 lines still touches every line over two sweeps.
        stride = 2
        offsets = (np.arange(length) * stride) % lines
    elif spec.pattern is MemPattern.RANDOM:
        offsets = rng.integers(0, lines, size=length)
    elif spec.pattern in (MemPattern.POINTER_CHASE, MemPattern.SHUFFLED):
        # A fixed random permutation cycle — irregular; for POINTER_CHASE
        # additionally each load depends on the previous one.
        perm = rng.permutation(lines)
        offsets = perm[np.arange(length) % lines]
    else:  # pragma: no cover - exhaustive over enum
        raise ConfigurationError(f"unknown pattern {spec.pattern}")
    return (base + offsets * LINE_BYTES).astype(np.int64)


#: memo for :func:`miss_fraction` — the timing model asks for the same
#: (pattern, working set, capacity) triples thousands of times per run
_MISS_FRACTION_MEMO: Dict[tuple, float] = {}
_MISS_FRACTION_MEMO_MAX = 1 << 16


def miss_fraction(spec: MemAccessSpec, cache_bytes: float) -> float:
    """Steady-state miss fraction of ``spec`` against a ``cache_bytes`` cache.

    Closed forms matching :class:`SetAssociativeCache` behaviour:

    - sequential/strided/pointer-chase cyclic patterns: all-hit when the
      working set fits, all-miss otherwise (the §4.4.4 LRU argument);
    - random: per-access hit probability is the resident fraction
      ``cache/W`` (capped at 1).
    """
    key = (spec.pattern, spec.wset_bytes, cache_bytes)
    memo = _MISS_FRACTION_MEMO
    cached = memo.get(key)
    if cached is not None:
        return cached
    if cache_bytes <= 0:
        result = 1.0
    elif spec.pattern is MemPattern.RANDOM:
        wset = float(spec.wset_bytes)
        result = float(max(0.0, 1.0 - min(1.0, cache_bytes / wset)))
    else:
        result = 0.0 if float(spec.wset_bytes) <= cache_bytes else 1.0
    if len(memo) >= _MISS_FRACTION_MEMO_MAX:
        memo.clear()
    memo[key] = result
    return result


class CacheHierarchy:
    """The per-core view of an L1i/L1d/L2/LLC stack plus memory latency."""

    def __init__(
        self,
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        llc: CacheConfig,
        memory_latency_cycles: float,
    ) -> None:
        if not l1d.size_bytes <= l2.size_bytes <= llc.size_bytes:
            raise ConfigurationError("cache sizes must be monotone L1d<=L2<=LLC")
        if memory_latency_cycles <= 0:
            raise ConfigurationError("memory latency must be positive")
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2
        self.llc = llc
        self.memory_latency_cycles = memory_latency_cycles
        # Per-hierarchy memos: the core model prices the same access
        # specs against one hierarchy for every request in a run.
        self._latency_memo: Dict[tuple, float] = {}
        self._profile_memo: Dict[tuple, Dict[str, float]] = {}

    def data_levels(self) -> Sequence[CacheConfig]:
        """The data-side levels, innermost first."""
        return (self.l1d, self.l2, self.llc)

    def instruction_levels(self) -> Sequence[CacheConfig]:
        """The instruction-side levels, innermost first."""
        return (self.l1i, self.l2, self.llc)

    def with_effective_sizes(
        self,
        l1i_factor: float = 1.0,
        l1d_factor: float = 1.0,
        l2_factor: float = 1.0,
        llc_factor: float = 1.0,
    ) -> "CacheHierarchy":
        """A hierarchy with capacities scaled by contention factors."""
        return CacheHierarchy(
            self.l1i.scaled(l1i_factor),
            self.l1d.scaled(l1d_factor),
            self.l2.scaled(l2_factor),
            self.llc.scaled(llc_factor),
            self.memory_latency_cycles,
        )

    def data_miss_profile(self, spec: MemAccessSpec) -> Dict[str, float]:
        """Miss fractions of ``spec`` at each data level.

        Returns a mapping level-name -> miss fraction *of the accesses
        presented to that level* — the hierarchy filters sequentially, so
        L2's denominator is L1d's misses, etc.
        """
        key = (spec.pattern, spec.wset_bytes)
        cached = self._profile_memo.get(key)
        if cached is not None:
            return dict(cached)
        profile: Dict[str, float] = {}
        for level in self.data_levels():
            profile[level.name] = miss_fraction(spec, level.size_bytes)
        self._profile_memo[key] = dict(profile)
        return profile

    def load_latency(self, spec: MemAccessSpec) -> float:
        """Expected cycles to satisfy one access of ``spec`` (no MLP/prefetch).

        Computed as the latency of the first level the access hits in,
        averaged over the hit/miss fractions.
        """
        key = (spec.pattern, spec.wset_bytes)
        cached = self._latency_memo.get(key)
        if cached is not None:
            return cached
        remaining = 1.0
        expected = 0.0
        for level in self.data_levels():
            miss = miss_fraction(spec, level.size_bytes)
            expected += remaining * (1.0 - miss) * level.latency_cycles
            remaining *= miss
        expected += remaining * self.memory_latency_cycles
        self._latency_memo[key] = expected
        return expected
