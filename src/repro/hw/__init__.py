"""Hardware substrate: caches, branch prediction, core model, platforms.

The CPU model is *analytical*: given a basic block's instruction mix,
memory-access specs, branch specs and dependency profile, it computes
cycles and performance-counter values the way llvm-mca/top-down analysis
would, using per-microarchitecture port/latency tables. Cache and branch
behaviour come from explicit simulators (used by the Valgrind-/SDE-like
profilers) and matching closed forms (used for fast runtime timing).
"""

from repro.hw.cache import CacheConfig, CacheHierarchy, SetAssociativeCache
from repro.hw.branch import BranchPredictorModel, GsharePredictor
from repro.hw.core import BlockTiming, CoreModel, ExecutionContext
from repro.hw.ir import (
    BlockSpec,
    BranchSpec,
    DependencyProfile,
    MemAccessSpec,
    MemPattern,
)
from repro.hw.platform import (
    PLATFORM_A,
    PLATFORM_B,
    PLATFORM_C,
    DiskSpec,
    NetworkSpec,
    PlatformSpec,
    load_platform_spec,
    platform_by_name,
    platform_from_dict,
    platform_to_dict,
    register_platform,
    registered_platforms,
)
from repro.hw.topdown import TopDownBreakdown

__all__ = [
    "BlockSpec",
    "BlockTiming",
    "BranchPredictorModel",
    "BranchSpec",
    "CacheConfig",
    "CacheHierarchy",
    "CoreModel",
    "DependencyProfile",
    "DiskSpec",
    "ExecutionContext",
    "GsharePredictor",
    "MemAccessSpec",
    "MemPattern",
    "NetworkSpec",
    "PLATFORM_A",
    "PLATFORM_B",
    "PLATFORM_C",
    "PlatformSpec",
    "SetAssociativeCache",
    "TopDownBreakdown",
    "load_platform_spec",
    "platform_by_name",
    "platform_from_dict",
    "platform_to_dict",
    "register_platform",
    "registered_platforms",
]
