"""Vectorized Mattson stack distances (the §4.4.4 sweep kernel).

The LRU stack distance of access ``i`` is the number of *distinct*
values touched strictly between ``i`` and the previous access to the
same value (``-1`` on first touch). Under (fully associative) LRU, an
access hits a cache of ``C`` lines iff its stack distance is ``< C`` —
the inclusion property that lets one pass price every cache size.

The classic online computation (Fenwick tree over marked positions,
see :mod:`repro.profiling.wset`'s reference implementation) is an
O(N log N) *Python* loop, which dominated profiling sweeps. This module
computes the same distances with NumPy only:

with ``prev[i]`` the previous-occurrence index, the duplicates inside
the window ``(prev[i], i)`` are exactly the positions ``t`` whose own
``prev[t]`` exceeds ``prev[i]`` (for ``t <= prev[i]`` that is impossible
since ``prev[t] < t``), so

    distance[i] = (i - prev[i] - 1) - #{t < i : prev[t] > prev[i]}

which reduces the problem to per-element *inversion counts* over the
``prev`` sequence — computed by a bottom-up mergesort whose per-level
merge/count steps are whole-array NumPy operations (sort each block,
rank one half against the other with a single offset-flattened
``searchsorted``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["previous_occurrences", "count_prior_larger", "stack_distances"]


def previous_occurrences(values: np.ndarray) -> np.ndarray:
    """``prev[i]`` = last ``j < i`` with ``values[j] == values[i]``, else -1."""
    values = np.asarray(values)
    n = values.shape[0]
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(values, kind="stable")
    ordered = values[order]
    same = ordered[1:] == ordered[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def count_prior_larger(values: np.ndarray) -> np.ndarray:
    """``counts[j]`` = ``#{k < j : values[k] > values[j]}`` (vectorized).

    ``values`` must be non-negative integers. Bottom-up mergesort: at
    each level the left half of every block holds strictly earlier
    original positions than the right half, so ranking right-half
    elements against the (sorted) left half counts exactly the
    cross-half inversions; within-half inversions were counted at the
    previous level. All blocks are ranked with one ``searchsorted`` by
    offsetting each block into its own disjoint value range.
    """
    values = np.asarray(values, dtype=np.int64)
    n = values.shape[0]
    if n < 2:
        return np.zeros(n, dtype=np.int64)
    size = 1 << (n - 1).bit_length()
    pad = int(values.max()) + 1  # sorts after every real value
    # Pack (value, original position) into one int64 so a plain sort is
    # a stable sort carrying provenance: packed // size recovers the
    # value, packed % size the position. Left-half positions are always
    # smaller than right-half positions, so packed_left < packed_right
    # iff value_left <= value_right — exactly the <= rank we need.
    # (Bounded by ~2 n^2; overflows int64 only beyond ~2e9 elements.)
    packed = np.full(size, pad * size, dtype=np.int64)
    packed[:n] = values * size + np.arange(n, dtype=np.int64)
    packed[n:] += np.arange(n, size, dtype=np.int64)
    counts = np.zeros(size, dtype=np.int64)
    half_slots = np.arange(size // 2, dtype=np.int64)
    width = 1
    while width < size:
        packed = np.sort(packed.reshape(-1, 2 * width), axis=1).ravel()
        positions = packed & (size - 1)
        # Merges permute only within fixed (aligned, power-of-two) block
        # spans, so an element's half at this level is determined by its
        # original position's low bits.
        is_right = (positions & (2 * width - 1)) >= width
        slots = np.nonzero(is_right)[0]
        # Each block holds exactly `width` right-half elements, still in
        # value order after the merge, so the k-th right element of a
        # block has right-rank k; the left-half elements preceding it in
        # merged order are its in-block slot minus that rank — i.e. the
        # left elements with value <= its value.
        left_before = (slots & (2 * width - 1)) - (half_slots & (width - 1))
        # Pads only ever meet all-pad right halves (they occupy a suffix
        # of the original array), so they contribute no spurious counts.
        counts[positions[slots]] += width - left_before
        width *= 2
    return counts[:n]


def stack_distances(values: np.ndarray) -> np.ndarray:
    """Per-access LRU stack distance over ``values`` (-1 = first touch)."""
    values = np.asarray(values)
    n = values.shape[0]
    distances = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return distances
    prev = previous_occurrences(values)
    repeats = np.nonzero(prev >= 0)[0]
    if repeats.size:
        inversions = count_prior_larger(prev[repeats])
        distances[repeats] = repeats - prev[repeats] - 1 - inversions
    return distances
