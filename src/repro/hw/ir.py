"""Hardware-facing intermediate representation of application code.

Both the "original" application models and Ditto's synthetic clones are
expressed as :class:`BlockSpec` objects — the contract between software
models and the hardware timing model. A block corresponds to one of the
looping inline-assembly blocks in the paper's Fig. 3: a static code region
executed some number of times per request, with characteristic instruction
mix, memory accesses, branches and data dependencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.isa.instructions import iform
from repro.util.errors import ConfigurationError
from repro.util.quantize import bin_index, exponential_bins


class MemPattern(enum.Enum):
    """Data-access pattern within one working set.

    - ``SEQUENTIAL``: iterate cache lines in order (the synthetic pattern
      of Fig. 4; hardware-prefetcher friendly; exact LRU threshold
      behaviour — hit iff working set fits);
    - ``STRIDED``: constant stride > 1 line (prefetcher still detects);
    - ``RANDOM``: uniform random line within the working set (prefetcher
      hostile; partial hits when the set exceeds the cache);
    - ``SHUFFLED``: a fixed random permutation of the working set's lines,
      looped — the pattern Ditto's generator hard-codes for irregular
      accesses: same all-hit/all-miss threshold behaviour as SEQUENTIAL
      (the §4.4.4 LRU argument holds for any fixed visit order), but
      opaque to a stride prefetcher and to a reverse engineer;
    - ``POINTER_CHASE``: serialised dependent loads (kills MLP).
    """

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    RANDOM = "random"
    SHUFFLED = "shuffled"
    POINTER_CHASE = "pointer_chase"


#: Patterns a stride prefetcher can cover.
REGULAR_PATTERNS = (MemPattern.SEQUENTIAL, MemPattern.STRIDED)


@dataclass(frozen=True)
class MemAccessSpec:
    """Memory accesses against one working set, per block iteration.

    ``accesses`` counts cache-line touches per iteration; ``write_frac``
    is the store fraction; ``shared_frac`` the fraction hitting data
    shared across threads (coherence-miss exposure, §4.4.4).
    """

    wset_bytes: int
    accesses: float
    pattern: MemPattern = MemPattern.SEQUENTIAL
    write_frac: float = 0.0
    shared_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.wset_bytes < 64:
            raise ConfigurationError(
                f"working set must be >= one cache line (64B), got {self.wset_bytes}"
            )
        if self.accesses < 0:
            raise ConfigurationError("accesses must be non-negative")
        for name in ("write_frac", "shared_frac"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_regular(self) -> bool:
        """True when a stride prefetcher can cover this pattern."""
        return self.pattern in REGULAR_PATTERNS


@dataclass(frozen=True)
class BranchSpec:
    """A conditional-branch population inside a block.

    ``executions`` is dynamic executions per block iteration spread over
    ``static_count`` static branch sites. ``taken_rate`` and
    ``transition_rate`` are the §4.4.3 statistics: the probability a
    dynamic instance is taken, and the probability consecutive instances
    differ in direction.
    """

    executions: float
    taken_rate: float
    transition_rate: float
    static_count: int = 1

    def __post_init__(self) -> None:
        for name in ("taken_rate", "transition_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.executions < 0:
            raise ConfigurationError("executions must be non-negative")
        if self.static_count < 1:
            raise ConfigurationError("static_count must be >= 1")


#: Dependency-distance bin edges — 11 exponential bins, 1..1024 (§4.4.6).
DEP_DISTANCE_BINS: Tuple[int, ...] = tuple(exponential_bins(1, 1024))


@dataclass(frozen=True)
class DependencyProfile:
    """RAW/WAR/WAW dependency-distance distributions over the 11 bins.

    Each mapping goes bin-edge -> weight. RAW distances bound ILP; the
    profile also records the pointer-chase fraction that bounds MLP.
    """

    raw: Mapping[int, float] = field(default_factory=dict)
    war: Mapping[int, float] = field(default_factory=dict)
    waw: Mapping[int, float] = field(default_factory=dict)
    pointer_chase_frac: float = 0.0

    def __post_init__(self) -> None:
        for name in ("raw", "war", "waw"):
            for edge in getattr(self, name):
                if edge not in DEP_DISTANCE_BINS:
                    raise ConfigurationError(
                        f"{name} bin edge {edge} not in {DEP_DISTANCE_BINS}"
                    )
        if not 0.0 <= self.pointer_chase_frac <= 1.0:
            raise ConfigurationError("pointer_chase_frac must be in [0, 1]")

    def mean_raw_distance(self, default: float = 16.0) -> float:
        """Weighted mean RAW distance (instructions); ``default`` if empty."""
        total = sum(self.raw.values())
        if total <= 0.0:
            return default
        return sum(edge * weight for edge, weight in self.raw.items()) / total

    @staticmethod
    def quantize_distance(distance: float) -> int:
        """Snap a raw distance onto the 11-bin grid."""
        if distance < 1:
            distance = 1
        return DEP_DISTANCE_BINS[bin_index(distance, DEP_DISTANCE_BINS)]


@dataclass(frozen=True)
class BlockSpec:
    """One static code block: the unit the timing model prices.

    - ``iform_counts``: dynamic executions of each iform per iteration;
    - ``iterations``: loop count per request (the <LOOP_COUNT> of Fig. 3);
    - ``code_bytes``: static footprint of the block's instructions;
    - ``mem``: data accesses per iteration;
    - ``branches``: conditional-branch populations per iteration;
    - ``deps``: dependency-distance profile;
    - ``rep_elements``: average repeat count for REP-prefixed iforms.
    """

    name: str
    iform_counts: Mapping[str, float]
    iterations: float = 1.0
    code_bytes: int = 0
    mem: Tuple[MemAccessSpec, ...] = ()
    branches: Tuple[BranchSpec, ...] = ()
    deps: DependencyProfile = field(default_factory=DependencyProfile)
    rep_elements: float = 64.0

    def __post_init__(self) -> None:
        for name in self.iform_counts:
            iform(name)  # validates existence
        if self.iterations < 0:
            raise ConfigurationError("iterations must be non-negative")
        if self.code_bytes < 0:
            raise ConfigurationError("code_bytes must be non-negative")

    @property
    def instructions_per_iteration(self) -> float:
        """Dynamic instruction count per loop iteration."""
        return float(sum(self.iform_counts.values()))

    @property
    def instructions_per_request(self) -> float:
        """Dynamic instruction count contributed per request."""
        return self.instructions_per_iteration * self.iterations

    def static_code_bytes(self) -> int:
        """The block's code footprint.

        Explicit ``code_bytes`` wins; otherwise estimated from the static
        expansion of one iteration's iforms (as the generator emits one
        static instance per dynamic slot inside a block body).
        """
        if self.code_bytes > 0:
            return self.code_bytes
        total = 0.0
        for name, count in self.iform_counts.items():
            total += iform(name).size_bytes * count
        return int(round(total))

    def scaled(self, factor: float, name: str | None = None) -> "BlockSpec":
        """A copy with per-iteration work scaled by ``factor``."""
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return BlockSpec(
            name=name or self.name,
            iform_counts={k: v * factor for k, v in self.iform_counts.items()},
            iterations=self.iterations,
            code_bytes=self.code_bytes,
            mem=tuple(
                MemAccessSpec(m.wset_bytes, m.accesses * factor, m.pattern,
                              m.write_frac, m.shared_frac)
                for m in self.mem
            ),
            branches=tuple(
                BranchSpec(b.executions * factor, b.taken_rate,
                           b.transition_rate, b.static_count)
                for b in self.branches
            ),
            deps=self.deps,
            rep_elements=self.rep_elements,
        )


def merge_iform_counts(specs: List[BlockSpec]) -> Dict[str, float]:
    """Aggregate per-request dynamic iform counts over blocks."""
    totals: Dict[str, float] = {}
    for spec in specs:
        for name, count in spec.iform_counts.items():
            totals[name] = totals.get(name, 0.0) + count * spec.iterations
    return totals
