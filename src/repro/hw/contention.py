"""Multi-tenancy contention model (§3.4, §6.5).

When applications co-run on a node they share hardware-thread ports,
private caches (via SMT), the LLC (via capacity competition), and the NIC.
This module turns a description of the co-runners into the effective
:class:`~repro.hw.core.ExecutionContext` scaling factors for one target
application, mirroring how the paper's stressors (stress-ng cache/HT
benchmarks, iBench LLC, iperf3) degrade the victim.

The model is capacity-proportional: a cache level shared with a stressor
is split according to footprint pressure, so a victim whose working sets
fit comfortably keeps its share while a cache-hungry victim loses
proportionally — the mechanism by which Ditto clones "react to
interference the same way as the original" (§6.5): identical footprints
imply identical capacity shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

from repro.hw.core import ExecutionContext
from repro.hw.platform import PlatformSpec
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class CoRunner:
    """One co-located interfering workload.

    ``level`` names the resource it stresses; ``footprint_bytes`` its
    cache pressure (for cache levels); ``intensity`` in [0, 1] how hard it
    drives the resource; ``same_physical_core`` whether it runs on the SMT
    sibling of the victim (required for L1/L2/port interference).
    """

    level: str                      # "ht" | "l1d" | "l2" | "llc" | "net" | "disk"
    footprint_bytes: float = 0.0
    intensity: float = 1.0
    same_physical_core: bool = False

    def __post_init__(self) -> None:
        if self.level not in ("ht", "l1d", "l2", "llc", "net", "disk"):
            raise ConfigurationError(f"unknown interference level {self.level!r}")
        if not 0.0 <= self.intensity <= 1.0:
            raise ConfigurationError("intensity must be in [0, 1]")
        if self.footprint_bytes < 0:
            raise ConfigurationError("footprint must be non-negative")


@dataclass(frozen=True)
class ContentionFactors:
    """Multiplicative capacity/throughput factors for the victim."""

    l1i_factor: float = 1.0
    l1d_factor: float = 1.0
    l2_factor: float = 1.0
    llc_factor: float = 1.0
    smt_contention: float = 1.0
    net_share: float = 1.0
    disk_share: float = 1.0


def _capacity_share(victim_bytes: float, stressor_bytes: float) -> float:
    """The victim's share of a cache competed for by footprint."""
    if stressor_bytes <= 0:
        return 1.0
    if victim_bytes <= 0:
        # A victim with no footprint at this level keeps a floor share.
        return 0.5
    return max(0.2, victim_bytes / (victim_bytes + stressor_bytes))


def contention_factors(
    victim_footprint_bytes: float,
    corunners: Iterable[CoRunner],
) -> ContentionFactors:
    """Aggregate contention factors from all co-runners."""
    l1d = l2 = llc = 1.0
    smt = 1.0
    net = 1.0
    disk = 1.0
    for runner in corunners:
        if runner.level == "ht":
            if runner.same_physical_core:
                smt = min(2.0, smt + runner.intensity)
        elif runner.level == "l1d":
            if runner.same_physical_core:
                l1d = min(l1d, max(0.25, 1.0 - 0.5 * runner.intensity))
                smt = min(2.0, smt + 0.3 * runner.intensity)
        elif runner.level == "l2":
            if runner.same_physical_core:
                share = _capacity_share(victim_footprint_bytes,
                                        runner.footprint_bytes)
                l2 = min(l2, max(0.25, share))
                l1d = min(l1d, max(0.5, 1.0 - 0.25 * runner.intensity))
                smt = min(2.0, smt + 0.3 * runner.intensity)
        elif runner.level == "llc":
            share = _capacity_share(victim_footprint_bytes, runner.footprint_bytes)
            llc = min(llc, share)
        elif runner.level == "net":
            net = min(net, max(0.1, 1.0 - 0.5 * runner.intensity))
        elif runner.level == "disk":
            disk = min(disk, max(0.1, 1.0 - 0.5 * runner.intensity))
    return ContentionFactors(
        l1i_factor=min(1.0, l1d + 0.25) if l1d < 1.0 else 1.0,
        l1d_factor=l1d,
        l2_factor=l2,
        llc_factor=llc,
        smt_contention=smt,
        net_share=net,
        disk_share=disk,
    )


def apply_contention(
    ctx: ExecutionContext, factors: ContentionFactors
) -> ExecutionContext:
    """Return ``ctx`` with cache capacities and port sharing degraded."""
    caches = ctx.caches.with_effective_sizes(
        l1i_factor=factors.l1i_factor,
        l1d_factor=factors.l1d_factor,
        l2_factor=factors.l2_factor,
        llc_factor=factors.llc_factor,
    )
    return ctx.with_(caches=caches, smt_contention=min(2.0, factors.smt_contention))


@dataclass
class NodeOccupancy:
    """Tracks how many co-scheduled service threads compete on a node.

    Used by the runtime to derive load-dependent cache pressure: with more
    concurrently-active request handlers, each handler's effective share
    of the shared caches shrinks (the paper's high-load L2/LLC miss
    inflation in Fig. 5).
    """

    platform: PlatformSpec
    active_handlers: float = 1.0
    colocated_services: Tuple[str, ...] = field(default_factory=tuple)

    def shared_cache_factor(self, per_handler_bytes: float) -> float:
        """Victim share of the LLC given concurrent handler footprints."""
        if self.active_handlers <= 1.0:
            return 1.0
        total = per_handler_bytes * self.active_handlers
        if total <= 0:
            return 1.0
        capacity = float(self.platform.llc.size_bytes)
        if total <= capacity:
            return 1.0
        return max(0.2, capacity / total)
