"""Server platform specifications (Table 1 of the paper).

A :class:`PlatformSpec` bundles a microarchitecture, cache hierarchy,
frequency, core topology, memory, disk, and network. The three concrete
platforms mirror the paper's heterogeneous validation cluster:

=========  ============  ============  ============
field      Platform A    Platform B    Platform C
=========  ============  ============  ============
CPU        Gold 6152     E5-2660 v3    E3-1240 v5
Freq       2.10 GHz      2.60 GHz      3.50 GHz
Cores      22 x 2        10 x 2        4 x 1
uArch      Skylake       Haswell       Skylake
L2         1 MB          256 KB        256 KB
LLC        30.25 MB      25 MB         8 MB
RAM        192GB@2666    128GB@2400    32GB@2133
Disk       1 TB SSD      2 TB HDD      1 TB HDD
Network    10 GbE        1 GbE         1 GbE
=========  ============  ============  ============
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.hw.cache import CacheConfig, CacheHierarchy
from repro.hw.core import ExecutionContext
from repro.isa.ports import HASWELL, SKYLAKE_CLIENT, SKYLAKE_SERVER, UArch
from repro.util.errors import ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class DiskSpec:
    """A storage device: access latency plus streaming bandwidth."""

    kind: str                    # "ssd" | "hdd"
    capacity_bytes: int
    read_latency_s: float        # per-request device latency
    write_latency_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.kind not in ("ssd", "hdd"):
            raise ConfigurationError(f"unknown disk kind {self.kind!r}")
        for name in ("read_latency_s", "write_latency_s", "bandwidth_bytes_per_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def transfer_time(self, nbytes: float, write: bool = False) -> float:
        """Seconds to service one request of ``nbytes``."""
        latency = self.write_latency_s if write else self.read_latency_s
        return latency + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class NetworkSpec:
    """A NIC / link: bandwidth plus per-message base latency."""

    bandwidth_bits_per_s: float
    base_latency_s: float = 30e-6   # same-rack RTT/2 incl. stack traversal

    def __post_init__(self) -> None:
        if self.bandwidth_bits_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.base_latency_s < 0:
            raise ConfigurationError("base latency must be non-negative")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Link bandwidth in bytes/second."""
        return self.bandwidth_bits_per_s / 8.0

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to push ``nbytes`` onto the wire (excl. queueing)."""
        return self.base_latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class PlatformSpec:
    """One server platform."""

    name: str
    cpu_model: str
    uarch: UArch
    base_frequency_ghz: float
    cores_per_socket: int
    sockets: int
    smt_ways: int
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    llc: CacheConfig
    memory_latency_ns: float
    ram_bytes: int
    disk: DiskSpec
    network: NetworkSpec

    def __post_init__(self) -> None:
        if self.base_frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.cores_per_socket < 1 or self.sockets < 1:
            raise ConfigurationError("core/socket counts must be >= 1")

    @property
    def total_cores(self) -> int:
        """Physical cores across sockets."""
        return self.cores_per_socket * self.sockets

    def frequency_hz(self, frequency_ghz: Optional[float] = None) -> float:
        """Clock in Hz, with an optional DVFS override (Fig. 11)."""
        freq = frequency_ghz if frequency_ghz is not None else self.base_frequency_ghz
        if freq <= 0:
            raise ConfigurationError("frequency must be positive")
        return freq * 1e9

    def cycles_to_seconds(
        self, cycles: float, frequency_ghz: Optional[float] = None
    ) -> float:
        """Convert core cycles to wall-clock seconds."""
        return cycles / self.frequency_hz(frequency_ghz)

    def hierarchy(self, frequency_ghz: Optional[float] = None) -> CacheHierarchy:
        """The per-core cache hierarchy with DRAM latency in cycles.

        DRAM latency in *cycles* scales with the clock: a faster core waits
        more cycles for the same wall-clock DRAM access.
        """
        freq = frequency_ghz if frequency_ghz is not None else self.base_frequency_ghz
        memory_cycles = self.memory_latency_ns * freq
        return CacheHierarchy(self.l1i, self.l1d, self.l2, self.llc, memory_cycles)

    def context(
        self,
        frequency_ghz: Optional[float] = None,
        **overrides,
    ) -> ExecutionContext:
        """A default :class:`ExecutionContext` for this platform."""
        return ExecutionContext(
            uarch=self.uarch,
            caches=self.hierarchy(frequency_ghz),
            **overrides,
        )

    def with_disk(self, disk: DiskSpec) -> "PlatformSpec":
        """A copy with a different storage device."""
        return replace(self, disk=disk)


def _cache(name: str, size: int, assoc: int, latency: float) -> CacheConfig:
    return CacheConfig(name=name, size_bytes=size, associativity=assoc,
                       latency_cycles=latency)


PLATFORM_A = PlatformSpec(
    name="A",
    cpu_model="Xeon Gold 6152",
    uarch=SKYLAKE_SERVER,
    base_frequency_ghz=2.10,
    cores_per_socket=22,
    sockets=2,
    smt_ways=2,
    l1i=_cache("l1i", 32 * KB, 8, 4),
    l1d=_cache("l1d", 32 * KB, 8, 4),
    l2=_cache("l2", 1 * MB, 16, 14),
    llc=_cache("llc", 30 * MB + 256 * KB, 11, 50),
    memory_latency_ns=85.0,
    ram_bytes=192 * GB,
    disk=DiskSpec("ssd", 1024 * GB, read_latency_s=90e-6, write_latency_s=110e-6,
                  bandwidth_bytes_per_s=520e6),
    network=NetworkSpec(bandwidth_bits_per_s=10e9),
)

PLATFORM_B = PlatformSpec(
    name="B",
    cpu_model="Xeon E5-2660 v3",
    uarch=HASWELL,
    base_frequency_ghz=2.60,
    cores_per_socket=10,
    sockets=2,
    smt_ways=2,
    l1i=_cache("l1i", 32 * KB, 8, 4),
    l1d=_cache("l1d", 32 * KB, 8, 4),
    l2=_cache("l2", 256 * KB, 8, 12),
    llc=_cache("llc", 25 * MB, 20, 45),
    memory_latency_ns=95.0,
    ram_bytes=128 * GB,
    disk=DiskSpec("hdd", 2048 * GB, read_latency_s=4.2e-3, write_latency_s=4.6e-3,
                  bandwidth_bytes_per_s=160e6),
    network=NetworkSpec(bandwidth_bits_per_s=1e9),
)

PLATFORM_C = PlatformSpec(
    name="C",
    cpu_model="Xeon E3-1240 v5",
    uarch=SKYLAKE_CLIENT,
    base_frequency_ghz=3.50,
    cores_per_socket=4,
    sockets=1,
    smt_ways=2,
    l1i=_cache("l1i", 32 * KB, 8, 4),
    l1d=_cache("l1d", 32 * KB, 8, 4),
    l2=_cache("l2", 256 * KB, 4, 12),
    llc=_cache("llc", 8 * MB, 16, 42),
    memory_latency_ns=98.0,
    ram_bytes=32 * GB,
    disk=DiskSpec("hdd", 1024 * GB, read_latency_s=4.5e-3, write_latency_s=5.0e-3,
                  bandwidth_bytes_per_s=140e6),
    network=NetworkSpec(bandwidth_bits_per_s=1e9),
)

_PLATFORMS: Dict[str, PlatformSpec] = {
    "A": PLATFORM_A, "B": PLATFORM_B, "C": PLATFORM_C,
}


def platform_by_name(name: str) -> PlatformSpec:
    """Look a platform up by its Table 1 letter."""
    try:
        return _PLATFORMS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r}; expected one of {sorted(_PLATFORMS)}"
        ) from None
