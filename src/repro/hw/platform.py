"""Server platform specifications (Table 1 of the paper).

A :class:`PlatformSpec` bundles a microarchitecture, cache hierarchy,
frequency, core topology, memory, disk, and network. The three concrete
platforms mirror the paper's heterogeneous validation cluster:

=========  ============  ============  ============
field      Platform A    Platform B    Platform C
=========  ============  ============  ============
CPU        Gold 6152     E5-2660 v3    E3-1240 v5
Freq       2.10 GHz      2.60 GHz      3.50 GHz
Cores      22 x 2        10 x 2        4 x 1
uArch      Skylake       Haswell       Skylake
L2         1 MB          256 KB        256 KB
LLC        30.25 MB      25 MB         8 MB
RAM        192GB@2666    128GB@2400    32GB@2133
Disk       1 TB SSD      2 TB HDD      1 TB HDD
Network    10 GbE        1 GbE         1 GbE
=========  ============  ============  ============
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Optional

from repro.hw.cache import CacheConfig, CacheHierarchy
from repro.hw.core import ExecutionContext
from repro.isa.ports import (
    ALL_UARCHES,
    HASWELL,
    SKYLAKE_CLIENT,
    SKYLAKE_SERVER,
    UArch,
)
from repro.util.errors import ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class DiskSpec:
    """A storage device: access latency plus streaming bandwidth."""

    kind: str                    # "ssd" | "hdd"
    capacity_bytes: int
    read_latency_s: float        # per-request device latency
    write_latency_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.kind not in ("ssd", "hdd"):
            raise ConfigurationError(f"unknown disk kind {self.kind!r}")
        for name in ("read_latency_s", "write_latency_s", "bandwidth_bytes_per_s"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    def transfer_time(self, nbytes: float, write: bool = False) -> float:
        """Seconds to service one request of ``nbytes``."""
        latency = self.write_latency_s if write else self.read_latency_s
        return latency + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class NetworkSpec:
    """A NIC / link: bandwidth plus per-message base latency."""

    bandwidth_bits_per_s: float
    base_latency_s: float = 30e-6   # same-rack RTT/2 incl. stack traversal

    def __post_init__(self) -> None:
        if self.bandwidth_bits_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.base_latency_s < 0:
            raise ConfigurationError("base latency must be non-negative")

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Link bandwidth in bytes/second."""
        return self.bandwidth_bits_per_s / 8.0

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to push ``nbytes`` onto the wire (excl. queueing)."""
        return self.base_latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class PlatformSpec:
    """One server platform."""

    name: str
    cpu_model: str
    uarch: UArch
    base_frequency_ghz: float
    cores_per_socket: int
    sockets: int
    smt_ways: int
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    llc: CacheConfig
    memory_latency_ns: float
    ram_bytes: int
    disk: DiskSpec
    network: NetworkSpec

    def __post_init__(self) -> None:
        if self.base_frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.cores_per_socket < 1 or self.sockets < 1:
            raise ConfigurationError("core/socket counts must be >= 1")

    @property
    def total_cores(self) -> int:
        """Physical cores across sockets."""
        return self.cores_per_socket * self.sockets

    def frequency_hz(self, frequency_ghz: Optional[float] = None) -> float:
        """Clock in Hz, with an optional DVFS override (Fig. 11)."""
        freq = frequency_ghz if frequency_ghz is not None else self.base_frequency_ghz
        if freq <= 0:
            raise ConfigurationError("frequency must be positive")
        return freq * 1e9

    def cycles_to_seconds(
        self, cycles: float, frequency_ghz: Optional[float] = None
    ) -> float:
        """Convert core cycles to wall-clock seconds."""
        return cycles / self.frequency_hz(frequency_ghz)

    def hierarchy(self, frequency_ghz: Optional[float] = None) -> CacheHierarchy:
        """The per-core cache hierarchy with DRAM latency in cycles.

        DRAM latency in *cycles* scales with the clock: a faster core waits
        more cycles for the same wall-clock DRAM access.
        """
        freq = frequency_ghz if frequency_ghz is not None else self.base_frequency_ghz
        memory_cycles = self.memory_latency_ns * freq
        return CacheHierarchy(self.l1i, self.l1d, self.l2, self.llc, memory_cycles)

    def context(
        self,
        frequency_ghz: Optional[float] = None,
        **overrides,
    ) -> ExecutionContext:
        """A default :class:`ExecutionContext` for this platform."""
        return ExecutionContext(
            uarch=self.uarch,
            caches=self.hierarchy(frequency_ghz),
            **overrides,
        )

    def with_disk(self, disk: DiskSpec) -> "PlatformSpec":
        """A copy with a different storage device."""
        return replace(self, disk=disk)


def _cache(name: str, size: int, assoc: int, latency: float) -> CacheConfig:
    return CacheConfig(name=name, size_bytes=size, associativity=assoc,
                       latency_cycles=latency)


PLATFORM_A = PlatformSpec(
    name="A",
    cpu_model="Xeon Gold 6152",
    uarch=SKYLAKE_SERVER,
    base_frequency_ghz=2.10,
    cores_per_socket=22,
    sockets=2,
    smt_ways=2,
    l1i=_cache("l1i", 32 * KB, 8, 4),
    l1d=_cache("l1d", 32 * KB, 8, 4),
    l2=_cache("l2", 1 * MB, 16, 14),
    llc=_cache("llc", 30 * MB + 256 * KB, 11, 50),
    memory_latency_ns=85.0,
    ram_bytes=192 * GB,
    disk=DiskSpec("ssd", 1024 * GB, read_latency_s=90e-6, write_latency_s=110e-6,
                  bandwidth_bytes_per_s=520e6),
    network=NetworkSpec(bandwidth_bits_per_s=10e9),
)

PLATFORM_B = PlatformSpec(
    name="B",
    cpu_model="Xeon E5-2660 v3",
    uarch=HASWELL,
    base_frequency_ghz=2.60,
    cores_per_socket=10,
    sockets=2,
    smt_ways=2,
    l1i=_cache("l1i", 32 * KB, 8, 4),
    l1d=_cache("l1d", 32 * KB, 8, 4),
    l2=_cache("l2", 256 * KB, 8, 12),
    llc=_cache("llc", 25 * MB, 20, 45),
    memory_latency_ns=95.0,
    ram_bytes=128 * GB,
    disk=DiskSpec("hdd", 2048 * GB, read_latency_s=4.2e-3, write_latency_s=4.6e-3,
                  bandwidth_bytes_per_s=160e6),
    network=NetworkSpec(bandwidth_bits_per_s=1e9),
)

PLATFORM_C = PlatformSpec(
    name="C",
    cpu_model="Xeon E3-1240 v5",
    uarch=SKYLAKE_CLIENT,
    base_frequency_ghz=3.50,
    cores_per_socket=4,
    sockets=1,
    smt_ways=2,
    l1i=_cache("l1i", 32 * KB, 8, 4),
    l1d=_cache("l1d", 32 * KB, 8, 4),
    l2=_cache("l2", 256 * KB, 4, 12),
    llc=_cache("llc", 8 * MB, 16, 42),
    memory_latency_ns=98.0,
    ram_bytes=32 * GB,
    disk=DiskSpec("hdd", 1024 * GB, read_latency_s=4.5e-3, write_latency_s=5.0e-3,
                  bandwidth_bytes_per_s=140e6),
    network=NetworkSpec(bandwidth_bits_per_s=1e9),
)

_PLATFORMS: Dict[str, PlatformSpec] = {
    "A": PLATFORM_A, "B": PLATFORM_B, "C": PLATFORM_C,
}


def platform_by_name(name: str) -> PlatformSpec:
    """Look a platform up by its Table 1 letter or registered name."""
    spec = _PLATFORMS.get(name)
    if spec is None:
        spec = _PLATFORMS.get(name.upper())
    if spec is None:
        raise ConfigurationError(
            f"unknown platform {name!r}; expected one of {sorted(_PLATFORMS)}"
        ) from None
    return spec


def registered_platforms() -> Dict[str, PlatformSpec]:
    """A snapshot of every registered platform (built-ins included)."""
    return dict(_PLATFORMS)


def register_platform(name: str, spec: PlatformSpec) -> PlatformSpec:
    """Register ``spec`` under ``name`` for :func:`platform_by_name`.

    Migration destinations are not limited to the paper's built-in
    A/B/C cluster — differently-shaped platforms (custom cache
    hierarchies, node counts, NICs) register here and become valid
    ``--destination`` targets everywhere a platform name is accepted.
    Re-registering the same name with an equal spec is an idempotent
    no-op; a *conflicting* re-registration raises, so a typo can never
    silently redefine what an existing experiment means.
    """
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"platform name must be a non-empty string, got {name!r}")
    if not isinstance(spec, PlatformSpec):
        raise ConfigurationError(
            f"spec must be a PlatformSpec, got {spec!r}")
    existing = _PLATFORMS.get(name)
    if existing is not None and existing != spec:
        raise ConfigurationError(
            f"platform {name!r} is already registered with a different "
            f"spec; pick another name")
    _PLATFORMS[name] = spec
    return spec


def _encode_cache(cache: CacheConfig) -> dict:
    return {"name": cache.name, "size_bytes": cache.size_bytes,
            "associativity": cache.associativity,
            "latency_cycles": cache.latency_cycles}


def _decode_cache(level: str, data: dict) -> CacheConfig:
    return CacheConfig(name=data.get("name", level),
                       size_bytes=data["size_bytes"],
                       associativity=data["associativity"],
                       latency_cycles=data["latency_cycles"])


def platform_to_dict(spec: PlatformSpec) -> dict:
    """JSON-safe form of a platform (inverse of
    :func:`platform_from_dict`). The microarchitecture travels by name
    (one of ``repro.isa.ports.ALL_UARCHES``), not by value — uarch
    port tables are model code, not configuration."""
    return {
        "name": spec.name,
        "cpu_model": spec.cpu_model,
        "uarch": spec.uarch.name,
        "base_frequency_ghz": spec.base_frequency_ghz,
        "cores_per_socket": spec.cores_per_socket,
        "sockets": spec.sockets,
        "smt_ways": spec.smt_ways,
        "caches": {level: _encode_cache(getattr(spec, level))
                   for level in ("l1i", "l1d", "l2", "llc")},
        "memory_latency_ns": spec.memory_latency_ns,
        "ram_bytes": spec.ram_bytes,
        "disk": {"kind": spec.disk.kind,
                 "capacity_bytes": spec.disk.capacity_bytes,
                 "read_latency_s": spec.disk.read_latency_s,
                 "write_latency_s": spec.disk.write_latency_s,
                 "bandwidth_bytes_per_s": spec.disk.bandwidth_bytes_per_s},
        "network": {"bandwidth_bits_per_s":
                    spec.network.bandwidth_bits_per_s,
                    "base_latency_s": spec.network.base_latency_s},
    }


def platform_from_dict(data: dict) -> PlatformSpec:
    """Build a :class:`PlatformSpec` from :func:`platform_to_dict` output."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"platform document must be an object, got {data!r}")
    uarch_name = data.get("uarch", "")
    uarch = ALL_UARCHES.get(uarch_name)
    if uarch is None:
        raise ConfigurationError(
            f"unknown uarch {uarch_name!r}; expected one of "
            f"{sorted(ALL_UARCHES)}")
    try:
        caches = data["caches"]
        disk = data["disk"]
        network = data["network"]
        return PlatformSpec(
            name=data["name"],
            cpu_model=data.get("cpu_model", ""),
            uarch=uarch,
            base_frequency_ghz=data["base_frequency_ghz"],
            cores_per_socket=data["cores_per_socket"],
            sockets=data["sockets"],
            smt_ways=data.get("smt_ways", 1),
            l1i=_decode_cache("l1i", caches["l1i"]),
            l1d=_decode_cache("l1d", caches["l1d"]),
            l2=_decode_cache("l2", caches["l2"]),
            llc=_decode_cache("llc", caches["llc"]),
            memory_latency_ns=data["memory_latency_ns"],
            ram_bytes=data["ram_bytes"],
            disk=DiskSpec(kind=disk["kind"],
                          capacity_bytes=disk["capacity_bytes"],
                          read_latency_s=disk["read_latency_s"],
                          write_latency_s=disk["write_latency_s"],
                          bandwidth_bytes_per_s=disk[
                              "bandwidth_bytes_per_s"]),
            network=NetworkSpec(
                bandwidth_bits_per_s=network["bandwidth_bits_per_s"],
                base_latency_s=network.get("base_latency_s", 30e-6)),
        )
    except KeyError as error:
        raise ConfigurationError(
            f"platform document is missing field {error}") from None


def load_platform_spec(path, *, register: bool = True) -> PlatformSpec:
    """Load a :class:`PlatformSpec` from a JSON (or YAML) file.

    JSON needs nothing beyond the standard library; ``.yaml``/``.yml``
    files work when PyYAML happens to be importable and raise a clear
    :class:`ConfigurationError` otherwise (this package deliberately
    adds no hard dependency for it). By default the loaded platform is
    also registered, so ``platform_by_name`` (and every CLI platform
    argument) resolves it immediately.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise ConfigurationError(
                f"{path}: YAML platform files need PyYAML, which is not "
                f"installed; convert the file to JSON") from None
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{path}: not valid JSON ({error})") from None
    spec = platform_from_dict(data)
    if register:
        register_platform(spec.name, spec)
    return spec
