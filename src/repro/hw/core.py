"""Analytical out-of-order core timing model.

Given a :class:`~repro.hw.ir.BlockSpec` and an :class:`ExecutionContext`
(microarchitecture + effective cache hierarchy + contention state), the
model computes cycles and performance counters for the block, in the
style of a static pipeline analyser crossed with top-down accounting:

- compute-bound cycles: max of issue-width, per-port-group, and
  dependency-chain (ILP) bounds;
- memory stalls: per-working-set miss fractions through the hierarchy,
  divided by achievable memory-level parallelism, minus prefetcher
  coverage for regular patterns;
- frontend stalls: instruction-side working-set behaviour (block footprint
  plus code executed between repeats vs the i-cache);
- bad speculation: measured misprediction rates from the gshare model
  times the microarchitecture's re-steer penalty.

The same model prices both original applications and Ditto's synthetic
clones — differences between the two arise only from how faithfully the
clone's specs reconstruct the original's, which is precisely what the
paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.hw.branch import BranchPredictorModel
from repro.hw.cache import LINE_BYTES, CacheHierarchy, miss_fraction
from repro.hw.ir import BlockSpec, MemAccessSpec, MemPattern
from repro.hw.topdown import TopDownBreakdown
from repro.isa.instructions import iform
from repro.isa.ports import PortGroup, UArch
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ExecutionContext:
    """Everything outside the block that shapes its timing.

    - ``caches``: the *effective* hierarchy after contention scaling;
    - ``smt_contention``: 1.0 when the sibling hardware thread is idle,
      up to 2.0 when it saturates the shared ports;
    - ``active_threads``: software threads of this application touching
      shared data (coherence exposure);
    - ``code_reuse_bytes``: i-side bytes executed between two consecutive
      executions of a block (other handlers, kernel code) — the i-cache
      reuse distance;
    - ``static_branch_sites``: total static conditional branches in the
      hot code (BTB/PHT aliasing pressure);
    - ``prefetch_coverage``: fraction of a regular-pattern miss's latency
      the stride prefetcher hides.
    """

    uarch: UArch
    caches: CacheHierarchy
    smt_contention: float = 1.0
    active_threads: int = 1
    code_reuse_bytes: float = 0.0
    static_branch_sites: int = 64
    prefetch_coverage: float = 0.75
    #: True when the thread was just scheduled in after an idle period:
    #: predictor tables/history are polluted by whatever ran in between.
    predictor_cold: bool = False
    branch_model: Optional[BranchPredictorModel] = None

    def __post_init__(self) -> None:
        if not 1.0 <= self.smt_contention <= 2.0:
            raise ConfigurationError("smt_contention must be within [1, 2]")
        if self.active_threads < 1:
            raise ConfigurationError("active_threads must be >= 1")
        if not 0.0 <= self.prefetch_coverage <= 1.0:
            raise ConfigurationError("prefetch_coverage must be in [0, 1]")

    def with_(self, **changes) -> "ExecutionContext":
        """A modified copy (dataclasses.replace convenience)."""
        return replace(self, **changes)

    @property
    def alias_pressure(self) -> float:
        """How saturated the branch predictor tables are, in [0, 1].

        A cold dispatch behaves like heavy aliasing: the intervening code
        overwrote the counters this thread trained.
        """
        pressure = self.static_branch_sites / self.uarch.btb_entries
        if self.predictor_cold:
            pressure += 0.5
        return min(1.0, pressure)

    def predictor(self) -> BranchPredictorModel:
        """The branch misprediction oracle for this context."""
        if self.branch_model is not None:
            return self.branch_model
        return BranchPredictorModel(self.uarch.predictor_history)


@dataclass
class BlockTiming:
    """Cycles and counters for one full execution of a block (all iterations)."""

    cycles: float = 0.0
    instructions: float = 0.0
    uops: float = 0.0
    branches: float = 0.0
    branch_mispredictions: float = 0.0
    l1i_accesses: float = 0.0
    l1i_misses: float = 0.0
    l1d_accesses: float = 0.0
    l1d_misses: float = 0.0
    l2_accesses: float = 0.0
    l2_misses: float = 0.0
    llc_accesses: float = 0.0
    llc_misses: float = 0.0
    memory_bytes: float = 0.0
    topdown: TopDownBreakdown = field(default_factory=TopDownBreakdown.zero)

    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 for an empty block)."""
        if self.cycles <= 0.0:
            return 0.0
        return self.instructions / self.cycles

    def __add__(self, other: "BlockTiming") -> "BlockTiming":
        # Hot path (one per block-pricing event): bypass the 15-keyword
        # dataclass __init__; the field sums are identical.
        result = BlockTiming.__new__(BlockTiming)
        result.__dict__ = {
            "cycles": self.cycles + other.cycles,
            "instructions": self.instructions + other.instructions,
            "uops": self.uops + other.uops,
            "branches": self.branches + other.branches,
            "branch_mispredictions": (
                self.branch_mispredictions + other.branch_mispredictions
            ),
            "l1i_accesses": self.l1i_accesses + other.l1i_accesses,
            "l1i_misses": self.l1i_misses + other.l1i_misses,
            "l1d_accesses": self.l1d_accesses + other.l1d_accesses,
            "l1d_misses": self.l1d_misses + other.l1d_misses,
            "l2_accesses": self.l2_accesses + other.l2_accesses,
            "l2_misses": self.l2_misses + other.l2_misses,
            "llc_accesses": self.llc_accesses + other.llc_accesses,
            "llc_misses": self.llc_misses + other.llc_misses,
            "memory_bytes": self.memory_bytes + other.memory_bytes,
            "topdown": self.topdown + other.topdown,
        }
        return result

    def scaled(self, factor: float) -> "BlockTiming":
        """Every additive quantity multiplied by ``factor``."""
        return BlockTiming(
            cycles=self.cycles * factor,
            instructions=self.instructions * factor,
            uops=self.uops * factor,
            branches=self.branches * factor,
            branch_mispredictions=self.branch_mispredictions * factor,
            l1i_accesses=self.l1i_accesses * factor,
            l1i_misses=self.l1i_misses * factor,
            l1d_accesses=self.l1d_accesses * factor,
            l1d_misses=self.l1d_misses * factor,
            l2_accesses=self.l2_accesses * factor,
            l2_misses=self.l2_misses * factor,
            llc_accesses=self.llc_accesses * factor,
            llc_misses=self.llc_misses * factor,
            memory_bytes=self.memory_bytes * factor,
            topdown=self.topdown.scaled(factor),
        )


class CoreModel:
    """Prices BlockSpecs on an ExecutionContext."""

    #: fraction of an i-miss refill that overlaps with execution
    FETCH_OVERLAP = 0.5
    #: fetch-group width used for L1i access accounting (16B groups)
    FETCH_BYTES = 16

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------ #
    # compute-bound components
    # ------------------------------------------------------------------ #
    def _port_uops(self, block: BlockSpec) -> Dict[PortGroup, float]:
        totals: Dict[PortGroup, float] = {}
        for name, count in block.iform_counts.items():
            form = iform(name)
            for group, uops in form.port_uops.items():
                totals[group] = totals.get(group, 0.0) + uops * count
            if form.is_rep:
                extra = form.rep_uops_per_element * block.rep_elements * count
                totals[PortGroup.STRING] = totals.get(PortGroup.STRING, 0.0) + extra
        return totals

    def _compute_cycles(
        self, block: BlockSpec, port_uops: Dict[PortGroup, float]
    ) -> tuple[float, float]:
        """Return (compute_cycles, total_uops) for one iteration."""
        uarch = self.ctx.uarch
        total_uops = sum(port_uops.values())
        issue_cycles = total_uops / uarch.issue_width
        port_cycles = 0.0
        for group, uops in port_uops.items():
            cycles = uarch.group(group).cycles_for(uops)
            port_cycles = max(port_cycles, cycles)
        # SMT sibling competes for the same issue ports.
        port_cycles *= self.ctx.smt_contention
        # Dependency-chain (ILP) bound: with mean RAW distance d, the
        # stream decomposes into ~d independent chains of n/d hops with
        # the mix's average producing latency per hop.
        instructions = block.instructions_per_iteration
        dep_cycles = 0.0
        if instructions > 0:
            weighted_latency = 0.0
            for name, count in block.iform_counts.items():
                weighted_latency += iform(name).latency * count
            avg_latency = max(0.5, weighted_latency / instructions)
            distance = max(1.0, block.deps.mean_raw_distance())
            chain_parallelism = min(distance, float(uarch.issue_width) * 2.0)
            dep_cycles = instructions * avg_latency / chain_parallelism
        return max(issue_cycles, port_cycles, dep_cycles), total_uops

    # ------------------------------------------------------------------ #
    # memory subsystem
    # ------------------------------------------------------------------ #
    def _memory_mlp(self, block: BlockSpec, spec: MemAccessSpec) -> float:
        """Achievable memory-level parallelism for ``spec``'s misses."""
        uarch = self.ctx.uarch
        if spec.pattern is MemPattern.POINTER_CHASE:
            return 1.0
        chase = block.deps.pointer_chase_frac
        mshr = float(uarch.mshr_count)
        # Harmonic blend: chasing fraction is serialised at MLP=1, the rest
        # enjoys the full miss-handling capacity.
        return 1.0 / (chase / 1.0 + (1.0 - chase) / mshr)

    def _memory_component(
        self, block: BlockSpec, timing: BlockTiming
    ) -> float:
        caches = self.ctx.caches
        stall = 0.0
        lat_l1 = caches.l1d.latency_cycles
        lat_l2 = caches.l2.latency_cycles
        lat_llc = caches.llc.latency_cycles
        lat_mem = caches.memory_latency_cycles
        other_threads = max(0, self.ctx.active_threads - 1)
        for spec in block.mem:
            accesses = spec.accesses
            if accesses <= 0:
                continue
            m1 = miss_fraction(spec, caches.l1d.size_bytes)
            m2 = miss_fraction(spec, caches.l2.size_bytes)
            m3 = miss_fraction(spec, caches.llc.size_bytes)
            # The hierarchy filters: fraction of accesses resolving at each
            # level (m2/m3 conditional on having missed inward levels).
            f_l2 = m1 * (1.0 - m2) if m1 > 0 else 0.0
            f_llc = m1 * m2 * (1.0 - m3) if m1 * m2 > 0 else 0.0
            f_mem = m1 * m2 * m3
            # Coherence misses: shared lines invalidated by other threads'
            # writes surface as extra L1d misses served from the LLC.
            coh_rate = spec.shared_frac * spec.write_frac * min(1.0, other_threads)
            extra_latency = (
                f_l2 * (lat_l2 - lat_l1)
                + f_llc * (lat_llc - lat_l1)
                + f_mem * (lat_mem - lat_l1)
                + coh_rate * (lat_llc - lat_l1)
            )
            if spec.is_regular:
                extra_latency *= 1.0 - self.ctx.prefetch_coverage
            mlp = self._memory_mlp(block, spec)
            stall += accesses * extra_latency / mlp
            # Counters.
            timing.l1d_accesses += accesses
            timing.l1d_misses += accesses * (m1 + coh_rate)
            timing.l2_accesses += accesses * m1
            timing.l2_misses += accesses * m1 * m2
            timing.llc_accesses += accesses * (m1 * m2 + coh_rate)
            timing.llc_misses += accesses * m1 * m2 * m3
            timing.memory_bytes += accesses * m1 * m2 * m3 * LINE_BYTES
        return stall

    # ------------------------------------------------------------------ #
    # frontend / instruction side
    # ------------------------------------------------------------------ #
    def _frontend_component(
        self, block: BlockSpec, timing: BlockTiming
    ) -> float:
        caches = self.ctx.caches
        code_bytes = float(block.static_code_bytes())
        if code_bytes <= 0:
            return 0.0
        instructions = block.instructions_per_iteration
        # Lines actually fetched per loop pass: instructions lay out
        # densely (4B each, 16 per line), so a pass touches at most
        # instructions/16 lines, capped by the block footprint.
        lines = max(1.0, min(code_bytes, 4.0 * max(1.0, instructions))
                    / LINE_BYTES)
        iterations = max(1.0, block.iterations)
        # Two reuse regimes: the first pass of a visit re-fetches lines
        # last seen one full visit ago (block + everything run in
        # between); subsequent loop passes re-fetch with the block body
        # itself as the reuse distance.
        first_spec = MemAccessSpec(
            wset_bytes=max(64, int(code_bytes + self.ctx.code_reuse_bytes)),
            accesses=lines, pattern=MemPattern.SEQUENTIAL,
        )
        loop_spec = MemAccessSpec(
            wset_bytes=max(64, int(code_bytes)), accesses=lines,
            pattern=MemPattern.SEQUENTIAL,
        )
        first_weight = 1.0 / iterations
        loop_weight = (iterations - 1.0) / iterations

        def blended(cache_bytes: float) -> float:
            return (miss_fraction(first_spec, cache_bytes) * first_weight
                    + miss_fraction(loop_spec, cache_bytes) * loop_weight)

        m1 = blended(caches.l1i.size_bytes)
        m2 = min(m1, blended(caches.l2.size_bytes))
        m3 = min(m2, blended(caches.llc.size_bytes))
        miss_l1 = lines * m1
        miss_l2 = lines * m2
        miss_llc = lines * m3
        lat_l2 = caches.l2.latency_cycles
        lat_llc = caches.llc.latency_cycles
        lat_mem = caches.memory_latency_cycles
        # Fetches resolve at the first level they hit: (m1-m2) of the
        # lines stop at L2, (m2-m3) at the LLC, m3 go to memory.
        stall = (
            lines * (m1 - m2) * lat_l2
            + lines * (m2 - m3) * lat_llc
            + lines * m3 * lat_mem
        ) * self.FETCH_OVERLAP
        timing.l1i_accesses += max(1.0, instructions * 4.0 / self.FETCH_BYTES)
        timing.l1i_misses += miss_l1
        timing.l2_accesses += miss_l1
        timing.l2_misses += miss_l2
        timing.llc_accesses += miss_l2
        timing.llc_misses += miss_llc
        timing.memory_bytes += miss_llc * LINE_BYTES
        # Decode-width bound adds to frontend pressure for dense blocks.
        return stall

    # ------------------------------------------------------------------ #
    # branches
    # ------------------------------------------------------------------ #
    def _branch_component(
        self, block: BlockSpec, timing: BlockTiming
    ) -> float:
        predictor = self.ctx.predictor()
        penalty = self.ctx.uarch.mispredict_penalty
        pressure = self.ctx.alias_pressure
        stall = 0.0
        for spec in block.branches:
            if spec.executions <= 0:
                continue
            rate = predictor.rate_for(spec, alias_pressure=pressure)
            misses = spec.executions * rate
            timing.branches += spec.executions
            timing.branch_mispredictions += misses
            stall += misses * penalty
        return stall

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def time_block(self, block: BlockSpec) -> BlockTiming:
        """Price all iterations of ``block`` under this context."""
        timing = BlockTiming()
        port_uops = self._port_uops(block)
        compute_cycles, total_uops = self._compute_cycles(block, port_uops)
        mem_stall = self._memory_component(block, timing)
        fe_stall = self._frontend_component(block, timing)
        bs_stall = self._branch_component(block, timing)
        cycles_per_iter = compute_cycles + mem_stall + fe_stall + bs_stall
        instructions = block.instructions_per_iteration
        timing.instructions = instructions
        timing.uops = total_uops
        timing.cycles = max(cycles_per_iter, total_uops / self.ctx.uarch.issue_width)
        width = self.ctx.uarch.issue_width
        total_slots = timing.cycles * width
        retiring = min(total_slots, total_uops)
        bad_spec = min(total_slots - retiring, bs_stall * width)
        frontend = min(total_slots - retiring - bad_spec, fe_stall * width)
        backend = max(0.0, total_slots - retiring - bad_spec - frontend)
        timing.topdown = TopDownBreakdown(retiring, frontend, bad_spec, backend)
        iterations = max(block.iterations, 0.0)
        return timing.scaled(iterations)

    def time_blocks(self, blocks) -> BlockTiming:
        """Sum of :meth:`time_block` over ``blocks``."""
        total = BlockTiming()
        for block in blocks:
            total = total + self.time_block(block)
        return total
