"""Branch-direction prediction models.

:class:`GsharePredictor` is an explicit global-history XOR-indexed
two-bit-counter predictor — the simulation ground truth. The runtime
timing model uses :class:`BranchPredictorModel`, which *measures* a
misprediction rate for a (taken-rate, transition-rate) population by
running synthetic outcome streams through a gshare instance and caching
the result; aliasing pressure from large static-branch populations (§4.4.3:
"instruction locality and the number of static branch instructions
significantly contribute to the branch prediction accuracy") is applied by
sharing predictor tables across the static sites.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.hw.ir import BranchSpec
from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng


def generate_branch_outcomes(
    taken_rate: float,
    transition_rate: float,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate a boolean outcome stream with the §4.4.3 statistics.

    The stream is a two-state Markov chain whose stationary taken
    probability is ``taken_rate`` and whose probability of changing
    direction between consecutive executions is ``transition_rate``.
    Transition probabilities are solved from:

        p_stationary(T) = p, with P(T->N) = a, P(N->T) = b
        stationarity:  p*a = (1-p)*b
        transitions:   p*a + (1-p)*b = t  =>  a = t/(2p), b = t/(2(1-p))

    Rates near 0 or 1 are clamped so the chain stays well-defined; this
    mirrors how real branches with extreme taken ratios have almost no
    transitions.
    """
    if length <= 0:
        raise ConfigurationError("stream length must be positive")
    if not 0.0 <= taken_rate <= 1.0 or not 0.0 <= transition_rate <= 1.0:
        raise ConfigurationError("rates must be within [0, 1]")
    p = min(max(taken_rate, 1e-6), 1.0 - 1e-6)
    # Transition rate is bounded by the stationary mix: a chain that is
    # taken with probability p cannot switch direction more often than
    # 2*min(p, 1-p) on average.
    t = min(transition_rate, 2.0 * min(p, 1.0 - p))
    a = min(1.0, t / (2.0 * p))            # P(taken -> not taken)
    b = min(1.0, t / (2.0 * (1.0 - p)))    # P(not taken -> taken)
    # Identical RNG consumption to the original sequential loop: one
    # draw for the initial state, then one per step.
    state = bool(rng.random() < p)
    randoms = rng.random(length)
    outcomes = np.empty(length, dtype=bool)
    outcomes[0] = state
    if length == 1:
        return outcomes
    # Vectorized closed form: step i applies one of three transfer
    # functions to the state, selected by randoms[i] against the two
    # flip thresholds (a when taken, b when not):
    #   r < min(a, b)          -> flip either way   (swap)
    #   min <= r < max(a, b)   -> both states land on the same side
    #                             (constant: taken iff a < b)
    #   r >= max(a, b)         -> no flip           (identity)
    # A state is then the last constant's value XOR the parity of swaps
    # since it (or the initial state XOR the total swap parity).
    steps = randoms[: length - 1]
    lo, hi = min(a, b), max(a, b)
    swaps = steps < lo
    constants = (steps >= lo) & (steps < hi)
    constant_value = a < b
    indices = np.arange(length - 1, dtype=np.int64)
    last_constant = np.where(constants, indices, -1)
    np.maximum.accumulate(last_constant, out=last_constant)
    swap_cumsum = np.cumsum(swaps)
    swaps_since = swap_cumsum - np.where(
        last_constant >= 0, swap_cumsum[np.maximum(last_constant, 0)], 0)
    base = np.where(last_constant >= 0, constant_value, state)
    outcomes[1:] = base ^ (swaps_since & 1).astype(bool)
    return outcomes


def generate_branch_outcomes_reference(
    taken_rate: float,
    transition_rate: float,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Scalar reference for :func:`generate_branch_outcomes` (tests)."""
    if length <= 0:
        raise ConfigurationError("stream length must be positive")
    if not 0.0 <= taken_rate <= 1.0 or not 0.0 <= transition_rate <= 1.0:
        raise ConfigurationError("rates must be within [0, 1]")
    p = min(max(taken_rate, 1e-6), 1.0 - 1e-6)
    t = min(transition_rate, 2.0 * min(p, 1.0 - p))
    a = min(1.0, t / (2.0 * p))
    b = min(1.0, t / (2.0 * (1.0 - p)))
    outcomes = np.empty(length, dtype=bool)
    state = rng.random() < p
    randoms = rng.random(length)
    for i in range(length):
        outcomes[i] = state
        flip = randoms[i] < (a if state else b)
        if flip:
            state = not state
    return outcomes


class GsharePredictor:
    """Global-history two-bit-counter predictor with a shared table."""

    def __init__(self, history_bits: int, table_bits: int = 12) -> None:
        if history_bits < 1 or table_bits < 1:
            raise ConfigurationError("history and table bits must be >= 1")
        self.history_bits = history_bits
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._history = 0
        self._table = np.full(1 << table_bits, 2, dtype=np.int8)  # weakly taken
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``; update with the actual outcome.

        Returns True when the prediction was correct.
        """
        index = self._index(pc)
        predicted_taken = self._table[index] >= 2
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken and self._table[index] < 3:
            self._table[index] += 1
        elif not taken and self._table[index] > 0:
            self._table[index] -= 1
        history_mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & history_mask
        return correct

    def predict_and_update_many(
        self, pcs: np.ndarray, takens: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`predict_and_update`; bit-identical to the loop.

        Returns a boolean array, True where the prediction was correct.
        The global history before each branch depends only on earlier
        outcomes (all known up front), so every table index is computed
        vectorized; the genuinely sequential part — two-bit counters
        seeing every earlier branch's update — runs as a lean loop over
        plain Python ints.
        """
        pcs = np.asarray(pcs, dtype=np.int64)
        takens = np.asarray(takens, dtype=bool)
        n = pcs.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        history_bits = self.history_bits
        outcomes = takens.astype(np.int64)
        initial = self._history
        history = np.zeros(n, dtype=np.int64)
        for bit in range(1, history_bits + 1):
            # Bit (bit-1) of the history before branch i is outcome
            # i-bit, or a carried-in initial-history bit for the head.
            column = np.empty(n, dtype=np.int64)
            if n > bit:
                column[bit:] = outcomes[: n - bit]
            head = min(bit, n)
            column[:head] = (
                initial >> np.arange(bit - 1, bit - 1 - head, -1)) & 1
            history |= column << (bit - 1)
        indices = ((pcs ^ history) & self._mask).tolist()
        table = self._table.tolist()
        takens_list = takens.tolist()
        correct: List[bool] = [False] * n
        misses = 0
        for i in range(n):
            index = indices[i]
            counter = table[index]
            taken = takens_list[i]
            ok = (counter >= 2) == taken
            correct[i] = ok
            if not ok:
                misses += 1
            if taken:
                if counter < 3:
                    table[index] = counter + 1
            elif counter > 0:
                table[index] = counter - 1
        self._table = np.asarray(table, dtype=np.int8)
        self.predictions += n
        self.mispredictions += misses
        history_mask = (1 << history_bits) - 1
        final = initial
        for taken in takens_list[max(0, n - history_bits):]:
            final = (final << 1) | taken
        self._history = final & history_mask
        return np.asarray(correct, dtype=bool)

    @property
    def misprediction_rate(self) -> float:
        """Fraction of mispredicted branches so far."""
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


class BranchPredictorModel:
    """Misprediction-rate oracle for branch populations.

    ``rate_for(spec, alias_pressure)`` returns the expected misprediction
    fraction of a :class:`BranchSpec` under a given table-aliasing
    pressure (0 = private tables, 1 = fully saturated BTB/PHT). Rates are
    measured once per quantised parameter tuple by Monte-Carlo simulation
    of a gshare predictor and memoised.
    """

    #: length of the measured outcome stream per parameter tuple
    STREAM_LENGTH = 4096
    #: resolution at which (taken, transition, alias) tuples are memoised
    QUANTUM = 0.02

    def __init__(self, history_bits: int, seed: int = 1234) -> None:
        self.history_bits = history_bits
        self.seed = seed

    def _quantise(self, value: float) -> float:
        return round(value / self.QUANTUM) * self.QUANTUM

    def rate_for(self, spec: BranchSpec, alias_pressure: float = 0.0) -> float:
        """Expected misprediction fraction for ``spec``."""
        if not 0.0 <= alias_pressure <= 1.0:
            raise ConfigurationError("alias_pressure must be in [0, 1]")
        key = (
            self._quantise(spec.taken_rate),
            self._quantise(spec.transition_rate),
            self._quantise(alias_pressure),
            self.history_bits,
            self.seed,
        )
        return _measured_rate(key)


@lru_cache(maxsize=4096)
def _measured_rate(
    key: Tuple[float, float, float, int, int]
) -> float:
    taken_rate, transition_rate, alias_pressure, history_bits, seed = key
    rng = make_rng(seed, "branch", f"{taken_rate:.3f}", f"{transition_rate:.3f}",
                   f"{alias_pressure:.3f}")
    outcomes = generate_branch_outcomes(
        taken_rate, transition_rate, BranchPredictorModel.STREAM_LENGTH, rng
    )
    # Aliasing: shrink the effective table so unrelated branches collide.
    # Pressure degrades gradually (13 bits of PHT down to 8): real
    # predictors lose accuracy with large static populations but never
    # fall to chance for well-biased branches.
    table_bits = max(8, int(round(13 - 5 * alias_pressure)))
    predictor = GsharePredictor(history_bits, table_bits=table_bits)
    pc = int(rng.integers(0, 1 << 30))
    # Interleave noise branches proportional to aliasing pressure so the
    # shared counters experience destructive updates, as they would with
    # a large static branch population.
    noise_every = None
    if alias_pressure > 0.0:
        noise_every = max(1, int(round(4 / alias_pressure)))
    noise_rng = make_rng(seed, "branch-noise", f"{alias_pressure:.3f}")
    noise_pcs = noise_rng.integers(0, 1 << 30, size=64)
    noise_outcomes = noise_rng.random(size=64) < 0.5
    total = len(outcomes)
    if noise_every is None:
        sequence_pcs = np.full(total, pc, dtype=np.int64)
        sequence_takens = outcomes
        is_target = np.ones(total, dtype=bool)
    else:
        # Alien branches sharing the (shrunken) tables corrupt the
        # target's counters and history — only the target's own
        # mispredictions are counted. Interleaving is built up front
        # (one noise branch after targets 0, ne, 2ne, ...) so the whole
        # stream goes through one batch predictor pass.
        noise_count = -(-total // noise_every)
        before = (np.arange(total, dtype=np.int64) + noise_every - 1) \
            // noise_every
        target_positions = np.arange(total, dtype=np.int64) + before
        noise_indices = np.arange(noise_count, dtype=np.int64)
        noise_positions = target_positions[noise_indices * noise_every] + 1
        length = total + noise_count
        sequence_pcs = np.empty(length, dtype=np.int64)
        sequence_takens = np.empty(length, dtype=bool)
        is_target = np.zeros(length, dtype=bool)
        is_target[target_positions] = True
        sequence_pcs[target_positions] = pc
        sequence_takens[target_positions] = outcomes
        sequence_pcs[noise_positions] = noise_pcs[noise_indices % 64]
        sequence_takens[noise_positions] = noise_outcomes[noise_indices % 64]
    correct = predictor.predict_and_update_many(sequence_pcs, sequence_takens)
    target_misses = int(np.count_nonzero(~correct[is_target]))
    rate = target_misses / max(1, total)
    return float(min(1.0, max(0.0, rate)))
