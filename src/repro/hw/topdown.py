"""Top-down microarchitectural cycle accounting (Yasin 2014; paper Fig. 2).

Every pipeline slot (``issue_width`` per cycle) is attributed to one of
four top-level buckets: Retiring, Front-end Bound, Bad Speculation, and
Back-end Bound. The paper uses this breakdown both to pick which features
to clone (Fig. 2's IX/BB/IM/DM/DD annotations) and to validate the clones
(Fig. 8's CPI breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class TopDownBreakdown:
    """Slot counts per top-level top-down bucket."""

    retiring: float
    frontend: float
    bad_speculation: float
    backend: float

    def __post_init__(self) -> None:
        if (self.retiring < -1e-9 or self.frontend < -1e-9
                or self.bad_speculation < -1e-9 or self.backend < -1e-9):
            for name in ("retiring", "frontend", "bad_speculation", "backend"):
                if getattr(self, name) < -1e-9:
                    raise ConfigurationError(f"negative slot count for {name}")

    @property
    def total_slots(self) -> float:
        """All issue slots accounted for."""
        return self.retiring + self.frontend + self.bad_speculation + self.backend

    def fractions(self) -> dict:
        """Normalised bucket fractions (empty breakdown -> all zeros)."""
        total = self.total_slots
        if total <= 0.0:
            return {"retiring": 0.0, "frontend": 0.0, "bad_speculation": 0.0,
                    "backend": 0.0}
        return {
            "retiring": self.retiring / total,
            "frontend": self.frontend / total,
            "bad_speculation": self.bad_speculation / total,
            "backend": self.backend / total,
        }

    def cpi_contributions(self, instructions: float, issue_width: int) -> dict:
        """Split CPI into per-bucket contributions (Fig. 8's stacked bars).

        ``CPI = cycles / instructions`` and ``cycles = slots / width``, so
        each bucket's share of slots maps to a share of CPI.
        """
        if instructions <= 0:
            raise ConfigurationError("instructions must be positive")
        if issue_width <= 0:
            raise ConfigurationError("issue_width must be positive")
        return {
            name: slots / issue_width / instructions
            for name, slots in (
                ("retiring", self.retiring),
                ("frontend", self.frontend),
                ("bad_speculation", self.bad_speculation),
                ("backend", self.backend),
            )
        }

    def __add__(self, other: "TopDownBreakdown") -> "TopDownBreakdown":
        # Hot path (one per block-pricing event): sums of validated
        # breakdowns need no re-validation, so skip __init__ entirely.
        result = object.__new__(TopDownBreakdown)
        result.__dict__.update(
            retiring=self.retiring + other.retiring,
            frontend=self.frontend + other.frontend,
            bad_speculation=self.bad_speculation + other.bad_speculation,
            backend=self.backend + other.backend,
        )
        return result

    def scaled(self, factor: float) -> "TopDownBreakdown":
        """All buckets multiplied by ``factor``."""
        if factor < 0:
            raise ConfigurationError("factor must be non-negative")
        return TopDownBreakdown(
            self.retiring * factor,
            self.frontend * factor,
            self.bad_speculation * factor,
            self.backend * factor,
        )

    @staticmethod
    def zero() -> "TopDownBreakdown":
        """An empty breakdown."""
        return TopDownBreakdown(0.0, 0.0, 0.0, 0.0)
