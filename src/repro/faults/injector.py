"""Deterministic fault injection over a :class:`FaultPlan`.

The :class:`FaultInjector` is the run-time half of the fault subsystem:
devices (NIC, disk, CPU) and service runtimes consult it at their
injection points, and it decides — deterministically — whether a fault
fires *now* for *this* component.

Determinism contract:

* Every probabilistic decision draws from a named stream derived as
  ``derive_seed(seed, "faults", kind, index)`` — one stream per spec in
  the plan. Fault draws therefore never touch (or perturb) the streams
  the load generator, profilers or tuner use: enabling a fault plan
  changes *only* what the faults themselves change.
* Draws happen in simulated-event order, and the DES engine is
  deterministic, so the same ``(seed, plan)`` yields a bit-identical
  :class:`FaultTimeline` (compare with :meth:`FaultTimeline.digest`).
* A spec whose scope or window does not match costs **zero draws**, so
  an empty plan consumes no randomness at all and the run is
  bit-identical to one without an injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import ANY_NODE, FaultPlan, NodeCrashFault
from repro.telemetry.context import current_session
from repro.util.errors import FaultInjectionError
from repro.util.rng import make_rng
from repro.util.spec_hash import stable_digest

__all__ = ["FaultEvent", "FaultInjector", "FaultTimeline"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault occurrence on the simulated clock."""

    t: float
    kind: str
    scope: str
    detail: Tuple[Tuple[str, float], ...] = ()


@dataclass
class FaultTimeline:
    """The ordered record of everything the injector did to one run."""

    events: List[FaultEvent] = field(default_factory=list)

    def record(self, t: float, kind: str, scope: str, **detail: float) -> None:
        """Append one fault occurrence."""
        self.events.append(FaultEvent(
            t=t, kind=kind, scope=scope,
            detail=tuple(sorted((k, float(v)) for k, v in detail.items())),
        ))

    def __len__(self) -> int:
        return len(self.events)

    def digest(self) -> str:
        """Stable hex digest of the full timeline.

        Two runs injected identical faults iff their digests match —
        the determinism tests' primary assertion.
        """
        return stable_digest(tuple(
            (e.t, e.kind, e.scope, e.detail) for e in self.events))

    def counts(self) -> Dict[str, int]:
        """Occurrences per fault kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


def _scope_matches(spec_node: str, component: str) -> bool:
    # Components are either the node name itself or a device named
    # "<node>-nic" / "<node>-disk" / "<node>-cpu".
    if spec_node == ANY_NODE or spec_node == component:
        return True
    return component.startswith(spec_node + "-")


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against the simulated clock.

    Attach to an :class:`~repro.sim.Environment` (``attach`` sets
    ``env.faults``); instrumented components then query the hooks
    below. All hooks are cheap no-ops when no spec matches.
    """

    def __init__(self, plan: FaultPlan, *, seed: int) -> None:
        self.plan = plan
        self.seed = int(seed)
        self.timeline = FaultTimeline()
        self.env = None
        self._rngs: Dict[int, np.random.Generator] = {}

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach(self, env) -> "FaultInjector":
        """Bind to ``env`` and install as ``env.faults``.

        Node crash/restart transitions are known statically, so they are
        recorded onto the timeline immediately at their scheduled times.
        """
        self.env = env
        env.faults = self
        for spec in self.plan.events:
            if isinstance(spec, NodeCrashFault):
                self.timeline.record(spec.at_s, "node_crash", spec.node,
                                     downtime_s=spec.downtime_s)
                self.timeline.record(spec.at_s + spec.downtime_s,
                                     "node_restart", spec.node)
        return self

    def _now(self) -> float:
        return self.env.now if self.env is not None else 0.0

    def _rng(self, index: int, kind: str) -> np.random.Generator:
        rng = self._rngs.get(index)
        if rng is None:
            rng = make_rng(self.seed, "faults", kind, str(index))
            self._rngs[index] = rng
        return rng

    def _count(self, kind: str, scope: str) -> None:
        session = current_session()
        if session is not None:
            session.registry.counter(
                "ditto_faults_injected_total",
                "fault occurrences injected into simulated runs",
                ("kind", "scope")).inc(1, kind=kind, scope=scope)

    def _fire(self, kind: str, scope: str, **detail: float) -> None:
        self.timeline.record(self._now(), kind, scope, **detail)
        self._count(kind, scope)

    def _active(self, kind: str, component: str):
        now = self._now()
        for index, spec in enumerate(self.plan.events):
            if spec.kind != kind:
                continue
            if not _scope_matches(spec.node, component):
                continue
            if spec.window.contains(now):
                yield index, spec

    # ------------------------------------------------------------------ #
    # node liveness
    # ------------------------------------------------------------------ #
    def node_down(self, component: str) -> bool:
        """True while a crash window covers ``component``'s node."""
        for _idx, _spec in self._active("node_crash", component):
            return True
        return False

    def check_node_up(self, component: str) -> None:
        """Raise :class:`FaultInjectionError` while the node is down."""
        if self.node_down(component):
            raise FaultInjectionError(
                f"{component}: node is down (injected crash)",
                kind="node_down", scope=component)

    # ------------------------------------------------------------------ #
    # network
    # ------------------------------------------------------------------ #
    def nic_penalty(self, component: str) -> float:
        """Extra transmit delay (seconds) injected for this send.

        Latency spikes add their configured delay; packet loss adds one
        RTO-like retransmission penalty per consecutive loss drawn.
        Returns 0.0 (and records nothing) when no fault fires.
        """
        self.check_node_up(component)
        penalty = 0.0
        for index, spec in self._active("latency_spike", component):
            fires = (spec.probability >= 1.0
                     or float(self._rng(index, spec.kind).random())
                     < spec.probability)
            if fires:
                penalty += spec.extra_s
                self._fire("latency_spike", component, extra_s=spec.extra_s)
        for index, spec in self._active("packet_loss", component):
            rng = self._rng(index, spec.kind)
            losses = 0
            while (losses < spec.max_retransmits
                   and float(rng.random()) < spec.rate):
                losses += 1
            if losses:
                penalty += losses * spec.retransmit_delay_s
                self._fire("packet_loss", component, retransmits=losses)
        return penalty

    # ------------------------------------------------------------------ #
    # disk
    # ------------------------------------------------------------------ #
    def disk_check(self, component: str) -> None:
        """Raise an injected IO error, or return silently."""
        self.check_node_up(component)
        for index, spec in self._active("disk_error", component):
            if float(self._rng(index, spec.kind).random()) < spec.rate:
                self._fire("disk_error", component)
                raise FaultInjectionError(
                    f"{component}: injected disk IO error",
                    kind="disk_error", scope=component)

    def disk_factor(self, component: str) -> float:
        """Multiplicative slowdown on disk latency/transfer (>= 1.0)."""
        factor = 1.0
        for _index, spec in self._active("disk_slowdown", component):
            factor *= spec.factor
        return factor

    # ------------------------------------------------------------------ #
    # cpu
    # ------------------------------------------------------------------ #
    def cpu_factor(self, component: str) -> float:
        """Multiplicative stretch on on-CPU hold time (>= 1.0)."""
        factor = 1.0
        for _index, spec in self._active("cpu_steal", component):
            factor *= 1.0 / (1.0 - spec.steal)
        return factor
