"""Declarative fault plans.

A :class:`FaultPlan` is a pure *specification* of what should go wrong
during a simulated run: which component, what kind of fault, when, and
how hard. Plans are frozen dataclasses — picklable (they travel inside
:class:`~repro.runtime.experiment.ExperimentConfig` to pipeline
workers) and structurally hashable via
:func:`repro.util.spec_hash.stable_digest` (so the experiment cache
keys on them automatically).

Plans carry **no randomness**: probabilistic faults name a rate, and
the :class:`~repro.faults.injector.FaultInjector` draws every decision
from its own named RNG streams. Identical (seed, plan) pairs therefore
produce bit-identical fault timelines, and an *empty* plan produces a
run bit-identical to one with no injector attached at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple, Union

from repro.util.errors import ConfigurationError

__all__ = [
    "ANY_NODE",
    "CpuStealFault",
    "DiskErrorFault",
    "DiskSlowdownFault",
    "FaultPlan",
    "FaultWindow",
    "LatencySpikeFault",
    "NodeCrashFault",
    "PacketLossFault",
]

#: wildcard scope: the fault applies to every node
ANY_NODE = "*"


@dataclass(frozen=True)
class FaultWindow:
    """A half-open interval of simulated time, ``[start_s, end_s)``.

    The default window is all of time; ``FaultWindow(0.5e-3, 2e-3)``
    confines a fault to a burst, which is how latency spikes and
    disk brown-outs are usually scripted.
    """

    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("fault window cannot start before t=0")
        if self.end_s <= self.start_s:
            raise ConfigurationError("fault window must end after it starts")

    def contains(self, now: float) -> bool:
        """True while ``now`` falls inside the window."""
        return self.start_s <= now < self.end_s


def _check_rate(rate: float, what: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigurationError(f"{what} must be in [0, 1], got {rate!r}")


@dataclass(frozen=True)
class PacketLossFault:
    """NIC packet loss: each transmit is lost with probability ``rate``.

    A lost packet does not vanish — the simulated transport retransmits
    after ``retransmit_delay_s`` (an RTO-like penalty), which is how
    loss manifests to applications as tail latency. Up to
    ``max_retransmits`` consecutive losses are drawn per transmit.
    """

    node: str = ANY_NODE
    rate: float = 0.01
    retransmit_delay_s: float = 200e-6
    max_retransmits: int = 3
    window: FaultWindow = field(default_factory=FaultWindow)

    kind = "packet_loss"

    def __post_init__(self) -> None:
        _check_rate(self.rate, "packet loss rate")
        if self.retransmit_delay_s <= 0:
            raise ConfigurationError("retransmit delay must be positive")
        if self.max_retransmits < 1:
            raise ConfigurationError("max_retransmits must be >= 1")


@dataclass(frozen=True)
class LatencySpikeFault:
    """NIC latency spike: transmits pay ``extra_s`` with ``probability``."""

    node: str = ANY_NODE
    extra_s: float = 1e-3
    probability: float = 1.0
    window: FaultWindow = field(default_factory=FaultWindow)

    kind = "latency_spike"

    def __post_init__(self) -> None:
        _check_rate(self.probability, "latency spike probability")
        if self.extra_s <= 0:
            raise ConfigurationError("latency spike must be positive")


@dataclass(frozen=True)
class DiskErrorFault:
    """Disk IO error: each operation fails with probability ``rate``."""

    node: str = ANY_NODE
    rate: float = 0.01
    window: FaultWindow = field(default_factory=FaultWindow)

    kind = "disk_error"

    def __post_init__(self) -> None:
        _check_rate(self.rate, "disk error rate")


@dataclass(frozen=True)
class DiskSlowdownFault:
    """Disk brown-out: IO latency and transfer stretched by ``factor``."""

    node: str = ANY_NODE
    factor: float = 4.0
    window: FaultWindow = field(default_factory=FaultWindow)

    kind = "disk_slowdown"

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigurationError("disk slowdown factor must be >= 1")


@dataclass(frozen=True)
class NodeCrashFault:
    """Node crash at ``at_s``, restart ``downtime_s`` later.

    While down the node's CPU, disk and NIC raise
    :class:`~repro.util.errors.FaultInjectionError` and the services on
    it reject new requests, so callers see errors/timeouts — which is
    what retries and circuit breakers are there to absorb.
    """

    node: str
    at_s: float
    downtime_s: float

    kind = "node_crash"

    def __post_init__(self) -> None:
        if self.node == ANY_NODE:
            raise ConfigurationError("a crash fault needs a concrete node")
        if self.at_s < 0:
            raise ConfigurationError("crash time cannot be negative")
        if self.downtime_s <= 0:
            raise ConfigurationError("downtime must be positive")

    @property
    def window(self) -> FaultWindow:
        """The down window, ``[at_s, at_s + downtime_s)``."""
        return FaultWindow(self.at_s, self.at_s + self.downtime_s)


@dataclass(frozen=True)
class CpuStealFault:
    """CPU steal: a hypervisor/co-tenant takes ``steal`` of every core.

    On-CPU work inside the window runs ``1 / (1 - steal)`` times
    slower — the discrete-time analogue of %steal in vmstat.
    """

    node: str = ANY_NODE
    steal: float = 0.25
    window: FaultWindow = field(default_factory=FaultWindow)

    kind = "cpu_steal"

    def __post_init__(self) -> None:
        if not 0.0 <= self.steal < 1.0:
            raise ConfigurationError("cpu steal must be in [0, 1)")


FaultSpec = Union[
    PacketLossFault,
    LatencySpikeFault,
    DiskErrorFault,
    DiskSlowdownFault,
    NodeCrashFault,
    CpuStealFault,
]

_SPEC_TYPES = (
    PacketLossFault,
    LatencySpikeFault,
    DiskErrorFault,
    DiskSlowdownFault,
    NodeCrashFault,
    CpuStealFault,
)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs for one run.

    Order matters only for RNG stream naming (spec ``i`` draws from
    stream ``faults/<kind>/<i>``), not for semantics; two plans with
    the same specs in the same order are interchangeable.
    """

    events: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, _SPEC_TYPES):
                raise ConfigurationError(
                    f"not a fault spec: {event!r}")

    @staticmethod
    def empty() -> "FaultPlan":
        """A plan that injects nothing (runs are bit-identical to
        running with no injector at all)."""
        return FaultPlan()

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules no faults."""
        return not self.events

    def __bool__(self) -> bool:
        return bool(self.events)

    def matching(self, kind: str, node: str):
        """Yield ``(index, spec)`` for specs of ``kind`` scoped to ``node``."""
        for index, spec in enumerate(self.events):
            if spec.kind == kind and spec.node in (ANY_NODE, node):
                yield index, spec
