"""Seeded, deterministic fault injection for simulated runs.

:mod:`repro.faults.plan` declares *what* goes wrong (frozen, picklable
specs — NIC packet loss and latency spikes, disk errors and brown-outs,
node crash/restart, CPU steal); :mod:`repro.faults.injector` decides
*when*, drawing every probabilistic choice from named RNG streams so a
``(seed, plan)`` pair replays bit-identically and never perturbs any
other random stream in the library.

Quick use::

    plan = FaultPlan((
        PacketLossFault(rate=0.05),
        NodeCrashFault(node="node0", at_s=0.01, downtime_s=0.005),
    ))
    config = ExperimentConfig(platform=PLATFORM_A, fault_plan=plan,
                              resilience=ResilienceConfig())
    result = run_experiment(deployment, load, config)
    result.faults.digest()   # identical across runs at the same seed
"""

from repro.faults.injector import FaultEvent, FaultInjector, FaultTimeline
from repro.faults.plan import (
    ANY_NODE,
    CpuStealFault,
    DiskErrorFault,
    DiskSlowdownFault,
    FaultPlan,
    FaultWindow,
    LatencySpikeFault,
    NodeCrashFault,
    PacketLossFault,
)

__all__ = [
    "ANY_NODE",
    "CpuStealFault",
    "DiskErrorFault",
    "DiskSlowdownFault",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultTimeline",
    "FaultWindow",
    "LatencySpikeFault",
    "NodeCrashFault",
    "PacketLossFault",
]
