"""Interference stressors (§6.5).

The paper generates interference with stress-ng (hyperthreading, L1d, L2),
iBench (LLC) and iperf3 (network bandwidth). Each stressor here maps to a
:class:`~repro.hw.contention.CoRunner` description consumed by the
contention model — the victim's effective cache capacities, SMT port
sharing, and NIC share degrade exactly as a co-located antagonist would
cause.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hw.contention import CoRunner
from repro.util.errors import ConfigurationError


def stress_ng_ht(intensity: float = 1.0) -> CoRunner:
    """stress-ng CPU spinner pinned to the victim's SMT sibling."""
    return CoRunner("ht", intensity=intensity, same_physical_core=True)


def stress_ng_l1d(intensity: float = 1.0) -> CoRunner:
    """stress-ng cache stressor thrashing the shared L1d from the sibling."""
    return CoRunner("l1d", footprint_bytes=64 * 1024, intensity=intensity,
                    same_physical_core=True)


def stress_ng_l2(intensity: float = 1.0) -> CoRunner:
    """stress-ng cache stressor sized to the shared L2, on the sibling."""
    return CoRunner("l2", footprint_bytes=2 * 1024 * 1024,
                    intensity=intensity, same_physical_core=True)


def ibench_llc(intensity: float = 1.0,
               footprint_bytes: float = 64 * 1024 * 1024) -> CoRunner:
    """iBench LLC antagonist streaming over the shared socket LLC."""
    return CoRunner("llc", footprint_bytes=footprint_bytes,
                    intensity=intensity, same_physical_core=False)


def iperf3_net(intensity: float = 1.0) -> CoRunner:
    """iperf3 stream competing for NIC bandwidth."""
    return CoRunner("net", intensity=intensity)


def disk_antagonist(intensity: float = 1.0) -> CoRunner:
    """A sequential-scan antagonist competing for disk bandwidth."""
    return CoRunner("disk", intensity=intensity)


#: Name -> builder, matching the x-axis of Fig. 10.
STRESSORS: Dict[str, object] = {
    "ht": stress_ng_ht,
    "l1d": stress_ng_l1d,
    "l2": stress_ng_l2,
    "llc": ibench_llc,
    "net": iperf3_net,
    "disk": disk_antagonist,
}


def stressor(name: str, intensity: float = 1.0) -> CoRunner:
    """Build one stressor by Fig. 10 label."""
    builder = STRESSORS.get(name)
    if builder is None:
        raise ConfigurationError(
            f"unknown stressor {name!r}; expected one of {sorted(STRESSORS)}"
        )
    return builder(intensity=intensity)


def interference_suite() -> List[str]:
    """The Fig. 10 interference scenarios, in paper order."""
    return ["ht", "l1d", "l2", "llc", "net"]
