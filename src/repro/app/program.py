"""Request-handler program IR.

A :class:`Handler` is an ordered sequence of operations executed per
request: compute blocks (priced by the analytical core model), system
calls (kernel blocks + device side effects), and RPCs to downstream
services. A :class:`Program` groups a service's handlers with its code
and data footprint metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.hw.ir import BlockSpec
from repro.kernelsim.syscalls import SyscallInvocation
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ComputeOp:
    """Execute one user-space block (all its iterations)."""

    block: BlockSpec


@dataclass(frozen=True)
class SyscallOp:
    """Invoke one system call.

    ``file`` routes disk syscalls through the VFS (page-cache hits skip
    the device); network syscalls route payloads through the NIC.
    """

    invocation: SyscallInvocation


@dataclass(frozen=True)
class RpcOp:
    """Synchronous RPC to a downstream tier.

    ``parallel_group``: ops sharing a non-None group id within one handler
    are issued concurrently and joined together (fan-out in microservice
    graphs, e.g. composePost writing to several storage tiers at once).
    """

    target_service: str
    request_bytes: float
    response_bytes: float
    handler: str = "default"
    parallel_group: Optional[int] = None

    def __post_init__(self) -> None:
        if self.request_bytes < 0 or self.response_bytes < 0:
            raise ConfigurationError("RPC sizes must be non-negative")


Op = Union[ComputeOp, SyscallOp, RpcOp]


@dataclass(frozen=True)
class Handler:
    """One request type's processing pipeline."""

    name: str
    ops: Tuple[Op, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ConfigurationError(f"handler {self.name!r} has no ops")

    @property
    def compute_blocks(self) -> List[BlockSpec]:
        """All compute blocks, in order."""
        return [op.block for op in self.ops if isinstance(op, ComputeOp)]

    @property
    def syscalls(self) -> List[SyscallInvocation]:
        """All syscall invocations, in order."""
        return [op.invocation for op in self.ops if isinstance(op, SyscallOp)]

    @property
    def rpcs(self) -> List[RpcOp]:
        """All downstream RPCs, in order."""
        return [op for op in self.ops if isinstance(op, RpcOp)]

    def user_instructions(self) -> float:
        """Dynamic user-space instructions per request."""
        return float(
            sum(block.instructions_per_request for block in self.compute_blocks)
        )

    def data_footprint_bytes(self) -> float:
        """Largest data working set the handler touches."""
        footprint = 0.0
        for block in self.compute_blocks:
            for spec in block.mem:
                footprint = max(footprint, float(spec.wset_bytes))
        return footprint


@dataclass(frozen=True)
class Program:
    """A service's full body: request handlers plus footprint metadata.

    - ``handlers``: request-type name -> Handler;
    - ``background_blocks``: periodic maintenance work (timer threads);
    - ``hot_code_bytes``: the i-side footprint of the service's hot path
      *beyond* the handler blocks themselves (framework/library code the
      handler traverses between blocks) — this feeds the i-cache reuse
      distance;
    - ``resident_bytes``: long-lived heap (e.g. the key-value store's
      data), used by contention/footprint modelling.
    """

    handlers: Mapping[str, Handler]
    background_blocks: Tuple[BlockSpec, ...] = ()
    hot_code_bytes: float = 64 * 1024
    resident_bytes: float = 16 * 1024 * 1024

    def __post_init__(self) -> None:
        if not self.handlers:
            raise ConfigurationError("a program needs at least one handler")
        for name, handler in self.handlers.items():
            if name != handler.name:
                raise ConfigurationError(
                    f"handler key {name!r} != handler.name {handler.name!r}"
                )
        if self.hot_code_bytes < 0 or self.resident_bytes < 0:
            raise ConfigurationError("footprints must be non-negative")

    def handler(self, name: str) -> Handler:
        """Look up a handler by request-type name."""
        found = self.handlers.get(name)
        if found is None:
            raise ConfigurationError(f"no handler {name!r}")
        return found

    def all_blocks(self) -> List[BlockSpec]:
        """Every compute block across handlers and background work."""
        blocks: List[BlockSpec] = []
        for handler in self.handlers.values():
            blocks.extend(handler.compute_blocks)
        blocks.extend(self.background_blocks)
        return blocks

    def static_branch_sites(self) -> int:
        """Total static conditional-branch sites across all blocks.

        Includes a floor contribution from the hot framework code (one
        branch per ~16 bytes of code is typical for compiled C/C++).
        """
        sites = int(self.hot_code_bytes / 16)
        for block in self.all_blocks():
            for branch in block.branches:
                sites += branch.static_count
        return max(1, sites)

    def total_code_bytes(self) -> float:
        """Hot code footprint: framework plus distinct block bodies."""
        return self.hot_code_bytes + float(
            sum(block.static_code_bytes() for block in self.all_blocks())
        )

    def downstream_services(self) -> List[str]:
        """Names of all services this program calls into."""
        targets: List[str] = []
        for handler in self.handlers.values():
            for rpc in handler.rpcs:
                if rpc.target_service not in targets:
                    targets.append(rpc.target_service)
        return targets
