"""Block-builder vocabulary shared by the workload models.

Each builder produces a :class:`~repro.hw.ir.BlockSpec` with the
instruction mix, memory pattern, branch statistics and dependency profile
characteristic of a class of server code (hash lookups, protocol parsing,
serialisation, B-tree descent, checksumming, graph traversal). The
workload models compose these into request handlers; the numbers follow
published workload-characterisation studies of the respective services.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.hw.ir import (
    BlockSpec,
    BranchSpec,
    DependencyProfile,
    MemAccessSpec,
    MemPattern,
)


def _mix(n: float, weights: Dict[str, float]) -> Dict[str, float]:
    total = sum(weights.values())
    return {name: n * w / total for name, w in weights.items()}


def kv_lookup_block(
    name: str,
    instructions: float,
    table_bytes: int,
    accesses: float,
    value_bytes: int = 0,
    shared_frac: float = 0.1,
    iterations: float = 1.0,
) -> BlockSpec:
    """Hash-table lookup: hashing arithmetic + random probes of a big table.

    Value copy-out (``value_bytes``) streams sequentially.
    """
    counts = _mix(instructions, {
        "MOV_r64_m64": 0.20, "MOV_m64_r64": 0.06, "ADD_r64_r64": 0.13,
        "XOR_r64_r64": 0.07, "SHL_r64_imm": 0.06, "IMUL_r64_r64": 0.05,
        "CMP_r64_r64": 0.13, "JNZ_rel": 0.11, "MOV_r64_r64": 0.08,
        "LEA_r64_m": 0.06, "AND_r64_r64": 0.05,
    })
    # A lookup touches a handful of cold lines (bucket, chain, item
    # header) in the big table, streams the value out of it, and does the
    # rest of its work in warm per-request state.
    cold_probes = max(8.0, instructions * 0.015)
    mem = [
        MemAccessSpec(wset_bytes=table_bytes, accesses=cold_probes,
                      pattern=MemPattern.RANDOM, shared_frac=shared_frac,
                      write_frac=0.05),
        MemAccessSpec(wset_bytes=16 * 1024, accesses=instructions * 0.2,
                      pattern=MemPattern.SEQUENTIAL),
    ]
    if value_bytes > 0:
        # The value lives inside the cold table region but is read
        # sequentially — prefetcher-friendly streaming misses.
        mem.append(MemAccessSpec(wset_bytes=table_bytes,
                                 accesses=max(1.0, value_bytes / 64.0),
                                 pattern=MemPattern.SEQUENTIAL))
    return BlockSpec(
        name=name,
        iform_counts=counts,
        iterations=iterations,
        code_bytes=int(instructions * 0.06) * 4,
        mem=tuple(mem),
        branches=(
            BranchSpec(executions=counts["JNZ_rel"] * 0.9, taken_rate=0.96,
                       transition_rate=0.04,
                       static_count=max(1, int(instructions / 40))),
            BranchSpec(executions=counts["JNZ_rel"] * 0.1, taken_rate=0.55,
                       transition_rate=0.4,
                       static_count=max(1, int(instructions / 80))),
        ),
        deps=DependencyProfile(raw={4: 0.3, 16: 0.4, 64: 0.3},
                               pointer_chase_frac=0.25),
    )


def parse_block(
    name: str,
    instructions: float,
    buffer_bytes: int = 8 * 1024,
    iterations: float = 1.0,
) -> BlockSpec:
    """Protocol/text parsing: byte loads, comparisons, dense branching."""
    counts = _mix(instructions, {
        "MOVZX_r64_m8": 0.22, "CMP_r64_imm": 0.18, "JNZ_rel": 0.14,
        "JZ_rel": 0.06, "ADD_r64_imm": 0.10, "AND_r64_r64": 0.06,
        "MOV_r64_r64": 0.08, "SUB_r64_r64": 0.05, "TEST_r64_r64": 0.06,
        "REPNZ_SCASB": 0.01, "LEA_r64_m": 0.04,
    })
    return BlockSpec(
        name=name,
        iform_counts=counts,
        iterations=iterations,
        code_bytes=int(instructions * 0.08) * 4,
        mem=(
            MemAccessSpec(wset_bytes=max(64, buffer_bytes),
                          accesses=instructions * 0.24,
                          pattern=MemPattern.SEQUENTIAL),
            MemAccessSpec(wset_bytes=64 * 1024, accesses=instructions * 0.05,
                          pattern=MemPattern.RANDOM),
        ),
        branches=(
            BranchSpec(executions=(counts["JNZ_rel"] + counts["JZ_rel"]) * 0.12,
                       taken_rate=0.6, transition_rate=0.45,
                       static_count=max(1, int(instructions / 25))),
            BranchSpec(executions=(counts["JNZ_rel"] + counts["JZ_rel"]) * 0.88,
                       taken_rate=0.96, transition_rate=0.04,
                       static_count=max(1, int(instructions / 50))),
        ),
        deps=DependencyProfile(raw={1: 0.2, 4: 0.4, 16: 0.4},
                               pointer_chase_frac=0.05),
        rep_elements=32.0,
    )


def serialize_block(
    name: str,
    instructions: float,
    payload_bytes: int,
    iterations: float = 1.0,
) -> BlockSpec:
    """Response serialisation: structured stores + streaming copies."""
    counts = _mix(instructions, {
        "MOV_m64_r64": 0.20, "MOV_r64_m64": 0.12, "ADD_r64_imm": 0.12,
        "SHL_r64_imm": 0.06, "OR_r64_r64": 0.08, "MOV_r64_imm": 0.10,
        "CMP_r64_imm": 0.10, "JNZ_rel": 0.08, "LEA_r64_m": 0.08,
        "REP_MOVSB": 0.002, "MOV_r64_r64": 0.058,
    })
    return BlockSpec(
        name=name,
        iform_counts=counts,
        iterations=iterations,
        code_bytes=int(instructions * 0.05) * 4,
        mem=(
            MemAccessSpec(wset_bytes=max(64, payload_bytes),
                          accesses=max(1.0, payload_bytes / 64.0),
                          pattern=MemPattern.SEQUENTIAL),
            MemAccessSpec(wset_bytes=32 * 1024, accesses=instructions * 0.1,
                          pattern=MemPattern.SEQUENTIAL),
        ),
        branches=(
            BranchSpec(executions=counts["JNZ_rel"], taken_rate=0.96,
                       transition_rate=0.04,
                       static_count=max(1, int(instructions / 60))),
        ),
        deps=DependencyProfile(raw={8: 0.5, 32: 0.5}),
        rep_elements=float(max(1, payload_bytes // 8)),
    )


def btree_block(
    name: str,
    instructions: float,
    index_bytes: int,
    iterations: float = 1.0,
) -> BlockSpec:
    """B-tree/index descent: pointer chasing over a large index."""
    counts = _mix(instructions, {
        "MOV_r64_m64": 0.26, "CMP_r64_r64": 0.18, "JL_rel": 0.08,
        "JNZ_rel": 0.08, "ADD_r64_r64": 0.10, "SHR_r64_imm": 0.06,
        "MOV_r64_r64": 0.10, "LEA_r64_m": 0.08, "TEST_r64_r64": 0.06,
    })
    return BlockSpec(
        name=name,
        iform_counts=counts,
        iterations=iterations,
        code_bytes=int(instructions * 0.05) * 4,
        mem=(
            # Root and internal levels stay hot; only the last levels of
            # the descent chase cold pointers into the full index.
            MemAccessSpec(wset_bytes=192 * 1024, accesses=instructions * 0.12,
                          pattern=MemPattern.RANDOM),
            MemAccessSpec(wset_bytes=index_bytes, accesses=24.0,
                          pattern=MemPattern.POINTER_CHASE),
            MemAccessSpec(wset_bytes=32 * 1024, accesses=instructions * 0.08,
                          pattern=MemPattern.SEQUENTIAL),
        ),
        branches=(
            # Key comparisons inside the descent are data-dependent and
            # genuinely hard to predict; the loop/validity checks are not.
            BranchSpec(executions=(counts["JL_rel"] + counts["JNZ_rel"]) * 0.2,
                       taken_rate=0.5, transition_rate=0.5,
                       static_count=max(1, int(instructions / 90))),
            BranchSpec(executions=(counts["JL_rel"] + counts["JNZ_rel"]) * 0.8,
                       taken_rate=0.95, transition_rate=0.05,
                       static_count=max(1, int(instructions / 45))),
        ),
        deps=DependencyProfile(raw={1: 0.35, 4: 0.4, 16: 0.25},
                               pointer_chase_frac=0.55),
    )


def checksum_block(
    name: str,
    instructions: float,
    data_bytes: int,
    iterations: float = 1.0,
) -> BlockSpec:
    """Page checksumming: CRC32-dominated streaming (WiredTiger-style)."""
    counts = _mix(instructions, {
        "CRC32_r64_r64": 0.30, "MOV_r64_m64": 0.25, "ADD_r64_imm": 0.15,
        "CMP_r64_imm": 0.10, "JL_rel": 0.10, "MOV_r64_r64": 0.10,
    })
    return BlockSpec(
        name=name,
        iform_counts=counts,
        iterations=iterations,
        code_bytes=int(instructions * 0.02) * 4,
        mem=(
            MemAccessSpec(wset_bytes=max(64, data_bytes),
                          accesses=instructions * 0.25,
                          pattern=MemPattern.SEQUENTIAL),
        ),
        branches=(
            BranchSpec(executions=counts["JL_rel"], taken_rate=0.97,
                       transition_rate=0.05,
                       static_count=max(1, int(instructions / 200))),
        ),
        deps=DependencyProfile(raw={1: 0.5, 2: 0.3, 8: 0.2}),
    )


def graph_traverse_block(
    name: str,
    instructions: float,
    graph_bytes: int,
    iterations: float = 1.0,
) -> BlockSpec:
    """Adjacency-list traversal: irregular reads, data-dependent branches."""
    counts = _mix(instructions, {
        "MOV_r64_m64": 0.24, "CMP_r64_r64": 0.14, "JNZ_rel": 0.12,
        "ADD_r64_r64": 0.12, "MOV_r64_r64": 0.10, "LEA_r64_m": 0.08,
        "AND_r64_r64": 0.06, "INC_r64": 0.08, "TEST_r64_r64": 0.06,
    })
    return BlockSpec(
        name=name,
        iform_counts=counts,
        iterations=iterations,
        code_bytes=int(instructions * 0.04) * 4,
        mem=(
            MemAccessSpec(wset_bytes=graph_bytes, accesses=instructions * 0.18,
                          pattern=MemPattern.RANDOM, shared_frac=0.2,
                          write_frac=0.02),
            MemAccessSpec(wset_bytes=32 * 1024, accesses=instructions * 0.08,
                          pattern=MemPattern.SEQUENTIAL),
        ),
        branches=(
            BranchSpec(executions=counts["JNZ_rel"] * 0.12, taken_rate=0.6,
                       transition_rate=0.45,
                       static_count=max(1, int(instructions / 70))),
            BranchSpec(executions=counts["JNZ_rel"] * 0.88, taken_rate=0.96,
                       transition_rate=0.04,
                       static_count=max(1, int(instructions / 35))),
        ),
        deps=DependencyProfile(raw={2: 0.3, 8: 0.4, 32: 0.3},
                               pointer_chase_frac=0.35),
    )


def fp_compute_block(
    name: str,
    instructions: float,
    data_bytes: int = 64 * 1024,
    iterations: float = 1.0,
) -> BlockSpec:
    """Floating-point scoring/ranking work (timeline ranking etc.)."""
    counts = _mix(instructions, {
        "ADDSD_x_x": 0.18, "MULSD_x_x": 0.16, "ADDSD_x_m64": 0.10,
        "COMISD_x_x": 0.08, "CVTSI2SD_x_r64": 0.06, "MOV_r64_m64": 0.14,
        "ADD_r64_imm": 0.10, "CMP_r64_imm": 0.08, "JL_rel": 0.08,
        "MOV_r64_r64": 0.02,
    })
    return BlockSpec(
        name=name,
        iform_counts=counts,
        iterations=iterations,
        code_bytes=int(instructions * 0.04) * 4,
        mem=(
            MemAccessSpec(wset_bytes=max(64, data_bytes),
                          accesses=instructions * 0.24,
                          pattern=MemPattern.SEQUENTIAL),
        ),
        branches=(
            BranchSpec(executions=counts["JL_rel"], taken_rate=0.9,
                       transition_rate=0.15,
                       static_count=max(1, int(instructions / 100))),
        ),
        deps=DependencyProfile(raw={2: 0.4, 8: 0.4, 32: 0.2}),
    )
