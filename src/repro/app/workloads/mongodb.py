"""MongoDB 4.4 application model.

§6.1.2: a 40 GB dataset of one million records read uniformly by YCSB
(closed-loop, all reads). MongoDB's signature: thread-per-connection
(threads scale with clients), BSON parsing + B-tree index descent,
WiredTiger page checksumming (CRC32 on the lone multiply port), and —
decisively — disk-bound behaviour: the uniform scan over 40 GB defeats
the configured cache, so most finds fault storage pages in.
"""

from __future__ import annotations

from repro.app.program import ComputeOp, Handler, Program, SyscallOp
from repro.app.service import ServiceSpec
from repro.app.skeleton import (
    ClientNetworkModel,
    ServerNetworkModel,
    Skeleton,
    ThreadClass,
    ThreadTrigger,
)
from repro.app.workloads.common import (
    btree_block,
    checksum_block,
    parse_block,
    serialize_block,
)
from repro.kernelsim.syscalls import SyscallInvocation

DATASET_BYTES = 40 * 1024**3
RECORD_COUNT = 1_000_000
RECORD_BYTES = DATASET_BYTES // RECORD_COUNT          # ~42 KB per record
PAGE_BYTES = 32 * 1024
PAGES_PER_FIND = 3                                     # index leaf + data pages
#: WiredTiger cache configured well below the dataset, as the paper's
#: disk-bound results imply (a cache that swallowed 40GB would idle the disk).
WIREDTIGER_CACHE_BYTES = 4 * 1024**3
INDEX_BYTES = 96 * 1024 * 1024


def build_mongodb() -> ServiceSpec:
    """Build the MongoDB service model."""
    find_ops = [
        SyscallOp(SyscallInvocation("recv", nbytes=160)),
        ComputeOp(parse_block("mongo_bson_parse", instructions=7200,
                              buffer_bytes=4096)),
        ComputeOp(btree_block("mongo_index_descent", instructions=9400,
                              index_bytes=INDEX_BYTES)),
    ]
    for page in range(PAGES_PER_FIND):
        find_ops.append(
            SyscallOp(SyscallInvocation("pread", nbytes=PAGE_BYTES,
                                        file="collection",
                                        offset=float(page))))
        find_ops.append(
            ComputeOp(checksum_block(f"mongo_page_checksum_{page}",
                                     instructions=5200,
                                     data_bytes=PAGE_BYTES)))
    find_ops.extend([
        ComputeOp(serialize_block("mongo_reply", instructions=6800,
                                  payload_bytes=8 * 1024)),
        SyscallOp(SyscallInvocation("sendmsg", nbytes=8 * 1024)),
    ])
    find_handler = Handler(name="find", ops=tuple(find_ops))
    skeleton = Skeleton(
        server_model=ServerNetworkModel.BLOCKING,
        client_model=ClientNetworkModel.SYNCHRONOUS,
        thread_classes=(
            ThreadClass("listener", 1, "acceptor", ThreadTrigger.SOCKET),
            # One conn-XX thread per client connection (paper: "the number
            # of threads ... changes dynamically with ... connections").
            ThreadClass("conn_worker", 0, "worker", ThreadTrigger.SOCKET,
                        scales_with_connections=True),
            ThreadClass("wt_evict", 2, "background", ThreadTrigger.TIMER,
                        background_period_s=0.1),
            ThreadClass("checkpointer", 1, "background", ThreadTrigger.TIMER,
                        background_period_s=60.0),
        ),
        max_connections=512,
    )
    program = Program(
        handlers={"find": find_handler},
        hot_code_bytes=320 * 1024,   # mongod's hot text is large
        resident_bytes=float(WIREDTIGER_CACHE_BYTES),
    )
    return ServiceSpec(
        name="mongodb",
        skeleton=skeleton,
        program=program,
        request_mix={"find": 1.0},
        files={"collection": float(DATASET_BYTES)},
    )
