"""DeathStarBench Social Network application model (§6.1.2).

A 13-tier microservice DAG composed over the socfb-Reed98 Facebook graph
(962 users, 18.8K follow edges ⇒ ~39 followers per user). The tiers and
call structure follow DeathStarBench's social network:

    frontend ─┬─ compose-post ─┬─ text-service ─┬─ url-shorten
              │                │                └─ user-mention
              │                ├─ unique-id
              │                ├─ media-service
              │                ├─ user-service
              │                ├─ post-storage
              │                └─ write-home-timeline ── social-graph ── socialgraph-redis
              ├─ home-timeline ─┬─ social-graph ── socialgraph-redis
              │                 └─ post-storage
              └─ user-timeline ── post-storage

The two tiers the paper reports individually are **text-service** (text
processing for composed posts: parse-heavy, branchy) and
**social-graph-service** (follow-relationship management: its Reed98
working set fits in the LLC, giving it the paper's noted high IPC).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.app.program import ComputeOp, Handler, Program, RpcOp, SyscallOp
from repro.app.service import Deployment, Placement, ServiceSpec
from repro.app.skeleton import (
    ClientNetworkModel,
    ServerNetworkModel,
    Skeleton,
    ThreadClass,
    ThreadTrigger,
)
from repro.app.workloads.common import (
    fp_compute_block,
    graph_traverse_block,
    kv_lookup_block,
    parse_block,
    serialize_block,
)
from repro.kernelsim.syscalls import SyscallInvocation

USERS = 962
FOLLOW_EDGES = 18_800
AVG_FOLLOWERS = 2 * FOLLOW_EDGES / USERS   # undirected fb graph ≈ 39
#: adjacency lists + per-user metadata; tiny — it fits the LLC.
GRAPH_BYTES = int(FOLLOW_EDGES * 2 * 16 + USERS * 256)
POST_STORE_BYTES = 96 * 1024 * 1024
TIMELINE_STORE_BYTES = 48 * 1024 * 1024

#: the entry-point request mix the wrk2-style client drives
DEFAULT_MIX = {
    "compose_post": 0.10,
    "read_home_timeline": 0.60,
    "read_user_timeline": 0.30,
}


def _thrift_skeleton(workers: int = 8, scales: bool = False) -> Skeleton:
    """The Apache-Thrift-style server skeleton DSB tiers share."""
    worker = (
        ThreadClass("worker", 0, "worker", ThreadTrigger.SOCKET,
                    scales_with_connections=True)
        if scales
        else ThreadClass("worker", workers, "worker", ThreadTrigger.SOCKET)
    )
    return Skeleton(
        server_model=ServerNetworkModel.IO_MULTIPLEXING,
        client_model=ClientNetworkModel.SYNCHRONOUS,
        thread_classes=(
            ThreadClass("acceptor", 1, "acceptor", ThreadTrigger.SOCKET),
            worker,
        ),
        max_connections=512,
        event_batch_window_s=150e-6,
        max_batch=16,
    )


def _rpc_wrap(name: str, instructions: float, payload: int) -> List:
    """Thrift deserialise/serialise framing every DSB handler performs."""
    return [
        SyscallOp(SyscallInvocation("recv", nbytes=payload)),
        ComputeOp(parse_block(f"{name}_thrift_de", instructions=instructions,
                              buffer_bytes=max(1024, payload))),
    ]


def _reply(name: str, instructions: float, payload: int) -> List:
    return [
        ComputeOp(serialize_block(f"{name}_thrift_ser",
                                  instructions=instructions,
                                  payload_bytes=payload)),
        SyscallOp(SyscallInvocation("send", nbytes=payload)),
    ]


def _simple_service(
    service: str,
    handler: str,
    work_blocks: List,
    request_bytes: int,
    response_bytes: int,
    hot_code: float = 120 * 1024,
    resident: float = 8 * 1024 * 1024,
    workers: int = 8,
) -> ServiceSpec:
    ops = (
        _rpc_wrap(service, 2200, request_bytes)
        + list(work_blocks)
        + _reply(service, 1800, response_bytes)
    )
    return ServiceSpec(
        name=service,
        skeleton=_thrift_skeleton(workers),
        program=Program(
            handlers={handler: Handler(handler, tuple(ops))},
            hot_code_bytes=hot_code,
            resident_bytes=resident,
        ),
        request_mix={handler: 1.0},
    )


def build_social_network() -> Dict[str, ServiceSpec]:
    """Build all tiers; returns service-name -> spec."""
    services: Dict[str, ServiceSpec] = {}

    # --- leaf tiers ------------------------------------------------------
    services["url-shorten-service"] = _simple_service(
        "url-shorten-service", "shorten",
        [ComputeOp(parse_block("url_scan", 2600, buffer_bytes=2048)),
         ComputeOp(kv_lookup_block("url_store", 2200,
                                   table_bytes=4 * 1024 * 1024, accesses=0))],
        request_bytes=300, response_bytes=200,
    )
    services["user-mention-service"] = _simple_service(
        "user-mention-service", "mention",
        [ComputeOp(parse_block("mention_scan", 2400, buffer_bytes=2048)),
         ComputeOp(kv_lookup_block("user_cache", 2800,
                                   table_bytes=2 * 1024 * 1024, accesses=0))],
        request_bytes=300, response_bytes=200,
    )
    services["unique-id-service"] = _simple_service(
        "unique-id-service", "gen",
        [ComputeOp(serialize_block("snowflake_id", 900, payload_bytes=64))],
        request_bytes=100, response_bytes=64,
        hot_code=60 * 1024, resident=1024 * 1024,
    )
    services["media-service"] = _simple_service(
        "media-service", "add",
        [ComputeOp(parse_block("media_meta", 2000, buffer_bytes=4096))],
        request_bytes=400, response_bytes=100,
    )
    services["user-service"] = _simple_service(
        "user-service", "auth",
        [ComputeOp(kv_lookup_block("user_table", 2600,
                                   table_bytes=2 * 1024 * 1024, accesses=0)),
         ComputeOp(fp_compute_block("session_hmac", 2400,
                                    data_bytes=16 * 1024))],
        request_bytes=200, response_bytes=150,
    )
    services["socialgraph-redis"] = _simple_service(
        "socialgraph-redis", "get",
        [ComputeOp(kv_lookup_block("sg_redis_dict", 2600,
                                   table_bytes=GRAPH_BYTES, accesses=0,
                                   value_bytes=1600))],
        request_bytes=200, response_bytes=1600,
        hot_code=110 * 1024, resident=float(GRAPH_BYTES * 4),
        workers=1,
    )
    services["post-storage-service"] = ServiceSpec(
        name="post-storage-service",
        skeleton=_thrift_skeleton(scales=True),
        program=Program(
            handlers={
                "store": Handler("store", tuple(
                    _rpc_wrap("ps_store", 2600, 2048)
                    + [ComputeOp(kv_lookup_block(
                        "post_insert", 5200, table_bytes=POST_STORE_BYTES,
                        accesses=0, shared_frac=0.2))]
                    + _reply("ps_store", 1500, 100)
                )),
                "read_posts": Handler("read_posts", tuple(
                    _rpc_wrap("ps_read", 2400, 600)
                    + [ComputeOp(kv_lookup_block(
                        "post_fetch", 6400, table_bytes=POST_STORE_BYTES,
                        accesses=0, value_bytes=4096, shared_frac=0.1))]
                    + _reply("ps_read", 2600, 4096)
                )),
            },
            hot_code_bytes=200 * 1024,
            resident_bytes=float(POST_STORE_BYTES),
        ),
        request_mix={"store": 0.15, "read_posts": 0.85},
    )

    # --- the paper's two featured tiers -----------------------------------
    services["text-service"] = ServiceSpec(
        name="text-service",
        skeleton=_thrift_skeleton(),
        program=Program(
            handlers={
                "process_text": Handler("process_text", tuple(
                    _rpc_wrap("text", 2800, 1024)
                    + [
                        # Heavy text scanning: urls, mentions, emoji, escaping.
                        ComputeOp(parse_block("text_scan", 8200,
                                              buffer_bytes=4096)),
                        RpcOp("url-shorten-service", 300, 200,
                              handler="shorten", parallel_group=1),
                        RpcOp("user-mention-service", 300, 200,
                              handler="mention", parallel_group=1),
                        ComputeOp(parse_block("text_rewrite", 4200,
                                              buffer_bytes=4096)),
                    ]
                    + _reply("text", 2200, 600)
                )),
            },
            hot_code_bytes=150 * 1024,
            resident_bytes=6 * 1024 * 1024,
        ),
        request_mix={"process_text": 1.0},
    )
    services["social-graph-service"] = ServiceSpec(
        name="social-graph-service",
        skeleton=_thrift_skeleton(),
        program=Program(
            handlers={
                "get_followers": Handler("get_followers", tuple(
                    _rpc_wrap("sg", 2200, 300)
                    + [
                        # Reed98 fits in cache: high IPC, few LLC misses.
                        ComputeOp(graph_traverse_block(
                            "follow_graph", 7400, graph_bytes=GRAPH_BYTES)),
                        RpcOp("socialgraph-redis", 200, 1600, handler="get"),
                    ]
                    + _reply("sg", 2000, 1800)
                )),
            },
            hot_code_bytes=130 * 1024,
            resident_bytes=float(GRAPH_BYTES * 8),
        ),
        request_mix={"get_followers": 1.0},
    )

    # --- mid tiers ---------------------------------------------------------
    services["write-home-timeline-service"] = ServiceSpec(
        name="write-home-timeline-service",
        skeleton=_thrift_skeleton(),
        program=Program(
            handlers={
                "fanout": Handler("fanout", tuple(
                    _rpc_wrap("wht", 2400, 600)
                    + [
                        RpcOp("social-graph-service", 300, 1800,
                              handler="get_followers"),
                        # Insert the post id into ~39 follower timelines.
                        ComputeOp(kv_lookup_block(
                            "timeline_insert", 700,
                            table_bytes=TIMELINE_STORE_BYTES, accesses=0,
                            shared_frac=0.3,
                            iterations=AVG_FOLLOWERS)),
                    ]
                    + _reply("wht", 1400, 100)
                )),
            },
            hot_code_bytes=120 * 1024,
            resident_bytes=float(TIMELINE_STORE_BYTES),
        ),
        request_mix={"fanout": 1.0},
    )
    services["home-timeline-service"] = ServiceSpec(
        name="home-timeline-service",
        skeleton=_thrift_skeleton(),
        program=Program(
            handlers={
                "read": Handler("read", tuple(
                    _rpc_wrap("ht", 2400, 300)
                    + [
                        RpcOp("social-graph-service", 300, 1800,
                              handler="get_followers"),
                        RpcOp("post-storage-service", 600, 4096,
                              handler="read_posts"),
                        ComputeOp(fp_compute_block("timeline_rank", 4600,
                                                   data_bytes=64 * 1024)),
                    ]
                    + _reply("ht", 3200, 6144)
                )),
            },
            hot_code_bytes=140 * 1024,
            resident_bytes=float(TIMELINE_STORE_BYTES),
        ),
        request_mix={"read": 1.0},
    )
    services["user-timeline-service"] = ServiceSpec(
        name="user-timeline-service",
        skeleton=_thrift_skeleton(),
        program=Program(
            handlers={
                "read": Handler("read", tuple(
                    _rpc_wrap("ut", 2200, 300)
                    + [
                        RpcOp("post-storage-service", 600, 4096,
                              handler="read_posts"),
                    ]
                    + _reply("ut", 2600, 4096)
                )),
            },
            hot_code_bytes=120 * 1024,
            resident_bytes=32 * 1024 * 1024,
        ),
        request_mix={"read": 1.0},
    )
    services["compose-post-service"] = ServiceSpec(
        name="compose-post-service",
        skeleton=_thrift_skeleton(),
        program=Program(
            handlers={
                "compose": Handler("compose", tuple(
                    _rpc_wrap("cp", 3000, 1200)
                    + [
                        RpcOp("text-service", 1024, 600,
                              handler="process_text", parallel_group=1),
                        RpcOp("unique-id-service", 100, 64, handler="gen",
                              parallel_group=1),
                        RpcOp("media-service", 400, 100, handler="add",
                              parallel_group=1),
                        RpcOp("user-service", 200, 150, handler="auth",
                              parallel_group=1),
                        ComputeOp(serialize_block("assemble_post", 3600,
                                                  payload_bytes=2048)),
                        RpcOp("post-storage-service", 2048, 100,
                              handler="store", parallel_group=2),
                        RpcOp("write-home-timeline-service", 600, 100,
                              handler="fanout", parallel_group=2),
                    ]
                    + _reply("cp", 1800, 200)
                )),
            },
            hot_code_bytes=140 * 1024,
            resident_bytes=16 * 1024 * 1024,
        ),
        request_mix={"compose": 1.0},
    )

    # --- frontend ----------------------------------------------------------
    def frontend_handler(name: str, target: str, target_handler: str,
                         req: int, resp: int) -> Handler:
        return Handler(name, (
            SyscallOp(SyscallInvocation("recv", nbytes=max(200, req // 2))),
            ComputeOp(parse_block(f"fe_{name}_http", 4200, buffer_bytes=4096)),
            RpcOp(target, req, resp, handler=target_handler),
            ComputeOp(serialize_block(f"fe_{name}_resp", 2400,
                                      payload_bytes=resp)),
            SyscallOp(SyscallInvocation("writev", nbytes=resp + 300)),
        ))

    services["frontend"] = ServiceSpec(
        name="frontend",
        skeleton=Skeleton(
            server_model=ServerNetworkModel.IO_MULTIPLEXING,
            client_model=ClientNetworkModel.SYNCHRONOUS,
            thread_classes=(
                ThreadClass("master", 1, "acceptor", ThreadTrigger.SOCKET),
                ThreadClass("worker", 4, "worker", ThreadTrigger.SOCKET),
            ),
            max_connections=4096,
            event_batch_window_s=200e-6,
            max_batch=32,
        ),
        program=Program(
            handlers={
                "compose_post": frontend_handler(
                    "compose_post", "compose-post-service", "compose",
                    1200, 200),
                "read_home_timeline": frontend_handler(
                    "read_home_timeline", "home-timeline-service", "read",
                    300, 6144),
                "read_user_timeline": frontend_handler(
                    "read_user_timeline", "user-timeline-service", "read",
                    300, 4096),
            },
            hot_code_bytes=180 * 1024,
            resident_bytes=24 * 1024 * 1024,
        ),
        request_mix=dict(DEFAULT_MIX),
    )
    return services


def social_network_deployment(
    node: str = "node0",
    placement: Optional[Dict[str, str]] = None,
) -> Deployment:
    """Deploy the Social Network.

    By default every tier lands on ``node`` (the paper's local Docker
    deployment); pass ``placement`` (service -> node) to spread tiers over
    a cluster.
    """
    services = build_social_network()
    placements = [
        Placement(name, (placement or {}).get(name, node))
        for name in services
    ]
    return Deployment(
        services=services,
        placements=placements,
        entry_service="frontend",
    )
