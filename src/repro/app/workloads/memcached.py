"""Memcached 1.6.9 application model.

Configuration follows §6.1.2: four worker threads, 10K items with 30-byte
keys and 4 KB values (≈40 MB of values plus item/hash metadata), driven by
an open-loop load generator with a GET-dominated mix. Memcached's
signature characteristics: small per-request compute dominated by hash
lookup and network syscalls, modest code footprint with branchy protocol
parsing, and frontend sensitivity at low load (event-loop wakeups).
"""

from __future__ import annotations

from repro.app.program import ComputeOp, Handler, Program, SyscallOp
from repro.app.service import ServiceSpec
from repro.app.skeleton import (
    ClientNetworkModel,
    ServerNetworkModel,
    Skeleton,
    ThreadClass,
    ThreadTrigger,
)
from repro.app.workloads.common import kv_lookup_block, parse_block, serialize_block
from repro.kernelsim.syscalls import SyscallInvocation

ITEM_COUNT = 10_000
KEY_BYTES = 30
VALUE_BYTES = 4 * 1024
#: values + per-item overhead (~80B header + hash bucket)
STORE_BYTES = ITEM_COUNT * (VALUE_BYTES + KEY_BYTES + 80)


def build_memcached(worker_threads: int = 4) -> ServiceSpec:
    """Build the Memcached service model."""
    get_handler = Handler(
        name="get",
        ops=(
            SyscallOp(SyscallInvocation("recv", nbytes=KEY_BYTES + 30)),
            ComputeOp(parse_block("mc_parse", instructions=1800,
                                  buffer_bytes=2048)),
            ComputeOp(kv_lookup_block(
                "mc_lookup", instructions=5200, table_bytes=STORE_BYTES,
                accesses=0, value_bytes=VALUE_BYTES, shared_frac=0.15)),
            ComputeOp(serialize_block("mc_respond", instructions=1400,
                                      payload_bytes=VALUE_BYTES)),
            SyscallOp(SyscallInvocation("sendmsg", nbytes=VALUE_BYTES + 60)),
        ),
    )
    set_handler = Handler(
        name="set",
        ops=(
            SyscallOp(SyscallInvocation("recv", nbytes=VALUE_BYTES + 90)),
            ComputeOp(parse_block("mc_parse_set", instructions=2400,
                                  buffer_bytes=8192)),
            ComputeOp(kv_lookup_block(
                "mc_store", instructions=6800, table_bytes=STORE_BYTES,
                accesses=0, value_bytes=VALUE_BYTES, shared_frac=0.25)),
            SyscallOp(SyscallInvocation("sendmsg", nbytes=40)),
        ),
    )
    skeleton = Skeleton(
        server_model=ServerNetworkModel.IO_MULTIPLEXING,
        client_model=ClientNetworkModel.SYNCHRONOUS,
        thread_classes=(
            ThreadClass("main", 1, "acceptor", ThreadTrigger.SOCKET),
            ThreadClass("worker", worker_threads, "worker",
                        ThreadTrigger.SOCKET),
            ThreadClass("lru_crawler", 1, "background", ThreadTrigger.TIMER,
                        background_period_s=1.0),
        ),
        max_connections=1024,
        event_batch_window_s=150e-6,
        max_batch=32,
    )
    program = Program(
        handlers={"get": get_handler, "set": set_handler},
        hot_code_bytes=96 * 1024,
        resident_bytes=float(STORE_BYTES),
    )
    return ServiceSpec(
        name="memcached",
        skeleton=skeleton,
        program=program,
        request_mix={"get": 0.9, "set": 0.1},
    )
