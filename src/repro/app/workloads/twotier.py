"""A minimal two-tier chain: a thin frontend over Memcached.

The smallest deployment that still exercises every cross-tier code
path — RPC fan-out, topology reconstruction, per-tier parallel cloning
— which makes it the canonical smoke workload: the telemetry pipeline
tests, the fleet CLI examples and the CI fleet-smoke job all clone this
deployment. The frontend parses a request, calls Memcached's ``get``
and streams the value back; the backend is the paper's Memcached model
scaled down to two worker threads.
"""

from repro.app.program import ComputeOp, Handler, Program, RpcOp, SyscallOp
from repro.app.service import Deployment, Placement, ServiceSpec
from repro.app.workloads.common import parse_block
from repro.app.workloads.memcached import build_memcached
from repro.kernelsim.syscalls import SyscallInvocation

__all__ = ["build_two_tier_frontend", "two_tier_deployment"]


def build_two_tier_frontend(backend: ServiceSpec) -> ServiceSpec:
    """The thin proxy tier: recv → parse → RPC to ``backend`` → send."""
    return ServiceSpec(
        name="frontend",
        skeleton=backend.skeleton,
        program=Program(
            handlers={"get": Handler("get", (
                SyscallOp(SyscallInvocation("recv", nbytes=64)),
                ComputeOp(parse_block("fe_parse", instructions=1600,
                                      buffer_bytes=1024)),
                RpcOp("memcached", 60, 4096, handler="get"),
                SyscallOp(SyscallInvocation("sendmsg", nbytes=4096)),
            ))},
            hot_code_bytes=64 * 1024,
            resident_bytes=32 * 1024 * 1024,
        ),
        request_mix={"get": 1.0},
    )


def two_tier_deployment() -> Deployment:
    """A minimal frontend → memcached chain (both tiers on one node)."""
    backend = build_memcached(worker_threads=2)
    frontend = build_two_tier_frontend(backend)
    return Deployment(
        services={"frontend": frontend, "memcached": backend},
        placements=[Placement("frontend", "node0"),
                    Placement("memcached", "node0")],
        entry_service="frontend",
    )
