"""The paper's evaluation workloads as application models (§6.1.2).

- Memcached 1.6.9: 4 worker threads, 10K items of 30B keys / 4KB values;
- NGINX 1.20: one worker process, static HTTP;
- MongoDB 4.4: 40GB dataset, 1M records, uniform YCSB reads;
- Redis 6.2: single-threaded, persistence off, 100K records;
- Social Network (DeathStarBench): multi-tier graph over socfb-Reed98
  (962 users, 18.8K follow edges), including the TextService and
  SocialGraphService tiers the paper reports individually.
"""

from repro.app.workloads.memcached import build_memcached
from repro.app.workloads.nginx import build_nginx
from repro.app.workloads.mongodb import build_mongodb
from repro.app.workloads.redis import build_redis
from repro.app.workloads.socialnet import (
    build_social_network,
    social_network_deployment,
)
from repro.app.workloads.twotier import two_tier_deployment

WORKLOAD_BUILDERS = {
    "memcached": build_memcached,
    "nginx": build_nginx,
    "mongodb": build_mongodb,
    "redis": build_redis,
}

#: builders that produce a full multi-tier Deployment (vs. a single
#: ServiceSpec in WORKLOAD_BUILDERS)
DEPLOYMENT_BUILDERS = {
    "twotier": two_tier_deployment,
    "socialnet": social_network_deployment,
}

__all__ = [
    "DEPLOYMENT_BUILDERS",
    "WORKLOAD_BUILDERS",
    "build_memcached",
    "build_mongodb",
    "build_nginx",
    "build_redis",
    "build_social_network",
    "social_network_deployment",
    "two_tier_deployment",
]
