"""An event-driven API gateway: the §4.3.1 asynchronous client model.

The paper distinguishes synchronous clients (threads block on network
I/O awaiting responses) from asynchronous ones (event-based, responses
handled via callbacks), noting the latter "avoid long queueing delays by
allowing threads to process new requests and offer better performance".

This workload makes that concrete: a small-pool gateway fanning out to
two moderately slow backends. The asynchronous variant's workers free as
soon as the fan-out is issued; the synchronous twin's workers block for
the full downstream round trip, so the async variant sustains far more
concurrency with the same pool.
"""

from __future__ import annotations

from typing import Dict

from repro.app.program import ComputeOp, Handler, Program, RpcOp, SyscallOp
from repro.app.service import Deployment, Placement, ServiceSpec
from repro.app.skeleton import (
    ClientNetworkModel,
    ServerNetworkModel,
    Skeleton,
    ThreadClass,
    ThreadTrigger,
)
from repro.app.workloads.common import fp_compute_block, parse_block, serialize_block
from repro.kernelsim.syscalls import SyscallInvocation


def _backend(name: str, instructions: float) -> ServiceSpec:
    """A compute-heavy leaf whose latency dominates the gateway's wait."""
    handler = Handler("query", (
        SyscallOp(SyscallInvocation("recv", nbytes=256)),
        ComputeOp(parse_block(f"{name}_de", 2200, buffer_bytes=1024)),
        ComputeOp(fp_compute_block(f"{name}_score", instructions,
                                   data_bytes=256 * 1024)),
        ComputeOp(serialize_block(f"{name}_ser", 2000, payload_bytes=2048)),
        SyscallOp(SyscallInvocation("send", nbytes=2048)),
    ))
    skeleton = Skeleton(
        server_model=ServerNetworkModel.IO_MULTIPLEXING,
        client_model=ClientNetworkModel.SYNCHRONOUS,
        thread_classes=(
            ThreadClass("acceptor", 1, "acceptor", ThreadTrigger.SOCKET),
            ThreadClass("worker", 8, "worker", ThreadTrigger.SOCKET),
        ),
    )
    return ServiceSpec(
        name=name,
        skeleton=skeleton,
        program=Program(handlers={"query": handler},
                        hot_code_bytes=100 * 1024,
                        resident_bytes=32 * 1024 * 1024),
        request_mix={"query": 1.0},
    )


def build_async_gateway(
    asynchronous: bool = True,
    workers: int = 2,
) -> Dict[str, ServiceSpec]:
    """Build {gateway, backend-a, backend-b} with the chosen client model."""
    handler = Handler("route", (
        SyscallOp(SyscallInvocation("recv", nbytes=400)),
        ComputeOp(parse_block("gw_parse", 3000, buffer_bytes=2048)),
        RpcOp("backend-a", 300, 2048, handler="query", parallel_group=1),
        RpcOp("backend-b", 300, 2048, handler="query", parallel_group=1),
        ComputeOp(serialize_block("gw_merge", 2600, payload_bytes=4096)),
        SyscallOp(SyscallInvocation("writev", nbytes=4096)),
    ))
    client_model = (ClientNetworkModel.ASYNCHRONOUS if asynchronous
                    else ClientNetworkModel.SYNCHRONOUS)
    skeleton = Skeleton(
        server_model=ServerNetworkModel.IO_MULTIPLEXING,
        client_model=client_model,
        thread_classes=(
            ThreadClass("acceptor", 1, "acceptor", ThreadTrigger.SOCKET),
            ThreadClass("worker", workers, "worker", ThreadTrigger.SOCKET),
        ),
        max_connections=4096,
    )
    gateway = ServiceSpec(
        name="gateway",
        skeleton=skeleton,
        program=Program(handlers={"route": handler},
                        hot_code_bytes=120 * 1024,
                        resident_bytes=16 * 1024 * 1024),
        request_mix={"route": 1.0},
    )
    return {
        "gateway": gateway,
        "backend-a": _backend("backend-a", 120_000),
        "backend-b": _backend("backend-b", 120_000),
    }


def async_gateway_deployment(
    asynchronous: bool = True,
    workers: int = 2,
    node: str = "node0",
) -> Deployment:
    """Deploy the gateway and both backends on one node."""
    services = build_async_gateway(asynchronous=asynchronous,
                                   workers=workers)
    return Deployment(
        services=services,
        placements=[Placement(name, node) for name in services],
        entry_service="gateway",
    )
