"""Redis 6.2 application model.

§6.1.2: built from source, persistence disabled, 100K records, YCSB
closed-loop load. Redis's signature: a single-threaded event loop (one
worker), dict lookups over a modest in-memory store, no disk activity,
and very low per-request instruction counts — it saturates its one core
while the rest of the machine idles.
"""

from __future__ import annotations

from repro.app.program import ComputeOp, Handler, Program, SyscallOp
from repro.app.service import ServiceSpec
from repro.app.skeleton import (
    ClientNetworkModel,
    ServerNetworkModel,
    Skeleton,
    ThreadClass,
    ThreadTrigger,
)
from repro.app.workloads.common import kv_lookup_block, parse_block, serialize_block
from repro.kernelsim.syscalls import SyscallInvocation

RECORD_COUNT = 100_000
VALUE_BYTES = 1100      # YCSB default: 10 fields x ~100B
STORE_BYTES = RECORD_COUNT * (VALUE_BYTES + 90)


def build_redis() -> ServiceSpec:
    """Build the Redis service model."""
    get_handler = Handler(
        name="get",
        ops=(
            SyscallOp(SyscallInvocation("recv", nbytes=64)),
            ComputeOp(parse_block("redis_resp_parse", instructions=2100,
                                  buffer_bytes=1024)),
            ComputeOp(kv_lookup_block(
                "redis_dict_lookup", instructions=3800,
                table_bytes=STORE_BYTES, accesses=0,
                value_bytes=VALUE_BYTES, shared_frac=0.0)),
            ComputeOp(serialize_block("redis_reply", instructions=1500,
                                      payload_bytes=VALUE_BYTES)),
            SyscallOp(SyscallInvocation("send", nbytes=VALUE_BYTES + 30)),
        ),
    )
    set_handler = Handler(
        name="set",
        ops=(
            SyscallOp(SyscallInvocation("recv", nbytes=VALUE_BYTES + 80)),
            ComputeOp(parse_block("redis_resp_parse_set", instructions=2600,
                                  buffer_bytes=2048)),
            ComputeOp(kv_lookup_block(
                "redis_dict_store", instructions=4600,
                table_bytes=STORE_BYTES, accesses=0,
                value_bytes=VALUE_BYTES, shared_frac=0.0)),
            SyscallOp(SyscallInvocation("send", nbytes=24)),
        ),
    )
    skeleton = Skeleton(
        server_model=ServerNetworkModel.IO_MULTIPLEXING,
        client_model=ClientNetworkModel.SYNCHRONOUS,
        thread_classes=(
            # The event loop both accepts and serves: a single worker.
            ThreadClass("event_loop", 1, "worker", ThreadTrigger.SOCKET),
            ThreadClass("serverCron", 1, "background", ThreadTrigger.TIMER,
                        background_period_s=0.1),
        ),
        max_connections=10000,
        event_batch_window_s=100e-6,
        max_batch=16,
    )
    program = Program(
        handlers={"get": get_handler, "set": set_handler},
        hot_code_bytes=110 * 1024,
        resident_bytes=float(STORE_BYTES),
    )
    return ServiceSpec(
        name="redis",
        skeleton=skeleton,
        program=program,
        request_mix={"get": 0.95, "set": 0.05},
    )
