"""NGINX 1.20 application model.

One worker process (§6.1.2), epoll event loop, serving small static
objects over HTTP driven by tcpkali. NGINX's signature: heavy
string/header parsing (branchy, frontend-pressured — nginx's hot code is
comparatively large), page-cache-resident file reads, vectored writes.
"""

from __future__ import annotations

from repro.app.program import ComputeOp, Handler, Program, SyscallOp
from repro.app.service import ServiceSpec
from repro.app.skeleton import (
    ClientNetworkModel,
    ServerNetworkModel,
    Skeleton,
    ThreadClass,
    ThreadTrigger,
)
from repro.app.workloads.common import parse_block, serialize_block
from repro.kernelsim.syscalls import SyscallInvocation

STATIC_OBJECT_BYTES = 10 * 1024
DOCROOT_BYTES = 64 * 1024 * 1024   # served corpus, fits the page cache
REQUEST_BYTES = 220


def build_nginx(worker_processes: int = 1) -> ServiceSpec:
    """Build the NGINX service model."""
    http_get = Handler(
        name="http_get",
        ops=(
            SyscallOp(SyscallInvocation("recv", nbytes=REQUEST_BYTES)),
            ComputeOp(parse_block("ngx_parse_request", instructions=5200,
                                  buffer_bytes=4096)),
            ComputeOp(parse_block("ngx_headers_filters", instructions=4200,
                                  buffer_bytes=8192)),
            # Static file served via the VFS; the docroot is page-cache
            # resident so this normally produces no device traffic.
            SyscallOp(SyscallInvocation("pread", nbytes=STATIC_OBJECT_BYTES,
                                        file="docroot")),
            ComputeOp(serialize_block("ngx_response", instructions=2600,
                                      payload_bytes=STATIC_OBJECT_BYTES)),
            SyscallOp(SyscallInvocation("writev",
                                        nbytes=STATIC_OBJECT_BYTES + 300)),
        ),
    )
    skeleton = Skeleton(
        server_model=ServerNetworkModel.IO_MULTIPLEXING,
        client_model=ClientNetworkModel.SYNCHRONOUS,
        thread_classes=(
            ThreadClass("master", 1, "acceptor", ThreadTrigger.SOCKET),
            ThreadClass("worker", worker_processes, "worker",
                        ThreadTrigger.SOCKET),
        ),
        max_connections=4096,
        event_batch_window_s=200e-6,
        max_batch=64,
    )
    program = Program(
        handlers={"http_get": http_get},
        # nginx's request path walks a lot of module code.
        hot_code_bytes=180 * 1024,
        resident_bytes=24 * 1024 * 1024,
    )
    return ServiceSpec(
        name="nginx",
        skeleton=skeleton,
        program=program,
        request_mix={"http_get": 1.0},
        files={"docroot": float(DOCROOT_BYTES)},
    )
