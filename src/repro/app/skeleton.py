"""Application skeletons: thread model x network model (§4.3).

The skeleton determines how a service accepts connections, schedules work
across threads, and batches event notifications — the properties Ditto
profiles with SystemTap and reproduces structurally (not statistically),
because they dominate latency and scalability behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.util.errors import ConfigurationError


class ServerNetworkModel(enum.Enum):
    """How the server side waits for requests (§4.3.1)."""

    BLOCKING = "blocking"                 # thread-per-connection recv()
    NONBLOCKING = "nonblocking"           # polling loop, burns CPU at low load
    IO_MULTIPLEXING = "io_multiplexing"   # epoll/select event loop


class ClientNetworkModel(enum.Enum):
    """How the service calls downstream tiers (§4.3.1)."""

    SYNCHRONOUS = "synchronous"     # block on send/recv awaiting response
    ASYNCHRONOUS = "asynchronous"   # event-driven callbacks


class ThreadLifecycle(enum.Enum):
    """Short-lived (spawned per task) vs long-lived (pool) threads (§4.3.2)."""

    LONG_LIVED = "long_lived"
    SHORT_LIVED = "short_lived"


class ThreadTrigger(enum.Enum):
    """What wakes a thread up (§4.3.2)."""

    SOCKET = "socket"
    TIMER = "timer"
    CONDVAR = "condvar"
    SIGNAL = "signal"


@dataclass(frozen=True)
class ThreadClass:
    """One cluster of threads with the same functionality.

    ``count`` may be zero for classes that scale dynamically with the
    connection count (``scales_with_connections`` — e.g. MongoDB spawns a
    thread per client connection).
    """

    name: str
    count: int
    role: str                      # "acceptor" | "worker" | "background"
    trigger: ThreadTrigger
    lifecycle: ThreadLifecycle = ThreadLifecycle.LONG_LIVED
    scales_with_connections: bool = False
    background_period_s: float = 0.0   # for timer-triggered classes

    def __post_init__(self) -> None:
        if self.role not in ("acceptor", "worker", "background"):
            raise ConfigurationError(f"unknown thread role {self.role!r}")
        if self.count < 0:
            raise ConfigurationError("thread count must be non-negative")
        if self.count == 0 and not self.scales_with_connections:
            raise ConfigurationError(
                f"thread class {self.name!r} has no threads and does not scale"
            )
        if self.trigger is ThreadTrigger.TIMER and self.background_period_s <= 0:
            raise ConfigurationError(
                f"timer-triggered class {self.name!r} needs a period"
            )


@dataclass(frozen=True)
class Skeleton:
    """A service's structural model.

    ``event_batch_window_s`` models epoll batching: requests arriving
    within one window are delivered by a single wakeup, which amortises
    context switches and keeps the i-cache warm at high load (the
    mechanism behind Fig. 5's low-load IPC dips for Memcached/NGINX).
    """

    server_model: ServerNetworkModel
    client_model: ClientNetworkModel
    thread_classes: Tuple[ThreadClass, ...]
    max_connections: int = 1024
    event_batch_window_s: float = 200e-6
    max_batch: int = 32

    def __post_init__(self) -> None:
        if not self.thread_classes:
            raise ConfigurationError("a skeleton needs at least one thread class")
        if self.max_connections < 1:
            raise ConfigurationError("max_connections must be >= 1")
        if self.event_batch_window_s < 0:
            raise ConfigurationError("batch window must be non-negative")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        names = [cls.name for cls in self.thread_classes]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate thread class names")

    def worker_threads(self, connections: int = 0) -> int:
        """Concurrent worker threads given ``connections`` live connections."""
        total = 0
        for cls in self.thread_classes:
            if cls.role != "worker":
                continue
            if cls.scales_with_connections:
                total += min(connections, self.max_connections)
            else:
                total += cls.count
        return max(1, total)

    def background_classes(self) -> Tuple[ThreadClass, ...]:
        """Thread classes triggered by timers."""
        return tuple(
            cls for cls in self.thread_classes if cls.role == "background"
        )

    def wait_syscall(self) -> str:
        """The syscall the server blocks in awaiting work."""
        if self.server_model is ServerNetworkModel.IO_MULTIPLEXING:
            return "epoll_wait"
        if self.server_model is ServerNetworkModel.BLOCKING:
            return "recv"
        return "recv"  # non-blocking polls recv with EAGAIN

    def expected_batch(self, qps: float, workers: int) -> float:
        """Expected requests delivered per wakeup at load ``qps``.

        Only I/O-multiplexing servers batch; blocking servers wake once
        per request. Batching saturates at ``max_batch``.
        """
        if self.server_model is not ServerNetworkModel.IO_MULTIPLEXING:
            return 1.0
        if qps <= 0 or workers <= 0:
            return 1.0
        per_worker_rate = qps / workers
        batch = 1.0 + per_worker_rate * self.event_batch_window_s
        return float(min(self.max_batch, batch))
