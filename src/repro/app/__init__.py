"""Application models.

The "original" services Ditto clones are expressed here as statistical
program models: request handlers made of compute blocks (hardware IR),
system calls, and RPCs to downstream tiers, wrapped in a skeleton (thread
model x network model) and composed into multi-tier deployments.

The profilers never read these models' parameters directly — they observe
execution artifacts (instruction/address/branch streams, syscall logs,
traces) exactly as SystemTap/Valgrind/Intel SDE would, so the cloning
pipeline is an honest statistical reconstruction.
"""

from repro.app.program import (
    ComputeOp,
    Handler,
    Op,
    Program,
    RpcOp,
    SyscallOp,
)
from repro.app.skeleton import (
    ClientNetworkModel,
    ServerNetworkModel,
    Skeleton,
    ThreadClass,
    ThreadLifecycle,
    ThreadTrigger,
)
from repro.app.service import Deployment, Placement, ServiceSpec

__all__ = [
    "ClientNetworkModel",
    "ComputeOp",
    "Deployment",
    "Handler",
    "Op",
    "Placement",
    "Program",
    "RpcOp",
    "ServerNetworkModel",
    "ServiceSpec",
    "Skeleton",
    "SyscallOp",
    "ThreadClass",
    "ThreadLifecycle",
    "ThreadTrigger",
]
