"""Service specifications and multi-tier deployments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.app.program import Program
from repro.app.skeleton import Skeleton
from repro.util.errors import ConfigurationError
from repro.util.stats import Histogram


@dataclass(frozen=True)
class ServiceSpec:
    """One service (a monolith, or one tier of a microservice graph).

    ``request_mix`` weights the program's handlers: incoming requests
    sample a handler from it. ``files`` declares the on-disk datasets the
    service touches (registered with the node's VFS at deployment).
    """

    name: str
    skeleton: Skeleton
    program: Program
    request_mix: Mapping[str, float] = field(default_factory=dict)
    files: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        mix = self.request_mix or {
            name: 1.0 for name in self.program.handlers
        }
        object.__setattr__(self, "request_mix", dict(mix))
        for handler_name in self.request_mix:
            self.program.handler(handler_name)  # validates
        if any(weight < 0 for weight in self.request_mix.values()):
            raise ConfigurationError("request mix weights must be non-negative")
        if sum(self.request_mix.values()) <= 0:
            raise ConfigurationError("request mix must have positive total weight")
        for fname, size in self.files.items():
            if size <= 0:
                raise ConfigurationError(f"file {fname!r} must be non-empty")

    def mix_histogram(self) -> Histogram:
        """The request mix as a sampleable histogram."""
        return Histogram(dict(self.request_mix))


@dataclass(frozen=True)
class Placement:
    """Maps one service onto a node name."""

    service: str
    node: str


@dataclass
class Deployment:
    """A set of services placed on nodes, forming a DAG of tiers.

    ``entry_service`` receives client load; other tiers receive RPCs.
    """

    services: Dict[str, ServiceSpec]
    placements: List[Placement]
    entry_service: str

    def __post_init__(self) -> None:
        if self.entry_service not in self.services:
            raise ConfigurationError(
                f"entry service {self.entry_service!r} not in deployment"
            )
        placed = {p.service for p in self.placements}
        for name in self.services:
            if name not in placed:
                raise ConfigurationError(f"service {name!r} has no placement")
        for placement in self.placements:
            if placement.service not in self.services:
                raise ConfigurationError(
                    f"placement references unknown service {placement.service!r}"
                )
        self._check_dag()

    def _check_dag(self) -> None:
        # Depth-first cycle check over RPC dependencies.
        WHITE, GREY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.services}

        def visit(name: str) -> None:
            color[name] = GREY
            for target in self.services[name].program.downstream_services():
                if target not in self.services:
                    raise ConfigurationError(
                        f"{name!r} calls unknown service {target!r}"
                    )
                if color[target] == GREY:
                    raise ConfigurationError(
                        f"RPC cycle through {name!r} -> {target!r}"
                    )
                if color[target] == WHITE:
                    visit(target)
            color[name] = BLACK

        for name in self.services:
            if color[name] == WHITE:
                visit(name)

    def node_of(self, service: str) -> str:
        """The node a service is placed on."""
        for placement in self.placements:
            if placement.service == service:
                return placement.node
        raise ConfigurationError(f"service {service!r} has no placement")

    def node_names(self) -> List[str]:
        """All distinct node names, in placement order."""
        names: List[str] = []
        for placement in self.placements:
            if placement.node not in names:
                names.append(placement.node)
        return names

    def services_on(self, node: str) -> List[str]:
        """Services placed on ``node``."""
        return [p.service for p in self.placements if p.node == node]

    def tier_order(self) -> List[str]:
        """Services in topological order (entry first)."""
        order: List[str] = []
        visited: set = set()

        def visit(name: str) -> None:
            if name in visited:
                return
            visited.add(name)
            order.append(name)
            for target in self.services[name].program.downstream_services():
                visit(target)

        visit(self.entry_service)
        for name in self.services:
            visit(name)
        return order

    @staticmethod
    def single(service: ServiceSpec, node: str = "node0") -> "Deployment":
        """Convenience: deploy one monolithic service on one node."""
        return Deployment(
            services={service.name: service},
            placements=[Placement(service.name, node)],
            entry_service=service.name,
        )
