"""Typed migration request — the fleet-facing sibling of ``CloneRequest``.

A :class:`MigrationRequest` names a saved clone bundle and a
destination platform and carries every parameter the three migration
stages need (preflight constraints, warm-start re-tune budgets, gate
tolerances, remediation policy, sim watchdogs). Like ``CloneRequest``
it is frozen, validated at construction, and content-addressable via
:meth:`digest` so the fleet's job store can deduplicate and fence it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.platform import PlatformSpec
from repro.util.errors import ConfigurationError
from repro.util.spec_hash import stable_digest
from repro.validation.remediate import RemediationPolicy

__all__ = ["MigrationRequest"]


@dataclass(frozen=True, kw_only=True)
class MigrationRequest:
    """Everything needed to migrate one bundle to one destination."""

    #: path of the source clone bundle (integrity-checked at load)
    bundle_path: str
    #: destination platform the clone must be validated on
    destination: PlatformSpec
    #: overrides the bundle's embedded source platform (required for
    #: legacy bundles written before platform provenance existed)
    source_platform: Optional[PlatformSpec] = None
    #: destination cluster size bound (None = unconstrained)
    destination_nodes: Optional[int] = None
    #: apply the documented consolidation rule instead of refusing
    #: when the tier DAG needs more nodes than the destination has
    allow_degraded: bool = False
    seed: int = 17
    #: simulated seconds per re-tune/gate measurement run
    duration_s: float = 0.25
    #: re-tune budget per tier; small because re-tunes warm-start from
    #: the source knob values (the search starts near the answer)
    max_tune_iterations: int = 5
    tune_tolerance: float = 0.05
    #: per-metric relative-tolerance overrides for the destination gate
    tolerances: Optional[Dict[str, float]] = None
    #: remediation ladder for gate failures / tripped sim budgets
    #: (None = the default policy)
    remediation: Optional[RemediationPolicy] = None
    #: sim watchdogs bounding every destination measurement run
    max_sim_events: Optional[int] = None
    sim_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.bundle_path, str) or not self.bundle_path:
            raise ConfigurationError(
                "bundle_path must be a non-empty string")
        if not isinstance(self.destination, PlatformSpec):
            raise ConfigurationError(
                f"destination must be a PlatformSpec, "
                f"got {type(self.destination).__name__}")
        if self.source_platform is not None \
                and not isinstance(self.source_platform, PlatformSpec):
            raise ConfigurationError(
                f"source_platform must be a PlatformSpec, "
                f"got {type(self.source_platform).__name__}")
        if self.destination_nodes is not None \
                and self.destination_nodes < 1:
            raise ConfigurationError("destination_nodes must be >= 1")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.max_tune_iterations < 1:
            raise ConfigurationError("max_tune_iterations must be >= 1")
        if self.tune_tolerance <= 0:
            raise ConfigurationError("tune_tolerance must be positive")
        if self.remediation is not None \
                and not isinstance(self.remediation, RemediationPolicy):
            raise ConfigurationError(
                f"remediation must be a RemediationPolicy, "
                f"got {type(self.remediation).__name__}")
        if self.sim_deadline_s is not None \
                and self.sim_deadline_s < self.duration_s:
            raise ConfigurationError(
                f"sim_deadline_s ({self.sim_deadline_s!r}) must cover "
                f"duration_s ({self.duration_s!r})")

    def digest(self) -> str:
        """Content digest for dedup/idempotent fleet submission.

        The bundle is identified by *path*, not content — re-submitting
        after overwriting the bundle file is a new run of the same job
        spec, exactly like re-running a clone after editing its source.
        """
        return stable_digest({"kind": "migration", "request": self})

    def describe(self) -> str:
        """One-line human summary for fleet listings."""
        source = (self.source_platform.name
                  if self.source_platform is not None else "bundle")
        flags = []
        if self.destination_nodes is not None:
            flags.append(f"nodes<={self.destination_nodes}")
        if self.allow_degraded:
            flags.append("degraded-ok")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (f"migrate {self.bundle_path} {source}→"
                f"{self.destination.name} seed={self.seed}{suffix}")
