"""Cross-environment clone migration (fig7 as an operational workflow).

``repro.migrate`` carries a saved clone bundle to a new platform in
three audited stages — preflight classification, warm-started re-tune,
destination fidelity gate — and publishes a stamped
``ditto-migration/1`` artifact or refuses with a typed
:class:`~repro.util.errors.MigrationError`. Run stand-alone via
``python -m repro.migrate`` or as a fleet job via
``python -m repro.fleet migrate``.
"""

from repro.migrate.engine import (
    MIGRATION_TOLERANCES,
    MigrationResult,
    migrate_bundle,
    migrate_request,
    write_migration_document,
)
from repro.migrate.preflight import (
    ObjectVerdict,
    PreflightReport,
    Verdict,
    run_preflight,
)
from repro.migrate.request import MigrationRequest
from repro.util.errors import MigrationError

__all__ = [
    "MIGRATION_TOLERANCES",
    "MigrationError",
    "MigrationRequest",
    "MigrationResult",
    "ObjectVerdict",
    "PreflightReport",
    "Verdict",
    "migrate_bundle",
    "migrate_request",
    "run_preflight",
    "write_migration_document",
]
