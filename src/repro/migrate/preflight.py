"""Migration preflight: classify what transfers *before* spending work.

Ditto's fig7 cross-platform study shows platform-sensitive knobs only
hold their accuracy envelope when re-tuned per environment. Preflight
makes that actionable Mist-style: diff the source and destination
:class:`~repro.hw.platform.PlatformSpec`, then give every per-tier
knob, device dependency and placement an explicit verdict —

- ``TRANSFERS`` — carried as-is (workload properties, or the relevant
  hardware is identical on the destination);
- ``NEEDS_RETUNE`` — the paired hardware differs, so the knob must be
  re-calibrated on the destination (warm-started from the source
  value) before the destination gate will accept the clone;
- ``UNSUPPORTED`` — no automatic rule can carry the object (e.g. the
  tier DAG needs more nodes than the destination has and degradation
  was not enabled, or a changed platform has no recorded target
  counters to re-tune against). Any ``UNSUPPORTED`` verdict blocks the
  migration with **zero** tuning work spent.

The report is a typed, JSON-round-trippable artifact so refusals are
auditable: every verdict carries the reason and, for degraded
placements, the consolidation that was applied.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.body_gen import TuningKnobs
from repro.hw.platform import CacheConfig, PlatformSpec
from repro.util.errors import ConfigurationError

__all__ = [
    "PREFLIGHT_FORMAT",
    "ObjectVerdict",
    "PreflightReport",
    "Verdict",
    "run_preflight",
]

PREFLIGHT_FORMAT = "ditto-preflight-report/1"

#: every calibration knob gets a verdict per tier
KNOB_NAMES = tuple(f.name for f in dataclasses.fields(TuningKnobs))


class Verdict(str, Enum):
    """Transferability class of one migrated object."""

    TRANSFERS = "transfers"
    NEEDS_RETUNE = "needs_retune"
    UNSUPPORTED = "unsupported"


@dataclass(frozen=True)
class ObjectVerdict:
    """One object's preflight classification, with the reason."""

    #: ``<tier>/<object>`` — e.g. ``"frontend/imem_scale"``
    obj: str
    tier: str
    verdict: Verdict
    reason: str
    #: True when a documented degradation rule was applied (the object
    #: transfers, but not faithfully — e.g. consolidated placement)
    degraded: bool = False

    def to_dict(self) -> dict:
        return {
            "object": self.obj, "tier": self.tier,
            "verdict": self.verdict.value, "reason": self.reason,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ObjectVerdict":
        return cls(
            obj=doc["object"], tier=doc.get("tier", ""),
            verdict=Verdict(doc["verdict"]), reason=doc.get("reason", ""),
            degraded=bool(doc.get("degraded", False)),
        )


@dataclass
class PreflightReport:
    """Typed verdict sheet for one source→destination migration."""

    source: str = ""
    destination: str = ""
    destination_nodes: Optional[int] = None
    allow_degraded: bool = False
    verdicts: List[ObjectVerdict] = field(default_factory=list)
    #: tier → destination node, non-empty only when the degradation
    #: rule consolidated the DAG onto fewer nodes
    consolidated_placements: Dict[str, str] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when nothing blocks the migration."""
        return not self.blocking()

    def blocking(self) -> List[str]:
        """Object names that refuse the migration (``UNSUPPORTED``)."""
        return [v.obj for v in self.verdicts
                if v.verdict is Verdict.UNSUPPORTED]

    def degraded(self) -> List[str]:
        """Objects carried by a degradation rule rather than faithfully."""
        return [v.obj for v in self.verdicts if v.degraded]

    def retune_knobs(self) -> Dict[str, List[str]]:
        """Per-tier knob names that must be re-calibrated."""
        needed: Dict[str, List[str]] = {}
        for v in self.verdicts:
            if v.verdict is not Verdict.NEEDS_RETUNE:
                continue
            knob = v.obj.rpartition("/")[2]
            if knob in KNOB_NAMES:
                needed.setdefault(v.tier, []).append(knob)
        return {tier: sorted(knobs) for tier, knobs in needed.items()}

    def to_dict(self) -> dict:
        """JSON-safe form (the CI preflight artifact)."""
        return {
            "format": PREFLIGHT_FORMAT,
            "source": self.source,
            "destination": self.destination,
            "destination_nodes": self.destination_nodes,
            "allow_degraded": self.allow_degraded,
            "passed": self.passed,
            "blocking": self.blocking(),
            "consolidated_placements": dict(self.consolidated_placements),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "PreflightReport":
        return cls(
            source=doc.get("source", ""),
            destination=doc.get("destination", ""),
            destination_nodes=doc.get("destination_nodes"),
            allow_degraded=bool(doc.get("allow_degraded", False)),
            verdicts=[ObjectVerdict.from_dict(v)
                      for v in doc.get("verdicts", [])],
            consolidated_placements=dict(
                doc.get("consolidated_placements", {})),
        )

    def summary(self) -> str:
        """Human-readable verdict table."""
        lines = [
            f"migration preflight {self.source or '?'} → "
            f"{self.destination or '?'} → "
            f"{'OK' if self.passed else 'REFUSED'}",
            f"{'object':<34} {'verdict':<14} reason",
        ]
        for v in self.verdicts:
            flag = " (degraded)" if v.degraded else ""
            lines.append(
                f"{v.obj:<34} {v.verdict.value + flag:<14} {v.reason}")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# platform diffing
# --------------------------------------------------------------------- #
def _cache_delta(level: str, a: CacheConfig, b: CacheConfig) -> str:
    """Human-readable diff of one cache level; empty when identical."""
    diffs = []
    if a.size_bytes != b.size_bytes:
        diffs.append(f"size {a.size_bytes}→{b.size_bytes}B")
    if a.associativity != b.associativity:
        diffs.append(f"assoc {a.associativity}→{b.associativity}")
    if a.latency_cycles != b.latency_cycles:
        diffs.append(f"latency {a.latency_cycles}→{b.latency_cycles}cy")
    if a.line_bytes != b.line_bytes:
        diffs.append(f"line {a.line_bytes}→{b.line_bytes}B")
    return f"{level} differs ({', '.join(diffs)})" if diffs else ""


def _core_delta(source: PlatformSpec, dest: PlatformSpec) -> str:
    """Diff of the core-side properties the ILP/branch knobs depend on."""
    diffs = []
    if source.uarch.name != dest.uarch.name:
        diffs.append(f"uarch {source.uarch.name}→{dest.uarch.name}")
    if source.base_frequency_ghz != dest.base_frequency_ghz:
        diffs.append(f"frequency {source.base_frequency_ghz}→"
                     f"{dest.base_frequency_ghz}GHz")
    if source.memory_latency_ns != dest.memory_latency_ns:
        diffs.append(f"memory latency {source.memory_latency_ns}→"
                     f"{dest.memory_latency_ns}ns")
    return ", ".join(diffs)


def _knob_rules(source: PlatformSpec,
                dest: PlatformSpec) -> Dict[str, ObjectVerdict]:
    """Platform-level verdict template for each knob (tier filled later)."""
    l1i = _cache_delta("l1i", source.l1i, dest.l1i)
    l1d = _cache_delta("l1d", source.l1d, dest.l1d)
    llc = (_cache_delta("l2", source.l2, dest.l2)
           or _cache_delta("llc", source.llc, dest.llc))
    core = _core_delta(source, dest)
    uarch_differs = source.uarch.name != dest.uarch.name

    def rule(knob: str, verdict: Verdict, reason: str) -> ObjectVerdict:
        return ObjectVerdict(obj=knob, tier="", verdict=verdict,
                             reason=reason)

    rules = {
        "instr_scale": rule(
            "instr_scale", Verdict.TRANSFERS,
            "instruction count per request is a workload property"),
        "chase_scale": rule(
            "chase_scale", Verdict.TRANSFERS,
            "pointer-chase fraction is a workload property"),
        "imem_scale": rule(
            "imem_scale",
            Verdict.NEEDS_RETUNE if l1i else Verdict.TRANSFERS,
            l1i or "l1i geometry identical on destination"),
        "dmem_scale": rule(
            "dmem_scale",
            Verdict.NEEDS_RETUNE if l1d else Verdict.TRANSFERS,
            l1d or "l1d geometry identical on destination"),
        "big_wset_scale": rule(
            "big_wset_scale",
            Verdict.NEEDS_RETUNE if llc else Verdict.TRANSFERS,
            llc or "l2/llc geometry identical on destination"),
        "transition_scale": rule(
            "transition_scale",
            Verdict.NEEDS_RETUNE if uarch_differs else Verdict.TRANSFERS,
            (f"branch predictor belongs to the destination uarch "
             f"({source.uarch.name}→{dest.uarch.name})"
             if uarch_differs else "same branch predictor uarch")),
        "ilp_scale": rule(
            "ilp_scale",
            Verdict.NEEDS_RETUNE if core else Verdict.TRANSFERS,
            core or "core model identical on destination"),
    }
    missing = set(KNOB_NAMES) - set(rules)
    if missing:  # a new TuningKnobs field must get an explicit rule
        raise ConfigurationError(
            f"no preflight rule for knob(s) {sorted(missing)}")
    return rules


def _device_verdicts(tier: str, source: PlatformSpec,
                     dest: PlatformSpec) -> List[ObjectVerdict]:
    """Disk/NIC verdicts: always transfer, but say why it is safe."""
    verdicts = []
    if source.disk != dest.disk:
        disk_reason = (
            f"disk {source.disk.kind}→{dest.disk.kind}; device latency "
            "shapes end-to-end latency only — the counters-mode "
            "destination gate is unaffected")
    else:
        disk_reason = "identical disk on destination"
    if source.network != dest.network:
        nic_reason = (
            f"NIC {source.network.bandwidth_bits_per_s / 1e9:g}→"
            f"{dest.network.bandwidth_bits_per_s / 1e9:g}Gb/s; network "
            "latency shapes end-to-end latency only — the counters-mode "
            "destination gate is unaffected")
    else:
        nic_reason = "identical NIC on destination"
    verdicts.append(ObjectVerdict(
        obj=f"{tier}/disk", tier=tier, verdict=Verdict.TRANSFERS,
        reason=disk_reason))
    verdicts.append(ObjectVerdict(
        obj=f"{tier}/network", tier=tier, verdict=Verdict.TRANSFERS,
        reason=nic_reason))
    return verdicts


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #
def run_preflight(
    document: dict,
    *,
    source: PlatformSpec,
    destination: PlatformSpec,
    destination_nodes: Optional[int] = None,
    allow_degraded: bool = False,
) -> PreflightReport:
    """Classify every per-tier object of a bundle *document* for migration.

    ``document`` is the parsed (and integrity-verified) bundle — pass
    the output of :func:`repro.core.bundle.read_bundle_document`, never
    hand-built JSON. ``destination_nodes`` bounds the destination
    cluster size (None = unconstrained); when the tier DAG needs more
    nodes, ``allow_degraded`` selects the documented degradation rule
    (deterministic round-robin consolidation onto the destination's
    nodes) instead of an ``UNSUPPORTED`` refusal.

    Pure classification: no simulation, no tuning, no file writes.
    """
    tiers = sorted(document.get("tiers", {}))
    if not tiers:
        raise ConfigurationError("bundle document has no tiers")
    if destination_nodes is not None and destination_nodes < 1:
        raise ConfigurationError("destination_nodes must be >= 1")
    report = PreflightReport(
        source=source.name, destination=destination.name,
        destination_nodes=destination_nodes,
        allow_degraded=allow_degraded)
    rules = _knob_rules(source, destination)

    placements = dict(document.get("placements", {}))
    nodes = sorted({placements.get(tier, "node0") for tier in tiers})
    overflow = (destination_nodes is not None
                and len(nodes) > destination_nodes)
    node_map: Dict[str, str] = {}
    if overflow and allow_degraded:
        # Documented degradation rule: deterministic round-robin
        # consolidation of the source's node set (sorted) onto the
        # destination's node0..node{n-1}.
        node_map = {node: f"node{i % destination_nodes}"
                    for i, node in enumerate(nodes)}
        report.consolidated_placements = {
            tier: node_map[placements.get(tier, "node0")]
            for tier in tiers}

    for tier in tiers:
        tier_verdicts = [
            dataclasses.replace(rules[knob], obj=f"{tier}/{knob}",
                                tier=tier)
            for knob in KNOB_NAMES
        ]
        needs_retune = any(v.verdict is Verdict.NEEDS_RETUNE
                           for v in tier_verdicts)
        if needs_retune \
                and document["tiers"][tier].get("target_counters") is None:
            tier_verdicts.append(ObjectVerdict(
                obj=f"{tier}/target_counters", tier=tier,
                verdict=Verdict.UNSUPPORTED,
                reason=("platform-sensitive knobs need re-tuning but the "
                        "bundle records no target counters to tune or "
                        "gate against")))
        tier_verdicts.extend(_device_verdicts(tier, source, destination))

        node = placements.get(tier, "node0")
        if not overflow or (not allow_degraded
                            and nodes.index(node) < destination_nodes):
            tier_verdicts.append(ObjectVerdict(
                obj=f"{tier}/placement", tier=tier,
                verdict=Verdict.TRANSFERS,
                reason=(f"placement {node} fits the destination"
                        + (f" ({destination_nodes} node(s))"
                           if destination_nodes is not None else ""))))
        elif allow_degraded:
            tier_verdicts.append(ObjectVerdict(
                obj=f"{tier}/placement", tier=tier,
                verdict=Verdict.TRANSFERS, degraded=True,
                reason=(f"consolidated {node}→{node_map[node]}: "
                        f"destination has {destination_nodes} node(s) "
                        f"for a {len(nodes)}-node tier DAG")))
        else:
            tier_verdicts.append(ObjectVerdict(
                obj=f"{tier}/placement", tier=tier,
                verdict=Verdict.UNSUPPORTED,
                reason=(f"tier DAG spans {len(nodes)} nodes but the "
                        f"destination has {destination_nodes}; enable "
                        "degraded migration (allow_degraded) to "
                        "consolidate tiers onto the destination's "
                        "nodes")))
        report.verdicts.extend(tier_verdicts)
    return report
