"""Three-stage clone migration: preflight → warm re-tune → destination gate.

The operational form of Ditto's fig7 cross-platform result. A saved
clone bundle is carried to a new environment in three stages, each a
robustness surface:

1. **preflight** — the bundle is loaded through the integrity layer
   (corruption quarantines, never a partial migrate) and every per-tier
   knob/object is classified by :func:`repro.migrate.preflight
   .run_preflight`. Any blocking verdict refuses the migration with a
   typed :class:`~repro.util.errors.MigrationError` before a single
   simulation is run.
2. **re-tune** — ``NEEDS_RETUNE`` knobs are re-calibrated on the
   destination with :func:`repro.core.finetune.fine_tune`, warm-started
   from the source knob values and *scoped* to the metrics paired with
   the stale knobs. Sim watchdogs bound every run; trips climb the
   :class:`~repro.validation.remediate.RemediationPolicy` ladder.
3. **destination gate** — each tier is replayed on the destination and
   gated by :class:`~repro.validation.gate.FidelityGate` against the
   source bundle's recorded ``target_counters``. Gate failures climb
   the same remediation ladder (re-seed + widened re-tune); exhaustion
   refuses publication.

A successful migration publishes a stamped ``ditto-migration/1``
artifact: a strict superset of the clone-bundle document (so every
bundle consumer — ``load_bundle``, ``deployment_from_bundle``,
``python -m repro.validation`` — works on it unchanged) plus a
``migration`` stanza embedding the preflight report, the destination
fidelity report, and the per-knob retune deltas.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.body_gen import GeneratorConfig, TuningKnobs
from repro.core.bundle import (
    MIGRATION_FORMAT,
    MIGRATION_VERSION,
    bundle_source_platform,
    decode_features,
    read_bundle_document,
)
from repro.core.finetune import KNOB_FOR_METRIC, _measure, fine_tune
from repro.hw.platform import PlatformSpec, platform_to_dict
from repro.loadgen.generator import LoadSpec
from repro.migrate.preflight import PreflightReport, run_preflight
from repro.migrate.request import MigrationRequest
from repro.runtime.expcache import ExperimentCache
from repro.runtime.experiment import ExperimentConfig
from repro.util.errors import (
    MigrationError,
    SimBudgetExceededError,
)
from repro.validation import integrity
from repro.validation.gate import (
    FidelityGate,
    FidelityReport,
    MetricTolerance,
)
from repro.validation.remediate import RemediationPolicy

__all__ = [
    "MIGRATION_TOLERANCES",
    "MigrationResult",
    "migrate_bundle",
    "migrate_request",
    "write_migration_document",
]

#: gate/tune metric order (fixed so scoped subsets stay deterministic)
_TUNE_METRICS = ("ipc", "branch", "l1i", "l1d", "llc")

#: The documented §6/fig7 *cross-platform* error envelope the
#: destination gate enforces. Metrics a knob can steer on the
#: destination keep validation-tight bounds (l1i/l1d via the memory
#: knobs, branch via transition_scale). Structure-bound metrics get
#: destination-width bounds: l2 has no paired knob at all (L2 occupancy
#: follows the destination's geometry), and llc/ipc saturate at the
#: knob clamp range when the source and destination hierarchies differ
#: severalfold (a 1MB→256KB L2 or 2.1→3.5GHz core moves the physical
#: counters further than any knob can chase — exactly the drift fig7
#: plots). Caller ``tolerances`` override per metric.
MIGRATION_TOLERANCES = {
    "ipc": MetricTolerance("ipc", relative=0.45),
    "l1i": MetricTolerance("l1i", relative=0.25, absolute=0.03),
    "l1d": MetricTolerance("l1d", relative=0.25, absolute=0.03),
    "l2": MetricTolerance("l2", relative=0.0, absolute=0.40),
    "llc": MetricTolerance("llc", relative=0.80, absolute=0.40),
    "branch": MetricTolerance("branch", relative=0.35, absolute=0.01),
}


@dataclass
class MigrationResult:
    """Outcome of a published (gate-passing) migration."""

    preflight: PreflightReport
    fidelity: FidelityReport
    #: final per-tier knob vectors written into the migrated bundle
    knobs: Dict[str, TuningKnobs]
    #: tier → knob → {"from": source value, "to": destination value}
    retune_deltas: Dict[str, Dict[str, Dict[str, float]]]
    tuning_iterations: Dict[str, int]
    #: human-readable remediation ladder steps taken (empty = clean run)
    remediation: List[str] = field(default_factory=list)
    #: the full stamped ``ditto-migration/1`` document
    document: dict = field(default_factory=dict)
    #: where the artifact was written (None = caller kept it in memory)
    path: Optional[Path] = None


def _tier_load(features) -> LoadSpec:
    """The load discipline the tier was profiled (and tuned) under."""
    if features.observed_closed_loop:
        return LoadSpec.closed_loop(max(1, features.observed_connections))
    return LoadSpec.open_loop(max(100.0, features.observed_qps))


def _scoped_metrics(needed: List[str]) -> tuple:
    """The tune/update metric subset paired with the stale knobs."""
    wanted = set(needed)
    return tuple(
        metric for metric in _TUNE_METRICS
        if (metric == "ipc" and "ilp_scale" in wanted)
        or KNOB_FOR_METRIC.get(metric) in wanted)


def _notify(observer, phase: str, attempt: int = 0) -> None:
    if observer is not None:
        observer(phase, attempt=attempt)


def migrate_bundle(
    bundle_path,
    destination: PlatformSpec,
    out_path=None,
    *,
    source_platform: Optional[PlatformSpec] = None,
    destination_nodes: Optional[int] = None,
    allow_degraded: bool = False,
    seed: int = 17,
    duration_s: float = 0.25,
    max_tune_iterations: int = 5,
    tune_tolerance: float = 0.05,
    tolerances: Optional[Dict[str, float]] = None,
    gate: Optional[FidelityGate] = None,
    remediation: Optional[RemediationPolicy] = None,
    max_sim_events: Optional[int] = None,
    sim_deadline_s: Optional[float] = None,
    cache: Optional[ExperimentCache] = None,
    observer: Optional[Callable[..., None]] = None,
) -> MigrationResult:
    """Migrate a saved bundle to ``destination``; publish or refuse.

    Returns a :class:`MigrationResult` whose document was written
    atomically to ``out_path`` (when given). Refusals raise a typed
    :class:`~repro.util.errors.MigrationError` whose ``stage`` is
    ``"preflight"`` (blocking verdicts, zero tuning work spent),
    ``"retune"`` (watchdog budgets exhausted the remediation ladder) or
    ``"gate"`` (destination fidelity failed after remediation); a
    corrupt source bundle raises ``ArtifactIntegrityError`` after
    quarantining the file. ``observer(phase, attempt=)`` — phases
    ``"preflight"``/``"retune"``/``"gate"`` — lets the fleet worker
    mirror stage progress into job lifecycle states.

    Determinism: same bundle bytes + same arguments → byte-identical
    output document (no timestamps, named-stream remediation seeds,
    deterministic tuning), which is what lets the fleet's crash/resume
    tests diff a recovered migration against a never-crashed control.
    """
    document = read_bundle_document(bundle_path)
    _notify(observer, "preflight")
    source = (source_platform if source_platform is not None
              else bundle_source_platform(document))
    if source is None:
        raise MigrationError(
            f"{bundle_path}: bundle records no source platform "
            "(pre-provenance bundle) — pass source_platform explicitly",
            stage="preflight", blocking=["bundle/source_platform"])
    preflight = run_preflight(
        document, source=source, destination=destination,
        destination_nodes=destination_nodes,
        allow_degraded=allow_degraded)
    if not preflight.passed:
        blocking = preflight.blocking()
        raise MigrationError(
            f"preflight refused {source.name}→{destination.name} "
            f"migration of {bundle_path}: blocking objects "
            + ", ".join(blocking),
            stage="preflight", blocking=blocking, report=preflight)

    features = {name: decode_features(data)
                for name, data in document["tiers"].items()}
    stored_knobs = {name: TuningKnobs(**data)
                    for name, data in
                    document.get("tuned_knobs", {}).items()}
    retune = preflight.retune_knobs()
    policy = remediation if remediation is not None else RemediationPolicy()
    if gate is None:
        gate = FidelityGate({**MIGRATION_TOLERANCES, **(tolerances or {})})

    def config_for(run_seed: int) -> ExperimentConfig:
        return ExperimentConfig(
            platform=destination, duration_s=duration_s, seed=run_seed,
            max_sim_events=max_sim_events, sim_deadline_s=sim_deadline_s)

    def tune_tier(tier: str, run_seed: int, budget: int,
                  metrics: tuple):
        return fine_tune(
            features[tier], config_for(run_seed),
            load=_tier_load(features[tier]),
            base_config=GeneratorConfig(
                knobs=stored_knobs.get(tier, TuningKnobs())),
            max_iterations=budget, tolerance=tune_tolerance,
            metrics=metrics or _TUNE_METRICS, cache=cache)

    # ------------------------------------------------------------- #
    # stage 2: warm-started, scoped re-tune of NEEDS_RETUNE knobs
    # ------------------------------------------------------------- #
    _notify(observer, "retune")
    knobs: Dict[str, TuningKnobs] = {}
    iterations: Dict[str, int] = {}
    remediation_log: List[str] = []
    for tier in sorted(features):
        base = stored_knobs.get(tier, TuningKnobs())
        stale = retune.get(tier, [])
        if not stale:
            knobs[tier] = base
            iterations[tier] = 0
            continue
        metrics = _scoped_metrics(stale)
        attempt, run_seed, budget = 0, seed, max_tune_iterations
        while True:
            try:
                result = tune_tier(tier, run_seed, budget, metrics)
            except SimBudgetExceededError as trip:
                step = policy.plan(
                    attempt + 1, reason="sim_budget", base_seed=seed,
                    base_tune_iterations=max_tune_iterations,
                    base_executor="serial")
                if step is None:
                    raise MigrationError(
                        f"{tier}: destination re-tune exhausted the "
                        f"remediation ladder on simulation budgets "
                        f"({trip})", stage="retune",
                        blocking=[f"{tier}/{knob}" for knob in stale],
                        report=preflight) from trip
                attempt = step.attempt
                run_seed, budget = step.seed, step.max_tune_iterations
                remediation_log.append(
                    f"{tier}: sim_budget → attempt {attempt} "
                    f"(seed {run_seed}, {budget} iterations)")
                _notify(observer, "retune", attempt=attempt)
                continue
            break
        knobs[tier] = result.knobs
        iterations[tier] = result.iterations

    # ------------------------------------------------------------- #
    # stage 3: destination fidelity gate (with remediation ladder)
    # ------------------------------------------------------------- #
    _notify(observer, "gate")

    def gate_tier(tier: str, run_seed: int) -> FidelityReport:
        measured, _spec = _measure(
            features[tier], GeneratorConfig(knobs=knobs[tier]),
            config_for(run_seed), _tier_load(features[tier]),
            cache=cache)
        return gate.compare_counters(
            tier, features[tier].target_counters, measured,
            platform=destination.name, seed=run_seed)

    gated = [tier for tier in sorted(features)
             if features[tier].target_counters is not None]
    tier_reports: Dict[str, FidelityReport] = {}
    failed: List[str] = []
    for tier in gated:
        tier_reports[tier] = gate_tier(tier, seed)
        if not tier_reports[tier].passed:
            failed.append(tier)
    attempt = 0
    while failed:
        attempt += 1
        step = policy.plan(
            attempt, reason="gate_failure", base_seed=seed,
            base_tune_iterations=max_tune_iterations,
            base_executor="serial")
        if step is None:
            merged = _merge_reports(tier_reports, document, destination,
                                    seed)
            blocking = [f"{tier}/{check.metric}" for tier in failed
                        for check in tier_reports[tier].failures()]
            raise MigrationError(
                f"destination gate failed for {', '.join(failed)} on "
                f"{destination.name} after exhausting the remediation "
                "ladder — refusing to publish",
                stage="gate", blocking=blocking, report=merged)
        remediation_log.append(
            f"{'+'.join(failed)}: gate_failure → attempt {step.attempt} "
            f"(seed {step.seed}, {step.max_tune_iterations} iterations)")
        _notify(observer, "retune", attempt=step.attempt)
        for tier in failed:
            # A gate failure widens the scope: re-tune over the full
            # metric set, still warm-started from the source knobs.
            try:
                result = tune_tier(tier, step.seed,
                                   step.max_tune_iterations,
                                   _TUNE_METRICS)
            except SimBudgetExceededError as trip:
                raise MigrationError(
                    f"{tier}: remediation re-tune tripped its "
                    f"simulation budget ({trip})", stage="retune",
                    blocking=[f"{tier}/remediation"],
                    report=preflight) from trip
            knobs[tier] = result.knobs
            iterations[tier] = iterations.get(tier, 0) + result.iterations
        _notify(observer, "gate", attempt=step.attempt)
        still_failed = []
        for tier in failed:
            tier_reports[tier] = gate_tier(tier, step.seed)
            if not tier_reports[tier].passed:
                still_failed.append(tier)
        failed = still_failed

    fidelity = _merge_reports(tier_reports, document, destination, seed)
    deltas = {
        tier: {
            knob: {"from": getattr(stored_knobs.get(tier, TuningKnobs()),
                                   knob),
                   "to": getattr(knobs[tier], knob)}
            for knob in (f.name for f in dataclasses.fields(TuningKnobs))
            if getattr(stored_knobs.get(tier, TuningKnobs()), knob)
            != getattr(knobs[tier], knob)
        }
        for tier in sorted(features)
    }
    deltas = {tier: changed for tier, changed in deltas.items() if changed}

    # ------------------------------------------------------------- #
    # publish: stamped ditto-migration/1 superset document
    # ------------------------------------------------------------- #
    out_document = {
        "format": MIGRATION_FORMAT,
        "version": MIGRATION_VERSION,
        "entry_service": document["entry_service"],
        "placements": (dict(preflight.consolidated_placements)
                       or dict(document.get("placements", {}))),
        "tiers": document["tiers"],
        "tuned_knobs": {tier: dataclasses.asdict(vector)
                        for tier, vector in knobs.items()},
        "source_platform": platform_to_dict(source),
        "migration": {
            "source": source.name,
            "destination": destination.name,
            "destination_platform": platform_to_dict(destination),
            "seed": seed,
            "preflight": preflight.to_dict(),
            "fidelity": fidelity.to_dict(),
            "retune": deltas,
            "tuning_iterations": dict(iterations),
            "remediation": list(remediation_log),
        },
    }
    integrity.stamp_json(out_document)
    path = None
    if out_path is not None:
        path = write_migration_document(out_document, out_path)
    return MigrationResult(
        preflight=preflight, fidelity=fidelity, knobs=knobs,
        retune_deltas=deltas, tuning_iterations=iterations,
        remediation=remediation_log, document=out_document, path=path)


def write_migration_document(document: dict, path) -> Path:
    """Atomically write a stamped ``ditto-migration/1`` document.

    Same bytes discipline as :func:`repro.core.bundle.save_bundle`
    (sorted keys, ``indent=1``, tmp + ``os.replace``), so a crash
    mid-publish leaves the previous artifact, never half of the new
    one — and the same document always serialises to the same bytes.
    """
    path = Path(path)
    scratch = Path(f"{path}.tmp-{os.getpid()}")
    scratch.write_text(json.dumps(document, indent=1, sort_keys=True))
    os.replace(scratch, path)
    return path


def _merge_reports(tier_reports: Dict[str, FidelityReport],
                   document: dict, destination: PlatformSpec,
                   seed: int) -> FidelityReport:
    """Fold per-tier gate reports into one deployment-level report."""
    merged = FidelityReport(
        label=document.get("entry_service", ""),
        platform=destination.name, seed=seed, mode="counters")
    for tier in sorted(tier_reports):
        merged.checks.extend(tier_reports[tier].checks)
    return merged


def migrate_request(
    request: MigrationRequest,
    out_path=None,
    *,
    gate: Optional[FidelityGate] = None,
    cache: Optional[ExperimentCache] = None,
    observer: Optional[Callable[..., None]] = None,
) -> MigrationResult:
    """Execute a typed :class:`MigrationRequest` (the fleet entry point)."""
    return migrate_bundle(
        request.bundle_path, request.destination, out_path,
        source_platform=request.source_platform,
        destination_nodes=request.destination_nodes,
        allow_degraded=request.allow_degraded,
        seed=request.seed, duration_s=request.duration_s,
        max_tune_iterations=request.max_tune_iterations,
        tune_tolerance=request.tune_tolerance,
        tolerances=request.tolerances, gate=gate,
        remediation=request.remediation,
        max_sim_events=request.max_sim_events,
        sim_deadline_s=request.sim_deadline_s,
        cache=cache, observer=observer)
