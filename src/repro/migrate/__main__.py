"""CLI: migrate a saved clone bundle to a destination platform.

Exit codes (CI discriminates on them):

- ``0`` — published: destination gate passed, stamped
  ``ditto-migration/1`` artifact written;
- ``1`` — work was spent but the migration was refused (destination
  gate failed, or re-tune exhausted its simulation budgets);
- ``2`` — refused at preflight with zero tuning work (blocking
  verdicts, missing source platform, or a corrupt/quarantined source
  bundle);
- ``3`` — the migration could not run at all (bad arguments, I/O).

``--preflight-json`` writes the verdict sheet even on refusal, so CI
can always upload the report artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.hw.platform import load_platform_spec, platform_by_name
from repro.migrate.engine import migrate_bundle
from repro.migrate.preflight import PreflightReport
from repro.util.errors import (
    ArtifactIntegrityError,
    MigrationError,
    ReproError,
)

EXIT_PUBLISHED = 0
EXIT_REFUSED = 1
EXIT_PREFLIGHT = 2
EXIT_ERROR = 3


def _parse_tolerances(entries: List[str]) -> Dict[str, float]:
    tolerances: Dict[str, float] = {}
    for entry in entries:
        name, _, value = entry.partition("=")
        if not name or not value:
            raise SystemExit(
                f"--tolerance takes metric=value, got {entry!r}")
        try:
            tolerances[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--tolerance value for {name!r} must be a number, "
                f"got {value!r}") from None
    return tolerances


def _write_preflight(path: Optional[str],
                     report: Optional[PreflightReport]) -> None:
    if not path or report is None:
        return
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.migrate",
        description="Migrate a saved clone bundle to a destination "
                    "platform: preflight, warm re-tune, destination "
                    "fidelity gate.")
    parser.add_argument("bundle", help="path to the source clone bundle")
    parser.add_argument("--destination", required=True,
                        help="destination platform name (built-in A/B/C "
                             "or registered via --platform-file)")
    parser.add_argument("--out", default=None,
                        help="output path for the migrated bundle "
                             "(default: <bundle>.migrated.json)")
    parser.add_argument("--source-platform", default=None,
                        help="override the bundle's embedded source "
                             "platform (required for legacy bundles)")
    parser.add_argument("--platform-file", action="append", default=[],
                        metavar="SPEC.json",
                        help="register an extra platform spec before "
                             "resolving names (repeatable)")
    parser.add_argument("--destination-nodes", type=int, default=None,
                        help="destination cluster size bound "
                             "(default: unconstrained)")
    parser.add_argument("--allow-degraded", action="store_true",
                        help="consolidate the tier DAG onto fewer nodes "
                             "instead of refusing at preflight")
    parser.add_argument("--seed", type=int, default=17,
                        help="re-tune/gate seed (default: 17)")
    parser.add_argument("--duration", type=float, default=0.25,
                        help="simulated seconds per measurement run "
                             "(default: 0.25)")
    parser.add_argument("--max-tune-iterations", type=int, default=5,
                        help="warm-started re-tune budget per tier "
                             "(default: 5)")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="METRIC=REL",
                        help="override a destination-gate relative "
                             "tolerance, e.g. ipc=0.1 (repeatable)")
    parser.add_argument("--max-sim-events", type=int, default=None,
                        help="event-budget watchdog per measurement run")
    parser.add_argument("--sim-deadline", type=float, default=None,
                        help="sim-time deadline watchdog per run")
    parser.add_argument("--preflight-json", default=None,
                        help="write the preflight verdict sheet here "
                             "(written even when the migration refuses)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the verdict/fidelity tables")
    options = parser.parse_args(argv)

    try:
        for spec_path in options.platform_file:
            load_platform_spec(spec_path)
        destination = platform_by_name(options.destination)
        source = (platform_by_name(options.source_platform)
                  if options.source_platform else None)
    except (ReproError, OSError) as error:
        print(f"migration could not start: {error}", file=sys.stderr)
        return EXIT_ERROR

    out_path = options.out or f"{options.bundle}.migrated.json"
    try:
        result = migrate_bundle(
            options.bundle, destination, out_path,
            source_platform=source,
            destination_nodes=options.destination_nodes,
            allow_degraded=options.allow_degraded,
            seed=options.seed, duration_s=options.duration,
            max_tune_iterations=options.max_tune_iterations,
            tolerances=_parse_tolerances(options.tolerance),
            max_sim_events=options.max_sim_events,
            sim_deadline_s=options.sim_deadline,
        )
    except ArtifactIntegrityError as error:
        print(f"source bundle integrity failure: {error}",
              file=sys.stderr)
        return EXIT_PREFLIGHT
    except MigrationError as error:
        report = error.report
        if isinstance(report, PreflightReport):
            _write_preflight(options.preflight_json, report)
            if not options.quiet:
                print(report.summary())
        elif report is not None and not options.quiet:
            print(report.summary())
        print(f"migration refused at {error.stage or 'unknown'}: {error}",
              file=sys.stderr)
        return (EXIT_PREFLIGHT if error.stage == "preflight"
                else EXIT_REFUSED)
    except (ReproError, OSError) as error:
        print(f"migration failed to run: {error}", file=sys.stderr)
        return EXIT_ERROR

    _write_preflight(options.preflight_json, result.preflight)
    if not options.quiet:
        print(result.preflight.summary())
        print()
        print(result.fidelity.summary())
        if result.remediation:
            print()
            for step in result.remediation:
                print(f"remediation: {step}")
    print(f"migrated {options.bundle} → {result.path} "
          f"({result.preflight.source}→{result.preflight.destination}, "
          f"gate PASS)")
    return EXIT_PUBLISHED


if __name__ == "__main__":
    sys.exit(main())
