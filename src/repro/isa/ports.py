"""Execution-port groups and microarchitecture descriptions.

Instruction definitions reference abstract *port groups* ("alu", "load",
"mul", ...); each :class:`UArch` maps a group to the number of ports that
can service it and a reciprocal throughput. This keeps the iform catalogue
platform-independent — exactly the property Ditto relies on for porting
clones across machines without reprofiling (§4.1 Portability) — while the
timing model stays faithful to real Skylake/Haswell port maps (uops.info,
Agner Fog's tables).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.util.errors import ConfigurationError


class PortGroup(enum.Enum):
    """Abstract execution-resource classes.

    The names track the functional split of Intel big-core ports:

    - ``ALU``: simple integer ops (ports 0/1/5/6 on SKL & HSW);
    - ``MUL``: integer multiply / CRC32 (port 1 only — the paper's §4.4.2
      CRC32 example);
    - ``DIV``: the non-pipelined divider behind port 0;
    - ``SHIFT``: shifts and rotates (ports 0/6);
    - ``BRANCH``: taken-branch execution (port 0/6 on SKL, 6 on HSW);
    - ``LOAD``: load AGU+data (ports 2/3);
    - ``STORE``: store data (port 4; address generation folded in);
    - ``FP``: scalar/vector FP add & mul (ports 0/1 on SKL, 0/1 on HSW);
    - ``FP_DIV``: FP divide/sqrt (non-pipelined, port 0);
    - ``SIMD``: integer vector ops (ports 0/1/5);
    - ``STRING``: microcoded REP-string sequencing;
    - ``LOCK``: locked RMW serialisation.
    """

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    SHIFT = "shift"
    BRANCH = "branch"
    LOAD = "load"
    STORE = "store"
    FP = "fp"
    FP_DIV = "fp_div"
    SIMD = "simd"
    STRING = "string"
    LOCK = "lock"


@dataclass(frozen=True)
class PortGroupSpec:
    """Capacity of one port group on one microarchitecture.

    ``ports`` is how many uops of this group can start per cycle;
    ``recip_throughput`` is the steady-state cycles per uop through one
    port (1.0 for pipelined units, larger for dividers/microcode).
    """

    ports: float
    recip_throughput: float = 1.0

    def cycles_for(self, uops: float) -> float:
        """Cycles this group needs to issue ``uops`` uops."""
        if uops < 0:
            raise ConfigurationError(f"negative uop count {uops}")
        if self.ports <= 0:
            raise ConfigurationError("port group with no ports")
        return uops * self.recip_throughput / self.ports


@dataclass(frozen=True)
class UArch:
    """An out-of-order core microarchitecture.

    The parameters are the ones the analytical core model consumes; values
    follow Intel optimisation-manual numbers for each generation.
    """

    name: str
    issue_width: int            # allocation/rename width (uops/cycle)
    retire_width: int
    decode_width: int           # legacy-decode uops/cycle (frontend bound)
    rob_size: int               # reorder-buffer entries (ILP window)
    load_buffer: int            # outstanding loads
    mshr_count: int             # L1d miss-level parallelism limit
    mispredict_penalty: float   # cycles to re-steer after a branch miss
    btb_entries: int            # branch-target buffer capacity (aliasing)
    predictor_history: int      # global-history bits of the predictor
    port_groups: Mapping[PortGroup, PortGroupSpec] = field(default_factory=dict)

    def group(self, group: PortGroup) -> PortGroupSpec:
        """Return the capacity spec for ``group``."""
        spec = self.port_groups.get(group)
        if spec is None:
            raise ConfigurationError(f"{self.name} has no spec for {group}")
        return spec


def _common_port_groups(
    branch_ports: float, fp_ports: float
) -> Dict[PortGroup, PortGroupSpec]:
    return {
        PortGroup.ALU: PortGroupSpec(ports=4),
        PortGroup.MUL: PortGroupSpec(ports=1),
        PortGroup.DIV: PortGroupSpec(ports=1, recip_throughput=24.0),
        PortGroup.SHIFT: PortGroupSpec(ports=2),
        PortGroup.BRANCH: PortGroupSpec(ports=branch_ports),
        PortGroup.LOAD: PortGroupSpec(ports=2),
        PortGroup.STORE: PortGroupSpec(ports=1),
        PortGroup.FP: PortGroupSpec(ports=fp_ports),
        PortGroup.FP_DIV: PortGroupSpec(ports=1, recip_throughput=13.0),
        PortGroup.SIMD: PortGroupSpec(ports=3),
        PortGroup.STRING: PortGroupSpec(ports=1, recip_throughput=1.0),
        PortGroup.LOCK: PortGroupSpec(ports=1, recip_throughput=18.0),
    }


#: Skylake-SP (Platform A's Gold 6152) — 4-wide allocate, 224-entry ROB.
SKYLAKE_SERVER = UArch(
    name="skylake-server",
    issue_width=4,
    retire_width=4,
    decode_width=4,
    rob_size=224,
    load_buffer=72,
    mshr_count=12,
    mispredict_penalty=16.0,
    btb_entries=4096,
    predictor_history=16,
    port_groups=_common_port_groups(branch_ports=2, fp_ports=2),
)

#: Skylake client (Platform C's E3-1240 v5) — same core, smaller uncore.
SKYLAKE_CLIENT = UArch(
    name="skylake-client",
    issue_width=4,
    retire_width=4,
    decode_width=4,
    rob_size=224,
    load_buffer=72,
    mshr_count=12,
    mispredict_penalty=16.0,
    btb_entries=4096,
    predictor_history=16,
    port_groups=_common_port_groups(branch_ports=2, fp_ports=2),
)

#: Haswell (Platform B's E5-2660 v3) — older generation: smaller ROB,
#: single taken-branch port, shallower predictor, higher divide latency.
HASWELL = UArch(
    name="haswell",
    issue_width=4,
    retire_width=4,
    decode_width=4,
    rob_size=192,
    load_buffer=72,
    mshr_count=10,
    mispredict_penalty=17.0,
    btb_entries=2048,
    predictor_history=12,
    port_groups=_common_port_groups(branch_ports=1, fp_ports=2),
)

ALL_UARCHES = {u.name: u for u in (SKYLAKE_SERVER, SKYLAKE_CLIENT, HASWELL)}
