"""Register file model.

The generator reserves a handful of registers for bookkeeping (Fig. 3 of
the paper): ``r9`` as the block loop counter, ``r10`` as the data-array
base address, ``r11`` for pointer chasing, and ``r8`` for the branch bit
mask. The remaining general-purpose and SIMD registers are the pool Ditto
assigns from when cloning data-dependency distances (§4.4.6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.util.errors import ConfigurationError


class RegisterClass(enum.Enum):
    """Architectural register classes the paper's operand analysis uses."""

    GPR = "gpr"
    XMM = "xmm"
    X87 = "x87"
    FLAGS = "flags"


@dataclass(frozen=True)
class Register:
    """A single architectural register."""

    name: str
    reg_class: RegisterClass
    width_bits: int

    def __str__(self) -> str:
        return self.name


def _gprs() -> List[Register]:
    names = [
        "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    ]
    return [Register(name, RegisterClass.GPR, 64) for name in names]


def _xmms() -> List[Register]:
    return [Register(f"xmm{i}", RegisterClass.XMM, 128) for i in range(16)]


def _x87s() -> List[Register]:
    return [Register(f"st{i}", RegisterClass.X87, 80) for i in range(8)]


#: Registers Ditto's code generator reserves (Fig. 3): they never enter the
#: dependency-assignment pool.
RESERVED_GPR_NAMES: Tuple[str, ...] = ("rsp", "rbp", "r8", "r9", "r10", "r11")


class RegisterFile:
    """The full register file plus the generator's free/reserved split."""

    def __init__(self, reserved_names: Tuple[str, ...] = RESERVED_GPR_NAMES) -> None:
        self.gprs = _gprs()
        self.xmms = _xmms()
        self.x87s = _x87s()
        self.flags = Register("rflags", RegisterClass.FLAGS, 64)
        known = {reg.name for reg in self.gprs}
        for name in reserved_names:
            if name not in known:
                raise ConfigurationError(f"unknown reserved register {name!r}")
        self.reserved_names = tuple(reserved_names)

    def all_registers(self) -> List[Register]:
        """All architectural registers, GPRs first."""
        return [*self.gprs, *self.xmms, *self.x87s, self.flags]

    def by_name(self, name: str) -> Register:
        """Look a register up by name."""
        for reg in self.all_registers():
            if reg.name == name:
                return reg
        raise ConfigurationError(f"unknown register {name!r}")

    def free_gprs(self) -> List[Register]:
        """GPRs available to the dependency assigner."""
        return [reg for reg in self.gprs if reg.name not in self.reserved_names]

    def free_xmms(self) -> List[Register]:
        """XMM registers available to the dependency assigner."""
        return list(self.xmms)

    def pool(self, reg_class: RegisterClass) -> List[Register]:
        """The assignable pool for a register class."""
        if reg_class is RegisterClass.GPR:
            return self.free_gprs()
        if reg_class is RegisterClass.XMM:
            return self.free_xmms()
        if reg_class is RegisterClass.X87:
            return list(self.x87s)
        raise ConfigurationError(f"no assignable pool for {reg_class}")
