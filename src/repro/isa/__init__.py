"""x86-flavoured instruction-set model.

Ditto's application-body generator works at the assembly level: it samples
instructions from the profiled mix, honouring each instruction's uop count,
port usage, and latency (§4.4.2 cites uops.info and Agner Fog's tables).
This package provides:

- the register file and the registers Ditto reserves for generated code
  (loop counters, memory base, pointer-chase register, branch mask);
- execution-port *groups* that abstract the per-microarchitecture port maps
  so instruction definitions stay platform-independent;
- an iform catalogue with uops / port groups / latency / encoded size;
- per-microarchitecture tables (Skylake server & client, Haswell).
"""

from repro.isa.instructions import (
    IForm,
    InstructionCategory,
    OperandKind,
    catalog,
    iform,
    iform_names,
)
from repro.isa.ports import PortGroup, UArch, HASWELL, SKYLAKE_CLIENT, SKYLAKE_SERVER
from repro.isa.registers import Register, RegisterClass, RegisterFile

__all__ = [
    "HASWELL",
    "IForm",
    "InstructionCategory",
    "OperandKind",
    "PortGroup",
    "Register",
    "RegisterClass",
    "RegisterFile",
    "SKYLAKE_CLIENT",
    "SKYLAKE_SERVER",
    "UArch",
    "catalog",
    "iform",
    "iform_names",
]
