"""The iform catalogue.

Intel SDE reports dynamic instruction counts per *XED iform* — an opcode
specialised by operand kinds (§4.4.2). The catalogue below defines the
iforms the simulated applications and the synthetic generator draw from,
with uop counts, abstract port-group usage, latency and encoded size
following uops.info / Agner Fog for Skylake-class cores.

The catalogue is intentionally richer than the classic 8-category
taxonomies the paper criticises: it distinguishes e.g. ``CRC32_r64_r64``
(3 cycles, MUL port only) from ``ADD_r64_r64`` (1 cycle, any ALU port),
and models LOCK-prefixed and REP-string iforms whose cost depends on the
repeat count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.isa.ports import PortGroup
from repro.util.errors import ConfigurationError


class InstructionCategory(enum.Enum):
    """Functional clusters used in Ditto's first clustering axis (§4.4.2)."""

    DATA_MOVE = "data_move"
    ARITH_LOGIC = "arith_logic"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP = "fp"
    SIMD = "simd"
    CONTROL = "control"
    LOCK = "lock"
    REP_STRING = "rep_string"


class OperandKind(enum.Enum):
    """Operand classes used in Ditto's second clustering axis (§4.4.2)."""

    GPR = "gpr"
    XMM = "xmm"
    X87 = "x87"
    MEM = "mem"
    IMM = "imm"


@dataclass(frozen=True)
class IForm:
    """One instruction form with its microarchitectural cost model.

    ``port_uops`` maps each abstract port group to the number of uops the
    iform issues to it; ``latency`` is the dependency-chain latency in
    cycles; ``size_bytes`` is the typical encoded length (drives the
    instruction-memory footprint maths of §4.4.5).
    """

    name: str
    category: InstructionCategory
    operands: Tuple[OperandKind, ...]
    port_uops: Mapping[PortGroup, float]
    latency: float
    size_bytes: int = 4
    reads_mem: bool = False
    writes_mem: bool = False
    is_branch: bool = False
    is_rep: bool = False
    is_lock: bool = False
    #: cost (uops to STRING group) added per repeated element for REP forms
    rep_uops_per_element: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"{self.name}: negative latency")
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{self.name}: non-positive size")
        if not self.port_uops:
            raise ConfigurationError(f"{self.name}: no port usage")

    @property
    def uops(self) -> float:
        """Total uops issued by one execution of the iform."""
        return float(sum(self.port_uops.values()))

    @property
    def uses_memory(self) -> bool:
        """True when the iform reads or writes memory."""
        return self.reads_mem or self.writes_mem


def _mk(
    name: str,
    category: InstructionCategory,
    operands: Tuple[OperandKind, ...],
    ports: Dict[PortGroup, float],
    latency: float,
    **kwargs,
) -> IForm:
    return IForm(name, category, operands, ports, latency, **kwargs)


_G = OperandKind.GPR
_X = OperandKind.XMM
_M = OperandKind.MEM
_I = OperandKind.IMM
_PG = PortGroup


def _build_catalog() -> Dict[str, IForm]:
    forms: List[IForm] = [
        # --- data movement -------------------------------------------------
        _mk("MOV_r64_r64", InstructionCategory.DATA_MOVE, (_G, _G),
            {_PG.ALU: 1}, 0.0, size_bytes=3),
        _mk("MOV_r64_imm", InstructionCategory.DATA_MOVE, (_G, _I),
            {_PG.ALU: 1}, 1.0, size_bytes=5),
        _mk("MOV_r64_m64", InstructionCategory.DATA_MOVE, (_G, _M),
            {_PG.LOAD: 1}, 4.0, size_bytes=4, reads_mem=True),
        _mk("MOV_m64_r64", InstructionCategory.DATA_MOVE, (_M, _G),
            {_PG.STORE: 1, _PG.ALU: 1}, 1.0, size_bytes=4, writes_mem=True),
        _mk("MOV_r32_m32", InstructionCategory.DATA_MOVE, (_G, _M),
            {_PG.LOAD: 1}, 4.0, size_bytes=3, reads_mem=True),
        _mk("MOV_m32_r32", InstructionCategory.DATA_MOVE, (_M, _G),
            {_PG.STORE: 1, _PG.ALU: 1}, 1.0, size_bytes=3, writes_mem=True),
        _mk("MOVZX_r64_m8", InstructionCategory.DATA_MOVE, (_G, _M),
            {_PG.LOAD: 1}, 4.0, size_bytes=4, reads_mem=True),
        _mk("LEA_r64_m", InstructionCategory.DATA_MOVE, (_G, _M),
            {_PG.ALU: 1}, 1.0, size_bytes=4),
        _mk("PUSH_r64", InstructionCategory.DATA_MOVE, (_G,),
            {_PG.STORE: 1, _PG.ALU: 1}, 1.0, size_bytes=1, writes_mem=True),
        _mk("POP_r64", InstructionCategory.DATA_MOVE, (_G,),
            {_PG.LOAD: 1}, 4.0, size_bytes=1, reads_mem=True),
        _mk("XCHG_r64_r64", InstructionCategory.DATA_MOVE, (_G, _G),
            {_PG.ALU: 3}, 2.0, size_bytes=3),
        _mk("CMOVZ_r64_r64", InstructionCategory.DATA_MOVE, (_G, _G),
            {_PG.ALU: 1}, 1.0, size_bytes=4),
        # --- integer arithmetic / logic -------------------------------------
        _mk("ADD_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("ADD_r64_imm", InstructionCategory.ARITH_LOGIC, (_G, _I),
            {_PG.ALU: 1}, 1.0, size_bytes=4),
        _mk("ADD_r64_m64", InstructionCategory.ARITH_LOGIC, (_G, _M),
            {_PG.ALU: 1, _PG.LOAD: 1}, 5.0, size_bytes=4, reads_mem=True),
        _mk("ADD_m64_r64", InstructionCategory.ARITH_LOGIC, (_M, _G),
            {_PG.ALU: 1, _PG.LOAD: 1, _PG.STORE: 1}, 6.0, size_bytes=4,
            reads_mem=True, writes_mem=True),
        _mk("SUB_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("SUB_r32_m32", InstructionCategory.ARITH_LOGIC, (_G, _M),
            {_PG.ALU: 1, _PG.LOAD: 1}, 5.0, size_bytes=4, reads_mem=True),
        _mk("XOR_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.ALU: 1}, 0.0, size_bytes=3),
        _mk("AND_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("OR_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("NOT_r64", InstructionCategory.ARITH_LOGIC, (_G,),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("NEG_r64", InstructionCategory.ARITH_LOGIC, (_G,),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("INC_r64", InstructionCategory.ARITH_LOGIC, (_G,),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("DEC_r64", InstructionCategory.ARITH_LOGIC, (_G,),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("CMP_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("CMP_r64_imm", InstructionCategory.ARITH_LOGIC, (_G, _I),
            {_PG.ALU: 1}, 1.0, size_bytes=4),
        _mk("TEST_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.ALU: 1}, 1.0, size_bytes=3),
        _mk("TEST_r32_imm", InstructionCategory.ARITH_LOGIC, (_G, _I),
            {_PG.ALU: 1}, 1.0, size_bytes=6),
        _mk("SHL_r64_imm", InstructionCategory.ARITH_LOGIC, (_G, _I),
            {_PG.SHIFT: 1}, 1.0, size_bytes=4),
        _mk("SHR_r64_imm", InstructionCategory.ARITH_LOGIC, (_G, _I),
            {_PG.SHIFT: 1}, 1.0, size_bytes=4),
        _mk("ROL_r64_imm", InstructionCategory.ARITH_LOGIC, (_G, _I),
            {_PG.SHIFT: 1}, 1.0, size_bytes=4),
        _mk("BSF_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.MUL: 1}, 3.0, size_bytes=4),
        _mk("POPCNT_r64_r64", InstructionCategory.ARITH_LOGIC, (_G, _G),
            {_PG.MUL: 1}, 3.0, size_bytes=5),
        # --- integer multiply / divide / checksum ---------------------------
        _mk("IMUL_r64_r64", InstructionCategory.INT_MUL, (_G, _G),
            {_PG.MUL: 1}, 3.0, size_bytes=4),
        _mk("MUL_m64", InstructionCategory.INT_MUL, (_M,),
            {_PG.MUL: 1, _PG.LOAD: 1, _PG.ALU: 1}, 7.0, size_bytes=4,
            reads_mem=True),
        _mk("CRC32_r64_r64", InstructionCategory.INT_MUL, (_G, _G),
            {_PG.MUL: 1}, 3.0, size_bytes=5),
        _mk("DIV_r64", InstructionCategory.INT_DIV, (_G,),
            {_PG.DIV: 1, _PG.ALU: 1}, 36.0, size_bytes=3),
        _mk("IDIV_r32", InstructionCategory.INT_DIV, (_G,),
            {_PG.DIV: 1, _PG.ALU: 1}, 26.0, size_bytes=3),
        # --- scalar floating point ------------------------------------------
        _mk("ADDSD_x_x", InstructionCategory.FP, (_X, _X),
            {_PG.FP: 1}, 4.0, size_bytes=4),
        _mk("MULSD_x_x", InstructionCategory.FP, (_X, _X),
            {_PG.FP: 1}, 4.0, size_bytes=4),
        _mk("DIVSD_x_x", InstructionCategory.FP, (_X, _X),
            {_PG.FP_DIV: 1}, 14.0, size_bytes=4),
        _mk("SQRTSD_x_x", InstructionCategory.FP, (_X, _X),
            {_PG.FP_DIV: 1}, 18.0, size_bytes=4),
        _mk("CVTSI2SD_x_r64", InstructionCategory.FP, (_X, _G),
            {_PG.FP: 1, _PG.ALU: 1}, 6.0, size_bytes=5),
        _mk("COMISD_x_x", InstructionCategory.FP, (_X, _X),
            {_PG.FP: 1}, 2.0, size_bytes=4),
        _mk("ADDSD_x_m64", InstructionCategory.FP, (_X, _M),
            {_PG.FP: 1, _PG.LOAD: 1}, 8.0, size_bytes=5, reads_mem=True),
        # --- SIMD ------------------------------------------------------------
        _mk("PADDD_x_x", InstructionCategory.SIMD, (_X, _X),
            {_PG.SIMD: 1}, 1.0, size_bytes=4),
        _mk("PMULLD_x_x", InstructionCategory.SIMD, (_X, _X),
            {_PG.MUL: 2}, 10.0, size_bytes=5),
        _mk("PXOR_x_x", InstructionCategory.SIMD, (_X, _X),
            {_PG.SIMD: 1}, 0.0, size_bytes=4),
        _mk("PAND_x_x", InstructionCategory.SIMD, (_X, _X),
            {_PG.SIMD: 1}, 1.0, size_bytes=4),
        _mk("PCMPEQB_x_x", InstructionCategory.SIMD, (_X, _X),
            {_PG.SIMD: 1}, 1.0, size_bytes=4),
        _mk("PSHUFB_x_x", InstructionCategory.SIMD, (_X, _X),
            {_PG.SIMD: 1}, 1.0, size_bytes=5),
        _mk("MOVAPS_x_x", InstructionCategory.SIMD, (_X, _X),
            {_PG.SIMD: 1}, 0.0, size_bytes=3),
        _mk("MOVDQU_x_m128", InstructionCategory.SIMD, (_X, _M),
            {_PG.LOAD: 1}, 5.0, size_bytes=5, reads_mem=True),
        _mk("MOVDQU_m128_x", InstructionCategory.SIMD, (_M, _X),
            {_PG.STORE: 1, _PG.ALU: 1}, 1.0, size_bytes=5, writes_mem=True),
        _mk("PTEST_x_x", InstructionCategory.SIMD, (_X, _X),
            {_PG.SIMD: 2}, 3.0, size_bytes=5),
        # --- control flow ----------------------------------------------------
        _mk("JZ_rel", InstructionCategory.CONTROL, (_I,),
            {_PG.BRANCH: 1}, 1.0, size_bytes=2, is_branch=True),
        _mk("JNZ_rel", InstructionCategory.CONTROL, (_I,),
            {_PG.BRANCH: 1}, 1.0, size_bytes=2, is_branch=True),
        _mk("JL_rel", InstructionCategory.CONTROL, (_I,),
            {_PG.BRANCH: 1}, 1.0, size_bytes=2, is_branch=True),
        _mk("JMP_rel", InstructionCategory.CONTROL, (_I,),
            {_PG.BRANCH: 1}, 1.0, size_bytes=2, is_branch=True),
        _mk("CALL_rel", InstructionCategory.CONTROL, (_I,),
            {_PG.BRANCH: 1, _PG.STORE: 1, _PG.ALU: 1}, 2.0, size_bytes=5,
            is_branch=True, writes_mem=True),
        _mk("RET", InstructionCategory.CONTROL, (),
            {_PG.BRANCH: 1, _PG.LOAD: 1}, 2.0, size_bytes=1,
            is_branch=True, reads_mem=True),
        _mk("NOP", InstructionCategory.CONTROL, (),
            {_PG.ALU: 1}, 0.0, size_bytes=1),
        # --- lock-prefixed ----------------------------------------------------
        _mk("LOCK_ADD_m64_r64", InstructionCategory.LOCK, (_M, _G),
            {_PG.LOCK: 1, _PG.LOAD: 1, _PG.STORE: 1}, 18.0, size_bytes=5,
            reads_mem=True, writes_mem=True, is_lock=True),
        _mk("LOCK_CMPXCHG_m64_r64", InstructionCategory.LOCK, (_M, _G),
            {_PG.LOCK: 1, _PG.LOAD: 1, _PG.STORE: 1, _PG.ALU: 2}, 19.0,
            size_bytes=6, reads_mem=True, writes_mem=True, is_lock=True),
        _mk("LOCK_XADD_m64_r64", InstructionCategory.LOCK, (_M, _G),
            {_PG.LOCK: 1, _PG.LOAD: 1, _PG.STORE: 1, _PG.ALU: 1}, 19.0,
            size_bytes=6, reads_mem=True, writes_mem=True, is_lock=True),
        _mk("XCHG_m64_r64", InstructionCategory.LOCK, (_M, _G),
            {_PG.LOCK: 1, _PG.LOAD: 1, _PG.STORE: 1}, 18.0, size_bytes=4,
            reads_mem=True, writes_mem=True, is_lock=True),
        # --- REP string --------------------------------------------------------
        _mk("REP_MOVSB", InstructionCategory.REP_STRING, (_M, _M),
            {_PG.STRING: 4}, 25.0, size_bytes=2, reads_mem=True,
            writes_mem=True, is_rep=True, rep_uops_per_element=0.035),
        _mk("REP_STOSB", InstructionCategory.REP_STRING, (_M,),
            {_PG.STRING: 3}, 20.0, size_bytes=2, writes_mem=True,
            is_rep=True, rep_uops_per_element=0.03),
        _mk("REPNZ_SCASB", InstructionCategory.REP_STRING, (_M,),
            {_PG.STRING: 3}, 20.0, size_bytes=2, reads_mem=True,
            is_rep=True, rep_uops_per_element=0.5),
    ]
    by_name = {form.name: form for form in forms}
    if len(by_name) != len(forms):
        raise ConfigurationError("duplicate iform names in catalogue")
    return by_name


_CATALOG: Dict[str, IForm] = _build_catalog()


def catalog() -> Dict[str, IForm]:
    """Return the full iform catalogue keyed by name (a copy)."""
    return dict(_CATALOG)


def iform(name: str) -> IForm:
    """Look up a single iform by name."""
    form = _CATALOG.get(name)
    if form is None:
        raise ConfigurationError(f"unknown iform {name!r}")
    return form


def iform_names(category: InstructionCategory | None = None) -> List[str]:
    """All iform names, optionally filtered to one category."""
    if category is None:
        return sorted(_CATALOG)
    return sorted(
        name for name, form in _CATALOG.items() if form.category is category
    )


def feature_vector(form: IForm) -> List[float]:
    """Numeric features for hierarchical clustering of iforms (§4.4.2).

    Axes mirror the paper: functionality (category one-hot), operand kinds
    (counts per class), and ALU usage (uops per port group + latency).
    """
    features: List[float] = []
    for category in InstructionCategory:
        features.append(1.0 if form.category is category else 0.0)
    for kind in OperandKind:
        features.append(float(sum(1 for op in form.operands if op is kind)))
    for group in PortGroup:
        features.append(float(form.port_uops.get(group, 0.0)))
    features.append(form.latency / 10.0)
    return features
