"""Clone-fidelity validation: acceptance gates, artifact integrity,
self-healing remediation.

The paper's evaluation (§6) argues a Ditto clone is *interchangeable*
with its original for systems studies. This package makes that claim
operational:

- :mod:`repro.validation.gate` — :class:`FidelityGate` replays clone
  and original under matched seeds and enforces per-metric tolerances,
  producing a typed :class:`FidelityReport`;
- :mod:`repro.validation.integrity` — digest-stamped, atomically
  written artifact envelopes with quarantine-on-corruption semantics
  for checkpoints, profiles and bundles;
- :mod:`repro.validation.remediate` — the deterministic escalation
  ladder (:class:`RemediationPolicy`) the cloner climbs when a gate
  fails or a simulation watchdog trips.

``python -m repro.validation bundle.json`` validates a saved clone
bundle from the command line and exits nonzero on gate failure.
"""

from repro.validation.gate import (
    DEFAULT_TOLERANCES,
    FidelityGate,
    FidelityReport,
    MetricCheck,
    MetricTolerance,
)
from repro.validation.integrity import (
    load_object,
    quarantine,
    read_envelope,
    save_object,
    stamp_json,
    verify_json,
    write_envelope,
)
from repro.validation.remediate import RemediationPolicy, RemediationStep

__all__ = [
    "DEFAULT_TOLERANCES",
    "FidelityGate",
    "FidelityReport",
    "MetricCheck",
    "MetricTolerance",
    "RemediationPolicy",
    "RemediationStep",
    "load_object",
    "quarantine",
    "read_envelope",
    "save_object",
    "stamp_json",
    "verify_json",
    "write_envelope",
]
