"""Escalating remediation ladder for failed gates and tripped watchdogs.

When a clone fails its :class:`~repro.validation.gate.FidelityGate` (or
a tier's simulation trips a watchdog budget), the cloner does not just
give up: it climbs a deterministic ladder of increasingly conservative
retries. Each rung is a :class:`RemediationStep` that perturbs only
*derived* state — a re-seed drawn from the named-stream hierarchy, a
widened fine-tune budget, a degraded (more conservative) tier executor
— so remediation never compromises reproducibility: the same failure
under the same root seed climbs the same ladder.

The policy is pure planning; the cloner owns execution and records every
step it took (and why) on the :class:`~repro.core.cloner.CloneReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.util.errors import ConfigurationError
from repro.util.rng import derive_seed

__all__ = ["RemediationPolicy", "RemediationStep"]

#: conservative-executor ladder: each rung trades parallel throughput
#: for isolation (process pools can be poisoned by a crashing tier;
#: serial execution cannot)
_EXECUTOR_LADDER: Tuple[str, ...] = ("process", "thread", "serial")


@dataclass(frozen=True)
class RemediationStep:
    """One planned retry: what changes versus the failed attempt."""

    #: 1-based retry index (attempt 0 is the original, unremediated run)
    attempt: int
    #: what triggered this rung: ``"gate_failure"`` or ``"sim_budget"``
    reason: str
    #: re-derived root seed for the retry (equal to the base seed when
    #: the policy disables re-seeding)
    seed: int
    #: widened fine-tune iteration budget
    max_tune_iterations: int
    #: executor mode for the retry (possibly degraded)
    executor: str

    def to_dict(self) -> dict:
        """JSON-safe form for reports and telemetry payloads."""
        return {
            "attempt": self.attempt, "reason": self.reason,
            "seed": self.seed,
            "max_tune_iterations": self.max_tune_iterations,
            "executor": self.executor,
        }


@dataclass(frozen=True)
class RemediationPolicy:
    """How far, and in what direction, to escalate on failure.

    ``max_attempts`` counts *retries* after the original run;
    ``widen_tune_factor`` multiplies the fine-tune budget per rung
    (compounding); ``reseed``/``degrade_executor`` gate the other two
    escalation axes. Defaults climb every axis at once — re-seed,
    widen, degrade — because the three address disjoint failure causes
    (unlucky sampling, under-converged tuning, executor-level flakiness)
    and a retry is expensive enough to make each one count.
    """

    max_attempts: int = 2
    widen_tune_factor: float = 1.5
    reseed: bool = True
    degrade_executor: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ConfigurationError("max_attempts must be >= 0")
        if self.widen_tune_factor < 1.0:
            raise ConfigurationError(
                f"widen_tune_factor must be >= 1.0, "
                f"got {self.widen_tune_factor!r}")

    def plan(self, attempt: int, *, reason: str, base_seed: int,
             base_tune_iterations: int,
             base_executor: str) -> Optional[RemediationStep]:
        """The rung for retry ``attempt`` (1-based); None when exhausted."""
        if attempt < 1:
            raise ConfigurationError("remediation attempts are 1-based")
        if attempt > self.max_attempts:
            return None
        seed = base_seed
        if self.reseed:
            # Named-stream derivation keeps the retry deterministic and
            # collision-free against every other consumer of the seed.
            seed = derive_seed(base_seed, "remediation", str(attempt))
        iterations = max(
            base_tune_iterations + 1,
            int(round(base_tune_iterations
                      * self.widen_tune_factor ** attempt)))
        executor = base_executor
        if self.degrade_executor:
            executor = self._degrade(base_executor, attempt)
        return RemediationStep(attempt=attempt, reason=reason, seed=seed,
                               max_tune_iterations=iterations,
                               executor=executor)

    @staticmethod
    def _degrade(executor: str, rungs: int) -> str:
        """Step ``rungs`` rungs down the conservative-executor ladder."""
        if executor in ("auto", "process"):
            start = 0
        elif executor in _EXECUTOR_LADDER:
            start = _EXECUTOR_LADDER.index(executor)
        else:
            return executor
        index = min(start + rungs, len(_EXECUTOR_LADDER) - 1)
        return _EXECUTOR_LADDER[index]
