"""Clone-fidelity acceptance gates (the paper's §6 claim, enforced).

Ditto's central claim is that a clone *stays* representative of the
original — same IPC, same miss rates, same tail latency — across
platforms and loads. A :class:`FidelityGate` turns that claim into a
checked contract: replay original and clone under matched seeds, take
per-metric relative errors, compare each against an explicit tolerance
and produce a typed :class:`FidelityReport` of pass/fail per metric.

Default tolerances come from the paper's reported clone errors (§6.2.1:
average error under 5%, individual metrics up to ~10%, cross-platform
tails somewhat wider); each carries an absolute slack floor so metrics
that are legitimately near zero (miss rates on cache-resident tiers,
error rates on clean runs) do not fail on meaningless relative error.

Two comparison modes:

- :meth:`FidelityGate.validate` — run both deployments under the same
  :class:`~repro.runtime.experiment.ExperimentConfig` (matched seeds)
  and compare the full metric set, tail latency and error rate
  included;
- :meth:`FidelityGate.compare_counters` — compare a measured
  :class:`~repro.runtime.metrics.ServiceMetrics` against a profiled
  target (what the ``python -m repro.validation`` CLI does to a saved
  bundle, where only the original's counters are available).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.runtime.experiment import ExperimentConfig, run_experiment
from repro.runtime.metrics import RunResult, ServiceMetrics
from repro.telemetry.context import current_session
from repro.telemetry.spans import span
from repro.util.errors import ConfigurationError

__all__ = [
    "DEFAULT_TOLERANCES",
    "FidelityGate",
    "FidelityReport",
    "MetricCheck",
    "MetricTolerance",
]


@dataclass(frozen=True)
class MetricTolerance:
    """Acceptance bound for one metric.

    A check passes when the absolute difference is within ``absolute``
    *or* the relative error is within ``relative`` — the absolute floor
    keeps near-zero metrics (a 0.2% miss rate, a 0-vs-0.1% error rate)
    from failing on huge-but-meaningless relative error.
    """

    metric: str
    relative: float
    absolute: float = 0.0

    def __post_init__(self) -> None:
        if self.relative < 0 or self.absolute < 0:
            raise ConfigurationError(
                f"tolerances must be non-negative, got {self!r}")


#: default per-metric tolerances (paper §6.2.1 error envelope, with
#: cross-platform headroom on the cache tail and latency quantiles)
DEFAULT_TOLERANCES: Dict[str, MetricTolerance] = {
    tolerance.metric: tolerance
    for tolerance in (
        MetricTolerance("ipc", relative=0.15),
        MetricTolerance("l1i", relative=0.25, absolute=0.02),
        MetricTolerance("l1d", relative=0.25, absolute=0.02),
        MetricTolerance("l2", relative=0.35, absolute=0.05),
        MetricTolerance("llc", relative=0.35, absolute=0.05),
        MetricTolerance("branch_mpki", relative=0.35, absolute=1.0),
        MetricTolerance("branch", relative=0.35, absolute=0.01),
        MetricTolerance("p50_latency", relative=0.35, absolute=50e-6),
        MetricTolerance("p99_latency", relative=0.50, absolute=200e-6),
        MetricTolerance("error_rate", relative=0.0, absolute=0.02),
    )
}

#: per-service hardware metrics checked in run-vs-run mode
RUN_METRICS: Tuple[str, ...] = ("ipc", "l1i", "l1d", "l2", "llc",
                                "branch_mpki")
#: per-service metrics checked in counters mode (bundle validation);
#: branch misprediction *rate* replaces MPKI because profiled target
#: counters reconstruct branch density, not the real branch count
COUNTER_METRICS: Tuple[str, ...] = ("ipc", "l1i", "l1d", "l2", "llc",
                                    "branch")


def _metric_value(metrics: ServiceMetrics, name: str) -> float:
    if name == "branch_mpki":
        return metrics.mpki(metrics.timing.branch_mispredictions)
    return metrics.metric(name)


@dataclass
class MetricCheck:
    """One metric's comparison: values, error, bound, verdict."""

    metric: str
    #: tier the metric belongs to; ``""`` for deployment-level checks
    service: str
    original: float
    clone: float
    #: relative error (inf when the original is 0 and the clone is not)
    error: float
    tolerance: MetricTolerance
    passed: bool

    def to_dict(self) -> dict:
        """JSON-safe form (the CI artifact format)."""
        return {
            "metric": self.metric, "service": self.service,
            "original": self.original, "clone": self.clone,
            "error": (self.error if math.isfinite(self.error)
                      else "inf"),
            "relative_tolerance": self.tolerance.relative,
            "absolute_tolerance": self.tolerance.absolute,
            "passed": self.passed,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "MetricCheck":
        """Inverse of :meth:`to_dict` (fleet artifacts round-trip)."""
        error = doc["error"]
        return cls(
            metric=doc["metric"], service=doc.get("service", ""),
            original=float(doc["original"]), clone=float(doc["clone"]),
            error=(math.inf if error == "inf" else float(error)),
            tolerance=MetricTolerance(
                doc["metric"],
                relative=float(doc.get("relative_tolerance", 0.0)),
                absolute=float(doc.get("absolute_tolerance", 0.0))),
            passed=bool(doc["passed"]),
        )


@dataclass
class FidelityReport:
    """Typed pass/fail verdict of one gate evaluation."""

    checks: List[MetricCheck] = field(default_factory=list)
    label: str = ""
    platform: str = ""
    seed: int = 0
    #: comparison mode: ``"runs"`` (matched replay) or ``"counters"``
    mode: str = "runs"

    @property
    def passed(self) -> bool:
        """True when every metric check passed."""
        return all(check.passed for check in self.checks)

    def failures(self) -> List[MetricCheck]:
        """The checks that failed, worst relative error first."""
        failed = [check for check in self.checks if not check.passed]
        return sorted(failed, key=lambda c: -c.error)

    @property
    def mean_error(self) -> float:
        """Mean finite relative error across all checks."""
        finite = [c.error for c in self.checks if math.isfinite(c.error)]
        if not finite:
            return math.inf
        return sum(finite) / len(finite)

    def to_dict(self) -> dict:
        """JSON-safe form, stable key order (the CI artifact format)."""
        return {
            "format": "ditto-fidelity-report/1",
            "label": self.label,
            "platform": self.platform,
            "seed": self.seed,
            "mode": self.mode,
            "passed": self.passed,
            "mean_error": (self.mean_error
                           if math.isfinite(self.mean_error) else "inf"),
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FidelityReport":
        """Rebuild a report from :meth:`to_dict` output.

        The serialization hook behind the fleet's fidelity artifacts:
        ``python -m repro.fleet show``/``drift`` and the telemetry
        report CLI reload persisted reports through here, so they can
        reuse :meth:`summary`/:meth:`failures` instead of re-implementing
        the table over raw JSON.
        """
        return cls(
            checks=[MetricCheck.from_dict(entry)
                    for entry in doc.get("checks", [])],
            label=doc.get("label", ""),
            platform=doc.get("platform", ""),
            seed=int(doc.get("seed", 0)),
            mode=doc.get("mode", "runs"),
        )

    def summary(self) -> str:
        """Human-readable per-metric table."""
        lines = [
            f"fidelity gate [{self.label or 'clone'}] "
            f"platform={self.platform or '?'} mode={self.mode} "
            f"→ {'PASS' if self.passed else 'FAIL'}",
            f"{'metric':<14} {'service':<16} {'original':>12} "
            f"{'clone':>12} {'error':>8}  verdict",
        ]
        for check in self.checks:
            error = (f"{check.error:7.1%}" if math.isfinite(check.error)
                     else "    inf")
            lines.append(
                f"{check.metric:<14} {check.service or '(run)':<16} "
                f"{check.original:>12.5g} {check.clone:>12.5g} "
                f"{error:>8}  {'ok' if check.passed else 'FAIL'}")
        return "\n".join(lines)


def _relative_error(original: float, clone: float) -> float:
    if original == 0.0:
        return 0.0 if clone == 0.0 else math.inf
    return abs(clone - original) / abs(original)


class FidelityGate:
    """Replays original vs clone and enforces per-metric tolerances.

    ``tolerances`` overrides/extends :data:`DEFAULT_TOLERANCES` (pass a
    mapping of metric name to :class:`MetricTolerance`, or to a float
    which is taken as the relative bound). ``metrics`` restricts which
    per-service hardware metrics are checked; ``latency_quantiles``
    picks the latency percentiles compared at deployment level.
    """

    def __init__(
        self,
        tolerances: Optional[Dict[str, object]] = None,
        *,
        metrics: Tuple[str, ...] = RUN_METRICS,
        latency_quantiles: Tuple[float, ...] = (0.5, 0.99),
        check_latency: bool = True,
        check_error_rate: bool = True,
    ) -> None:
        self.tolerances: Dict[str, MetricTolerance] = \
            dict(DEFAULT_TOLERANCES)
        for name, value in (tolerances or {}).items():
            if isinstance(value, MetricTolerance):
                self.tolerances[name] = value
            elif isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                base = self.tolerances.get(
                    name, MetricTolerance(name, relative=0.0))
                self.tolerances[name] = replace(
                    base, metric=name, relative=float(value))
            else:
                raise ConfigurationError(
                    f"tolerance for {name!r} must be a MetricTolerance "
                    f"or a number, got {value!r}")
        unknown = [m for m in metrics if m not in self.tolerances]
        if unknown:
            raise ConfigurationError(
                f"no tolerance defined for metrics {unknown}")
        self.metrics = tuple(metrics)
        for quantile in latency_quantiles:
            if not 0.0 < quantile < 1.0:
                raise ConfigurationError(
                    f"latency quantiles must be in (0, 1), "
                    f"got {quantile!r}")
        self.latency_quantiles = tuple(latency_quantiles)
        self.check_latency = check_latency
        self.check_error_rate = check_error_rate

    # ------------------------------------------------------------------ #
    # comparison primitives
    # ------------------------------------------------------------------ #
    def _check(self, metric: str, service: str, original: float,
               clone: float) -> MetricCheck:
        tolerance = self.tolerances[metric]
        error = _relative_error(original, clone)
        passed = (abs(clone - original) <= tolerance.absolute
                  or (tolerance.relative > 0.0
                      and error <= tolerance.relative))
        return MetricCheck(metric=metric, service=service,
                           original=original, clone=clone, error=error,
                           tolerance=tolerance, passed=passed)

    def _quantile_metric(self, quantile: float) -> str:
        name = f"p{quantile * 100:g}_latency"
        return name if name in self.tolerances else "p99_latency"

    def compare_runs(self, original: RunResult, clone: RunResult, *,
                     services: Optional[Iterable[str]] = None,
                     label: str = "", platform: str = "",
                     seed: int = 0) -> FidelityReport:
        """Gate a clone's :class:`RunResult` against the original's."""
        report = FidelityReport(label=label, platform=platform,
                                seed=seed, mode="runs")
        names = sorted(services if services is not None
                       else original.services)
        for name in names:
            target = original.service(name)
            measured = clone.service(name)
            for metric in self.metrics:
                report.checks.append(self._check(
                    metric, name,
                    _metric_value(target, metric),
                    _metric_value(measured, metric)))
        if self.check_latency and original.latency.samples \
                and clone.latency.samples:
            for quantile in self.latency_quantiles:
                report.checks.append(self._check(
                    self._quantile_metric(quantile), "",
                    original.latency.percentile(quantile),
                    clone.latency.percentile(quantile)))
        if self.check_error_rate:
            report.checks.append(self._check(
                "error_rate", "", original.error_rate, clone.error_rate))
        self._record(report)
        return report

    def compare_counters(self, service: str, target: ServiceMetrics,
                         measured: ServiceMetrics, *, label: str = "",
                         platform: str = "",
                         seed: int = 0) -> FidelityReport:
        """Gate measured counters against a profiled target's.

        The bundle-validation mode: targets come from the shareable
        bundle's ``target_counters``, so only hardware metrics are
        comparable (no latency distribution travels in a bundle).
        """
        report = FidelityReport(label=label or service,
                                platform=platform, seed=seed,
                                mode="counters")
        for metric in COUNTER_METRICS:
            report.checks.append(self._check(
                metric, service,
                _metric_value(target, metric),
                _metric_value(measured, metric)))
        self._record(report)
        return report

    # ------------------------------------------------------------------ #
    # end-to-end validation
    # ------------------------------------------------------------------ #
    def validate(self, original, clone, load,
                 config: ExperimentConfig, *,
                 label: str = "") -> FidelityReport:
        """Replay both deployments under matched seeds and gate them.

        ``original`` and ``clone`` are
        :class:`~repro.app.service.Deployment` objects; both runs use
        ``config`` exactly as given (same seed — the comparison is
        like-for-like by construction). Tier coverage is the
        intersection-checked clone service set: a clone must expose the
        same services as the original to be gated at all.
        """
        if set(original.services) != set(clone.services):
            raise ConfigurationError(
                f"clone tiers {sorted(clone.services)} do not match "
                f"original tiers {sorted(original.services)}")
        with span("fidelity_gate", category="validation",
                  label=label or original.entry_service,
                  tiers=len(original.services)):
            baseline = run_experiment(original, load, config)
            replayed = run_experiment(clone, load, config)
            return self.compare_runs(
                baseline, replayed, label=label or original.entry_service,
                platform=config.platform.name, seed=config.seed)

    def _record(self, report: FidelityReport) -> None:
        session = current_session()
        if session is None:
            return
        session.registry.counter(
            "ditto_fidelity_gates_total",
            "fidelity-gate evaluations finished", ("passed",),
        ).inc(1, passed=str(report.passed).lower())
        failed = session.registry.counter(
            "ditto_fidelity_metric_failures_total",
            "individual metric checks that failed a gate", ("metric",))
        for check in report.failures():
            failed.inc(1, metric=check.metric)
