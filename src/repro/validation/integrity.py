"""Versioned, digest-stamped artifact persistence with quarantine.

Long clone runs survive on what they persist — tier checkpoints,
profiling sessions, shareable bundles. A truncated or bit-flipped file
must never be *silently* resumed from: a wrong ``TierOutcome`` poisons
the assembled clone with no error anywhere. This module provides one
envelope format for every binary artifact in the repo:

``DITTOART`` magic | format version | schema name | schema version |
payload length | payload | SHA-256 digest trailer over everything
before it.

Reads verify the trailer before a single payload byte is interpreted.
A file that fails — truncated, flipped, or not an envelope at all when
one was expected — is **quarantined**: atomically renamed to
``<name>.quarantined`` next to the original so the evidence survives
for inspection while the bad path can never be loaded again, then
reported via an :class:`~repro.util.errors.ArtifactIntegrityError`
(and an ambient-telemetry counter when a session is active). Writes
are atomic (temp file + ``os.replace``), so a crash mid-write leaves
either the old artifact or none — never a half-written one.

JSON artifacts (clone bundles) use the sibling
:func:`stamp_json`/:func:`verify_json` pair: a canonical-JSON SHA-256
digest embedded in the document itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
from typing import Any, Optional, Tuple

from repro.telemetry.context import current_session
from repro.util.errors import ArtifactIntegrityError

__all__ = [
    "MAGIC",
    "load_object",
    "quarantine",
    "quarantine_and_report",
    "read_envelope",
    "save_object",
    "stamp_json",
    "verify_json",
    "write_envelope",
]

#: file magic for digest-stamped binary artifacts
MAGIC = b"DITTOART"
#: envelope (container) format version — bump on layout changes
ENVELOPE_VERSION = 1
#: fixed-size header: magic, envelope version, schema-name length,
#: schema version, payload length
_HEADER = struct.Struct(">8sHHIQ")
_DIGEST_BYTES = 32


def _count_quarantine(schema: str, reason: str) -> None:
    """Report one quarantined artifact into the ambient telemetry."""
    session = current_session()
    if session is None:
        return
    session.registry.counter(
        "ditto_artifact_quarantines_total",
        "persisted artifacts that failed integrity checks and were "
        "quarantined", ("schema", "reason"),
    ).inc(1, schema=schema, reason=reason)


def quarantine(path: str) -> str:
    """Move a bad artifact aside (atomically); returns the new path.

    The quarantined copy keeps the original name plus a
    ``.quarantined`` suffix; an existing quarantine file at that name
    is overwritten (the newest corruption wins — they are evidence, not
    archives). Returns ``""`` when the move itself fails (e.g. the file
    vanished), so callers can still raise a useful error.
    """
    target = f"{path}.quarantined"
    try:
        os.replace(path, target)
    except OSError:
        return ""
    return target


def quarantine_and_report(path: str, *, schema: str, reason: str) -> str:
    """Quarantine ``path`` and count it in telemetry; returns new path.

    For callers with their own on-disk formats (JSON bundles) that
    detect corruption themselves but want the same quarantine +
    accounting semantics as envelope reads.
    """
    moved = quarantine(path)
    _count_quarantine(schema, reason)
    return moved


def write_envelope(path: str, payload: bytes, *, schema: str,
                   version: int = 1) -> str:
    """Atomically write ``payload`` wrapped in a digest-stamped envelope."""
    name = schema.encode("utf-8")
    header = _HEADER.pack(MAGIC, ENVELOPE_VERSION, len(name), version,
                          len(payload))
    body = header + name + payload
    digest = hashlib.sha256(body).digest()
    scratch = f"{path}.tmp-{os.getpid()}"
    with open(scratch, "wb") as handle:
        handle.write(body)
        handle.write(digest)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(scratch, path)
    return path


def read_envelope(path: str, *, schema: str,
                  max_version: Optional[int] = None,
                  quarantine_bad: bool = True) -> Tuple[bytes, int]:
    """Read and verify an envelope; returns ``(payload, schema_version)``.

    Raises :class:`ArtifactIntegrityError` on any defect. Files that
    fail the digest or are structurally broken are quarantined first
    (unless ``quarantine_bad`` is false); the error's
    ``quarantined_to`` carries where the evidence went. A missing file
    raises ``FileNotFoundError`` as usual — absence is a cache miss,
    not corruption.
    """
    with open(path, "rb") as handle:
        blob = handle.read()

    def _bad(reason: str, detail: str) -> ArtifactIntegrityError:
        moved = quarantine(path) if quarantine_bad else ""
        _count_quarantine(schema, reason)
        suffix = f"; quarantined to {moved}" if moved else ""
        return ArtifactIntegrityError(
            f"{path}: {detail}{suffix}", path=path, reason=reason,
            quarantined_to=moved)

    if len(blob) < _HEADER.size or not blob.startswith(MAGIC):
        raise _bad("bad_header", "not a digest-stamped artifact "
                   f"(expected schema {schema!r})")
    magic, env_version, name_len, version, payload_len = \
        _HEADER.unpack_from(blob)
    if env_version != ENVELOPE_VERSION:
        raise _bad("bad_header",
                   f"unsupported envelope version {env_version}")
    expected = _HEADER.size + name_len + payload_len + _DIGEST_BYTES
    if len(blob) < expected:
        raise _bad("truncated",
                   f"truncated artifact: {len(blob)} bytes on disk, "
                   f"{expected} expected")
    if len(blob) > expected:
        raise _bad("truncated",
                   f"trailing garbage: {len(blob)} bytes on disk, "
                   f"{expected} expected")
    body = blob[:_HEADER.size + name_len + payload_len]
    trailer = blob[-_DIGEST_BYTES:]
    if hashlib.sha256(body).digest() != trailer:
        raise _bad("digest_mismatch",
                   "digest trailer does not match content "
                   f"(schema {schema!r})")
    found = blob[_HEADER.size:_HEADER.size + name_len].decode(
        "utf-8", errors="replace")
    if found != schema:
        raise _bad("bad_header",
                   f"schema mismatch: file holds {found!r}, "
                   f"expected {schema!r}")
    if max_version is not None and version > max_version:
        # A future-versioned artifact is intact, just unreadable here —
        # leave it in place for the newer reader it was written for.
        raise ArtifactIntegrityError(
            f"{path}: schema {schema!r} version {version} is newer than "
            f"supported ({max_version})", path=path, reason="version")
    return blob[_HEADER.size + name_len:
                _HEADER.size + name_len + payload_len], version


def save_object(path: str, obj: Any, *, schema: str,
                version: int = 1) -> str:
    """Pickle ``obj`` into a digest-stamped envelope at ``path``."""
    return write_envelope(path, pickle.dumps(obj), schema=schema,
                          version=version)


def load_object(path: str, *, schema: str,
                max_version: Optional[int] = None,
                quarantine_bad: bool = True) -> Any:
    """Load a pickled envelope written by :func:`save_object`.

    The digest is verified *before* unpickling, so a corrupted file is
    quarantined instead of fed to the unpickler; an undecodable payload
    behind a valid digest (a foreign writer) is quarantined too.
    """
    payload, _ = read_envelope(path, schema=schema,
                               max_version=max_version,
                               quarantine_bad=quarantine_bad)
    try:
        return pickle.loads(payload)
    except Exception as error:  # noqa: BLE001 — any unpickle failure
        moved = quarantine(path) if quarantine_bad else ""
        _count_quarantine(schema, "undecodable")
        suffix = f"; quarantined to {moved}" if moved else ""
        raise ArtifactIntegrityError(
            f"{path}: payload passed its digest but failed to decode "
            f"({error}){suffix}", path=path, reason="undecodable",
            quarantined_to=moved) from error


# --------------------------------------------------------------------- #
# JSON documents (clone bundles)
# --------------------------------------------------------------------- #
def _canonical_digest(document: dict) -> str:
    """SHA-256 over the canonical JSON form, integrity field excluded."""
    stripped = {k: v for k, v in document.items() if k != "integrity"}
    canonical = json.dumps(stripped, sort_keys=True,
                           separators=(",", ":"), ensure_ascii=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def stamp_json(document: dict) -> dict:
    """Embed an integrity stanza into a JSON-safe document (in place)."""
    document["integrity"] = {
        "algorithm": "sha256-canonical-json",
        "digest": _canonical_digest(document),
    }
    return document


def verify_json(document: dict, *, path: str = "") -> None:
    """Check a stamped document; raises :class:`ArtifactIntegrityError`.

    Documents without an integrity stanza pass (pre-stamping writers);
    a present-but-wrong stanza is corruption.
    """
    stanza = document.get("integrity")
    if stanza is None:
        return
    if stanza.get("algorithm") != "sha256-canonical-json":
        raise ArtifactIntegrityError(
            f"{path or 'document'}: unknown integrity algorithm "
            f"{stanza.get('algorithm')!r}", path=path, reason="bad_header")
    if stanza.get("digest") != _canonical_digest(document):
        raise ArtifactIntegrityError(
            f"{path or 'document'}: embedded digest does not match "
            f"content", path=path, reason="digest_mismatch")
