"""Validate a saved clone bundle from the command line.

::

    python -m repro.validation bundle.json [--platform A] [--seed 17]
        [--duration 0.5] [--json report.json] [--tolerance ipc=0.1 ...]

Loads the bundle (integrity-checked: a corrupted file is quarantined
and the run fails), regenerates each tier with its stored tuned knobs,
runs every tier stand-alone at its profiled load on the chosen
platform, and gates the measured counters against the bundle's
``target_counters`` through a :class:`~repro.validation.gate
.FidelityGate`. Prints one per-metric table per tier and exits **0**
only when every tier passes — wire it straight into CI.

``--json`` additionally writes the full machine-readable report (one
:meth:`FidelityReport.to_dict` per tier plus a roll-up verdict).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.app.service import Deployment, ServiceSpec
from repro.core.body_gen import GeneratorConfig
from repro.core.bundle import bundle_tuned_knobs, load_bundle
from repro.core.finetune import _strip_rpcs
from repro.core.skeleton_gen import generate_skeleton
from repro.core.body_gen import generate_program
from repro.hw.platform import _PLATFORMS, platform_by_name
from repro.loadgen.generator import LoadSpec
from repro.runtime.experiment import ExperimentConfig, run_experiment
from repro.util.errors import ArtifactIntegrityError, ReproError
from repro.validation.gate import FidelityGate, FidelityReport, MetricTolerance


def _parse_tolerances(entries: List[str]) -> Dict[str, float]:
    tolerances: Dict[str, float] = {}
    for entry in entries:
        name, _, value = entry.partition("=")
        if not name or not value:
            raise SystemExit(
                f"--tolerance takes metric=value, got {entry!r}")
        try:
            tolerances[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--tolerance value for {name!r} must be a number, "
                f"got {value!r}") from None
    return tolerances


def _tier_load(features) -> LoadSpec:
    """The load discipline the tier was profiled (and tuned) under."""
    if features.observed_closed_loop:
        return LoadSpec.closed_loop(max(1, features.observed_connections))
    return LoadSpec.open_loop(max(100.0, features.observed_qps))


def validate_bundle(
    path: str,
    *,
    platform_name: str = "A",
    seed: int = 17,
    duration_s: float = 1.0,
    tolerances: Optional[Dict[str, float]] = None,
    gate: Optional[FidelityGate] = None,
) -> List[FidelityReport]:
    """Gate every tier of a saved bundle; returns one report per tier."""
    features_by_service, _entry, _placements = load_bundle(path)
    knobs_by_tier = bundle_tuned_knobs(path)
    if gate is None:
        gate = FidelityGate(dict(tolerances or {}))
    platform = platform_by_name(platform_name)
    reports: List[FidelityReport] = []
    for name in sorted(features_by_service):
        features = features_by_service[name]
        if features.target_counters is None:
            # Nothing to gate against: the bundle author stripped the
            # counters. Record an empty (vacuously passing) report so
            # the tier still shows up in the output.
            reports.append(FidelityReport(label=name,
                                          platform=platform_name,
                                          seed=seed, mode="counters"))
            continue
        config = GeneratorConfig()
        if name in knobs_by_tier:
            config = GeneratorConfig(knobs=knobs_by_tier[name])
        program, files = generate_program(features, config)
        spec = ServiceSpec(
            name=name,
            skeleton=generate_skeleton(features.threads, features.network),
            program=_strip_rpcs(program),
            request_mix=dict(features.handler_mix) or None,
            files=files,
        )
        result = run_experiment(
            Deployment.single(spec), _tier_load(features),
            ExperimentConfig(platform=platform, duration_s=duration_s,
                             seed=seed))
        reports.append(gate.compare_counters(
            name, features.target_counters, result.service(name),
            platform=platform_name, seed=seed))
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation",
        description="Gate a saved clone bundle against its profiled "
                    "target counters.")
    parser.add_argument("bundle", help="path to a ditto-clone-bundle JSON")
    parser.add_argument("--platform", default="A",
                        choices=sorted(_PLATFORMS),
                        help="platform model to replay on (default: A)")
    parser.add_argument("--seed", type=int, default=17,
                        help="replay seed (default: 17)")
    parser.add_argument("--duration", type=float, default=1.0,
                        help="simulated seconds per tier (default: 1.0)")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="METRIC=REL",
                        help="override a relative tolerance, e.g. ipc=0.1 "
                             "(repeatable)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also write the machine-readable report here")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-tier tables")
    options = parser.parse_args(argv)

    try:
        reports = validate_bundle(
            options.bundle,
            platform_name=options.platform,
            seed=options.seed,
            duration_s=options.duration,
            tolerances=_parse_tolerances(options.tolerance),
        )
    except ArtifactIntegrityError as error:
        print(f"bundle integrity failure: {error}", file=sys.stderr)
        return 2
    except (ReproError, OSError) as error:
        print(f"validation failed to run: {error}", file=sys.stderr)
        return 2

    passed = all(report.passed for report in reports)
    if not options.quiet:
        for report in reports:
            print(report.summary())
            print()
    if options.json_path:
        document = {
            "format": "ditto-validation-report/1",
            "bundle": options.bundle,
            "platform": options.platform,
            "seed": options.seed,
            "passed": passed,
            "tiers": [report.to_dict() for report in reports],
        }
        with open(options.json_path, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
    print(f"{len(reports)} tier(s) gated on platform {options.platform}: "
          f"{'PASS' if passed else 'FAIL'}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
