"""Stable structural hashing of specification objects.

The experiment memoization layer keys cached runs by *what was asked
for*: the deployment spec, the load point, and the experiment config.
``stable_digest`` walks those objects structurally — dataclass fields,
mappings, sequences, numpy arrays — and folds a canonical byte encoding
into SHA-256, so the digest is:

* **stable** across processes and runs (no ``id()``/``repr()`` of
  arbitrary objects, no pickle memo effects);
* **sensitive** to every field that changes simulation behaviour (a
  nudged tuning knob, a different seed, one more co-runner);
* **type-tagged**, so ``(1, 2)`` and ``[1, 2]`` and ``{1: 2}`` never
  collide.

Unsupported types raise :class:`~repro.util.errors.ConfigurationError`
instead of silently degrading to an unstable encoding — a wrong cache
key is far worse than a loud one.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math
import struct
from typing import Any, Iterable

import numpy as np

from repro.util.errors import ConfigurationError

__all__ = ["canonical_bytes", "stable_digest"]


def _tag(label: str) -> bytes:
    return b"\x00" + label.encode("ascii") + b"\x00"


def _encode_float(value: float, out: bytearray) -> None:
    # IEEE-754 big-endian bytes: exact, distinguishes -0.0/0.0 and nan.
    if math.isnan(value):
        out += _tag("f") + b"nan"
    else:
        out += _tag("f") + struct.pack(">d", value)


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += _tag("none")
    elif obj is True:
        out += _tag("true")
    elif obj is False:
        out += _tag("false")
    elif isinstance(obj, enum.Enum):
        out += _tag("enum")
        out += type(obj).__qualname__.encode() + b":" + obj.name.encode()
    elif isinstance(obj, (int, np.integer)):
        out += _tag("i") + str(int(obj)).encode()
    elif isinstance(obj, (float, np.floating)):
        _encode_float(float(obj), out)
    elif isinstance(obj, str):
        out += _tag("s") + obj.encode("utf-8")
    elif isinstance(obj, (bytes, bytearray)):
        out += _tag("b") + bytes(obj)
    elif isinstance(obj, np.ndarray):
        out += _tag("nd") + str(obj.dtype).encode()
        out += _tag("shape") + str(obj.shape).encode()
        out += np.ascontiguousarray(obj).tobytes()
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out += _tag("dc") + type(obj).__qualname__.encode()
        for field in dataclasses.fields(obj):
            out += _tag("field") + field.name.encode()
            _encode(getattr(obj, field.name), out)
    elif isinstance(obj, dict):
        out += _tag("map")
        _encode_sorted(obj.items(), out, pairs=True)
    elif isinstance(obj, (list, tuple)):
        out += _tag("list" if isinstance(obj, list) else "tuple")
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, (set, frozenset)):
        out += _tag("set")
        _encode_sorted(obj, out, pairs=False)
    else:
        raise ConfigurationError(
            f"cannot stably hash object of type {type(obj).__qualname__!r}; "
            "add explicit support in repro.util.spec_hash")
    out += _tag("end")


def _encode_sorted(items: Iterable, out: bytearray, pairs: bool) -> None:
    # Order-independence: encode entries individually, sort the byte
    # strings, then concatenate — works for any mix of key types.
    encoded = []
    for item in items:
        buf = bytearray()
        if pairs:
            key, value = item
            _encode(key, buf)
            _encode(value, buf)
        else:
            _encode(item, buf)
        encoded.append(bytes(buf))
    for chunk in sorted(encoded):
        out += chunk


def canonical_bytes(obj: Any) -> bytes:
    """The canonical byte encoding of ``obj`` (what gets hashed)."""
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def stable_digest(*objs: Any) -> str:
    """Hex SHA-256 of the canonical encoding of ``objs``, in order.

    >>> stable_digest((1, 2)) == stable_digest((1, 2))
    True
    >>> stable_digest((1, 2)) == stable_digest([1, 2])
    False
    """
    digest = hashlib.sha256()
    for obj in objs:
        digest.update(canonical_bytes(obj))
    return digest.hexdigest()
