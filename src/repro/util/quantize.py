"""Quantisation helpers.

Ditto quantises several profiled features:

- branch taken/not-taken rates and transition rates in log scale, from
  2**-1 down to 2**-10 (§4.4.3);
- data/instruction working-set sizes in powers of two, from one cache line
  up to the application's footprint (§4.4.4, §4.4.5);
- data-dependency distances into 11 exponentially-growing bins from 1 to
  1024 (§4.4.6).

These helpers implement the shared mechanics.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.util.errors import ConfigurationError


def next_pow2(value: int) -> int:
    """Smallest power of two >= ``value`` (``value`` must be positive)."""
    if value <= 0:
        raise ConfigurationError(f"next_pow2 requires a positive value, got {value}")
    return 1 << (value - 1).bit_length()


def prev_pow2(value: int) -> int:
    """Largest power of two <= ``value`` (``value`` must be positive)."""
    if value <= 0:
        raise ConfigurationError(f"prev_pow2 requires a positive value, got {value}")
    return 1 << (value.bit_length() - 1)


def quantize_pow2(value: int, lo: int, hi: int) -> int:
    """Quantise ``value`` to the nearest power of two, clamped to [lo, hi].

    ``lo`` and ``hi`` must themselves be powers of two. Ties round up,
    which matches Ditto's conservative treatment of working sets (a
    slightly larger footprint never under-reports misses).
    """
    for bound in (lo, hi):
        if bound & (bound - 1) or bound <= 0:
            raise ConfigurationError(f"bound {bound} is not a positive power of two")
    if lo > hi:
        raise ConfigurationError(f"lo ({lo}) must not exceed hi ({hi})")
    if value <= lo:
        return lo
    if value >= hi:
        return hi
    below = prev_pow2(value)
    above = next_pow2(value)
    if value - below < above - value:
        return below
    return above


def pow2_bins(lo: int, hi: int) -> List[int]:
    """All powers of two from ``lo`` to ``hi`` inclusive.

    >>> pow2_bins(64, 512)
    [64, 128, 256, 512]
    """
    for bound in (lo, hi):
        if bound & (bound - 1) or bound <= 0:
            raise ConfigurationError(f"bound {bound} is not a positive power of two")
    if lo > hi:
        raise ConfigurationError(f"lo ({lo}) must not exceed hi ({hi})")
    bins = []
    size = lo
    while size <= hi:
        bins.append(size)
        size <<= 1
    return bins


class LogScaleQuantizer:
    """Quantise probabilities onto a log-scale grid 2**-1 .. 2**-max_exp.

    This is the grid Ditto uses for branch taken rates and transition
    rates. Probabilities are first folded onto (0, 0.5] — a branch taken
    with rate 0.9 behaves like one not-taken with rate 0.1, and the
    profiler records which direction dominates separately.

    >>> q = LogScaleQuantizer(max_exponent=10)
    >>> q.quantize(0.5)
    1
    >>> q.quantize(0.24)
    2
    >>> q.value(3)
    0.125
    """

    def __init__(self, max_exponent: int = 10) -> None:
        if max_exponent < 1:
            raise ConfigurationError("max_exponent must be >= 1")
        self.max_exponent = max_exponent

    @property
    def exponents(self) -> Sequence[int]:
        """The available exponents, 1..max_exponent."""
        return range(1, self.max_exponent + 1)

    def quantize(self, probability: float) -> int:
        """Return the exponent ``m`` such that 2**-m best matches ``probability``.

        ``probability`` must lie in [0, 1]; values above 0.5 are folded to
        ``1 - probability`` first; zero maps to the deepest bin.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be within [0, 1], got {probability}"
            )
        folded = min(probability, 1.0 - probability)
        if folded <= 0.0:
            return self.max_exponent
        exponent = round(-math.log2(folded))
        return max(1, min(self.max_exponent, exponent))

    def value(self, exponent: int) -> float:
        """Return 2**-exponent for an exponent on the grid."""
        if exponent not in self.exponents:
            raise ConfigurationError(
                f"exponent {exponent} outside 1..{self.max_exponent}"
            )
        return 2.0**-exponent


def exponential_bins(lo: int, hi: int) -> List[int]:
    """Bin edges growing by powers of two from ``lo`` to ``hi`` inclusive.

    Ditto's dependency distances use ``exponential_bins(1, 1024)`` which
    yields the 11 bins 1, 2, 4, ..., 1024.

    >>> len(exponential_bins(1, 1024))
    11
    """
    return pow2_bins(lo, hi)


def bin_index(value: float, edges: Sequence[int]) -> int:
    """Index of the first edge >= value (clamped to the last bin)."""
    if not edges:
        raise ConfigurationError("edges must be non-empty")
    for index, edge in enumerate(edges):
        if value <= edge:
            return index
    return len(edges) - 1
