"""Statistics helpers used across the simulator and the profilers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.util.errors import ConfigurationError


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) of ``samples``.

    Uses linear interpolation, matching ``numpy.percentile`` defaults.
    Raises :class:`ConfigurationError` for empty input so callers cannot
    silently propagate NaNs into results tables.
    """
    if len(samples) == 0:
        raise ConfigurationError("cannot take a percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Return the weighted arithmetic mean of ``values``."""
    if len(values) != len(weights):
        raise ConfigurationError("values and weights must have equal length")
    total = float(np.sum(weights))
    if total <= 0.0:
        raise ConfigurationError("weights must sum to a positive value")
    return float(np.dot(values, weights) / total)


def geometric_mean(values: Iterable[float]) -> float:
    """Return the geometric mean of strictly positive ``values``."""
    logs = []
    for value in values:
        if value <= 0.0:
            raise ConfigurationError("geometric mean requires positive values")
        logs.append(math.log(value))
    if not logs:
        raise ConfigurationError("geometric mean of empty sequence")
    return math.exp(sum(logs) / len(logs))


def relative_error(actual: float, synthetic: float) -> float:
    """Return ``|synthetic - actual| / |actual|``.

    This is the error metric the paper reports (e.g. "average errors ...
    being 4.1%, 9.9%, ..."). A zero actual with a zero synthetic is a
    perfect match (0.0); a zero actual with nonzero synthetic is infinite
    error.
    """
    if actual == 0.0:
        return 0.0 if synthetic == 0.0 else math.inf
    return abs(synthetic - actual) / abs(actual)


@dataclass
class OnlineStats:
    """Streaming mean/variance/min/max accumulator (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Population variance of the observations so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation of the observations so far."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Return a new accumulator equivalent to seeing both streams."""
        if self.count == 0:
            return OnlineStats(
                other.count, other.mean, other._m2, other.minimum, other.maximum
            )
        if other.count == 0:
            return OnlineStats(
                self.count, self.mean, self._m2, self.minimum, self.maximum
            )
        count = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / count
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / count
        return OnlineStats(
            count, mean, m2, min(self.minimum, other.minimum),
            max(self.maximum, other.maximum),
        )


@dataclass
class Histogram:
    """A categorical histogram with helpers for normalisation and sampling.

    Used throughout the profilers: instruction-mix distributions, syscall
    distributions, branch-rate distributions, dependency-distance bins.
    """

    counts: Dict[object, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Cached (n_keys, keys, probs, cdf) for sampling; rebuilding the
        # repr-sorted key order per draw dominated hot sampling loops.
        self._sampler: tuple | None = None

    def add(self, key: object, weight: float = 1.0) -> None:
        """Add ``weight`` observations of ``key``."""
        self.counts[key] = self.counts.get(key, 0.0) + weight
        self._sampler = None

    def update(self, other: Mapping[object, float]) -> None:
        """Fold another mapping of counts into this histogram."""
        for key, weight in other.items():
            self.add(key, weight)

    @property
    def total(self) -> float:
        """Sum of all counts."""
        return float(sum(self.counts.values()))

    def probability(self, key: object) -> float:
        """Empirical probability of ``key`` (0.0 if unseen)."""
        total = self.total
        if total == 0.0:
            return 0.0
        return self.counts.get(key, 0.0) / total

    def normalized(self) -> Dict[object, float]:
        """Return the distribution as probabilities summing to 1."""
        total = self.total
        if total == 0.0:
            return {}
        return {key: count / total for key, count in self.counts.items()}

    def _ensure_sampler(self) -> tuple:
        sampler = getattr(self, "_sampler", None)
        if sampler is not None and sampler[0] == len(self.counts):
            return sampler
        items = sorted(self.counts.items(), key=lambda item: repr(item[0]))
        keys = [key for key, _ in items]
        probs = np.array([count for _, count in items], dtype=float)
        total = probs.sum()
        if total == 0.0:
            raise ConfigurationError("cannot sample from an empty histogram")
        probs = probs / total
        # Mirror numpy Generator.choice(p=...) exactly: cumsum then
        # renormalise by the last entry, so cached sampling draws the
        # same indices (to the last ulp) as the choice() it replaced.
        cdf = np.cumsum(probs)
        cdf /= cdf[-1]
        sampler = (len(self.counts), keys, probs, cdf)
        self._sampler = sampler
        return sampler

    def keys_and_probs(self) -> tuple[List[object], np.ndarray]:
        """Return parallel (keys, probabilities) arrays, sorted by key repr.

        Sorting makes sampling deterministic for a fixed seed regardless of
        insertion order.
        """
        _, keys, probs, _ = self._ensure_sampler()
        return list(keys), probs.copy()

    def sample(self, rng: np.random.Generator, size: int = 1) -> List[object]:
        """Draw ``size`` iid samples from the empirical distribution.

        Consumes ``rng.random(size)`` — the same stream as the
        ``rng.choice`` formulation it replaces — and inverts the cached
        CDF, so fixed seeds keep producing identical draws.
        """
        _, keys, _, cdf = self._ensure_sampler()
        indices = np.minimum(
            np.searchsorted(cdf, rng.random(size), side="right"),
            len(keys) - 1)
        return [keys[i] for i in indices]

    def most_common(self, n: int | None = None) -> List[tuple[object, float]]:
        """Return (key, count) pairs sorted by descending count."""
        ranked = sorted(self.counts.items(), key=lambda item: (-item[1], repr(item[0])))
        return ranked if n is None else ranked[:n]

    def tv_distance(self, other: "Histogram") -> float:
        """Total-variation distance between two histograms' distributions."""
        mine = self.normalized()
        theirs = other.normalized()
        keys = set(mine) | set(theirs)
        return 0.5 * sum(abs(mine.get(k, 0.0) - theirs.get(k, 0.0)) for k in keys)
