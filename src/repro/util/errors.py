"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
simulation failures.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ProfilingError(ReproError):
    """A profiler could not extract the requested feature."""
