"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
simulation failures.  The full tree (documented in DESIGN.md):

- ``ReproError``
    - ``ConfigurationError`` — invalid construction/configuration
    - ``SimulationError`` — the DES engine reached an inconsistent state
    - ``ProfilingError`` — a profiler could not extract a feature
    - ``FaultInjectionError`` — an *injected* fault fired (disk IO error,
      node crash window, NIC down); deliberately distinct from
      ``SimulationError`` so resilience layers can retry injected faults
      without masking engine bugs
    - ``RpcTimeoutError`` — one RPC attempt exceeded its per-attempt
      timeout
    - ``RetryExhaustedError`` — a retry policy gave up; carries the last
      underlying failure as ``__cause__``
    - ``CircuitOpenError`` — a circuit breaker rejected a call without
      attempting it
    - ``LoadSheddedError`` — a request was rejected at admission because a
      service queue exceeded its shedding bound
    - ``TierExecutionError`` — one clone-pipeline tier failed after its
      retry budget; preserves the sibling tiers' outcomes
    - ``SimBudgetExceededError`` — a simulation watchdog tripped (event
      budget, sim-time deadline, or livelock detector); subclass of
      ``SimulationError`` and names the entry that was running
    - ``ArtifactIntegrityError`` — a persisted artifact (checkpoint,
      profile, clone bundle) failed its digest/structure check; the file
      is quarantined, never silently loaded
    - ``FidelityGateError`` — a finished clone failed its acceptance
      gate after the remediation ladder was exhausted; carries the
      per-metric ``FidelityReport`` and the (failing) clone result
    - ``JobStateError`` — an illegal fleet-job lifecycle transition was
      requested (e.g. publishing a cancelled job)
    - ``JobCancelledError`` — a fleet job was cancelled while running;
      raised at the next phase boundary to unwind the worker cleanly
    - ``LeaseFencedError`` — a fleet worker's lease epoch was
      superseded (the job was requeued and re-claimed while this
      worker looked dead); raised before any terminal transition or
      artifact publish so a zombie can never double-publish
    - ``MigrationError`` — a clone-bundle migration was refused;
      ``stage`` names where (``"preflight"``, ``"retune"``,
      ``"gate"``), ``blocking`` the objects that could not be carried
      to the destination, and ``report`` the preflight/fidelity report
      that justified the refusal
"""

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SimBudgetExceededError(SimulationError):
    """A simulation watchdog tripped before the run could finish.

    ``budget`` names which guard fired (``"max_events"``,
    ``"deadline"`` or ``"livelock"``), ``events`` how many queue
    entries had been dispatched, ``sim_time`` the simulated clock at
    the trip, and ``process`` the queue entry that was running or about
    to run — the prime suspect for the hang.
    """

    def __init__(self, message: str, *, budget: str = "",
                 events: int = 0, sim_time: float = 0.0,
                 process: str = "") -> None:
        super().__init__(message)
        self.budget = budget
        self.events = events
        self.sim_time = sim_time
        self.process = process


class ProfilingError(ReproError):
    """A profiler could not extract the requested feature."""


class FaultInjectionError(ReproError):
    """An injected fault fired (disk error, node crash, NIC down).

    ``kind`` names the fault class (``"disk_error"``, ``"node_down"``,
    ...) and ``scope`` the component it hit (a node or device name), so
    handlers and tests can assert on *which* fault surfaced.
    """

    def __init__(self, message: str, *, kind: str = "", scope: str = "") -> None:
        super().__init__(message)
        self.kind = kind
        self.scope = scope


class RpcTimeoutError(ReproError):
    """One RPC attempt exceeded its per-attempt timeout."""

    def __init__(self, message: str, *, target: str = "",
                 timeout_s: float = 0.0) -> None:
        super().__init__(message)
        self.target = target
        self.timeout_s = timeout_s


class RetryExhaustedError(ReproError):
    """A retry policy gave up after its final attempt.

    ``attempts`` counts tries actually made; the last underlying failure
    travels as ``__cause__`` (and ``last_error``).
    """

    def __init__(self, message: str, *, attempts: int = 0,
                 last_error: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ReproError):
    """A circuit breaker rejected a call without attempting it."""

    def __init__(self, message: str, *, target: str = "") -> None:
        super().__init__(message)
        self.target = target


class LoadSheddedError(ReproError):
    """A request was rejected at admission (queue over the shed bound)."""

    def __init__(self, message: str, *, service: str = "",
                 queue_depth: int = 0) -> None:
        super().__init__(message)
        self.service = service
        self.queue_depth = queue_depth


class ArtifactIntegrityError(ReproError):
    """A persisted artifact failed its integrity check.

    ``path`` is the offending file, ``reason`` a short code
    (``"truncated"``, ``"digest_mismatch"``, ``"bad_header"``,
    ``"undecodable"``), and ``quarantined_to`` where the file was moved
    (empty when quarantining was disabled or impossible).
    """

    def __init__(self, message: str, *, path: str = "", reason: str = "",
                 quarantined_to: str = "") -> None:
        super().__init__(message)
        self.path = path
        self.reason = reason
        self.quarantined_to = quarantined_to


class FidelityGateError(ReproError):
    """A clone failed its fidelity gate after remediation was exhausted.

    ``report`` is the final per-metric
    :class:`~repro.validation.gate.FidelityReport` (typed ``Any`` to
    keep this module dependency-free) and ``result`` the failing
    ``CloneResult``, so callers can inspect or salvage the clone.
    """

    def __init__(self, message: str, *, report: Any = None,
                 result: Any = None, attempts: int = 1) -> None:
        super().__init__(message)
        self.report = report
        self.result = result
        self.attempts = attempts


class JobStateError(ReproError):
    """An illegal fleet-job lifecycle transition was requested."""


class JobCancelledError(ReproError):
    """A fleet job was cancelled while its worker was running.

    Raised at the next phase boundary (profiling/tuning/validating) so
    the worker unwinds without writing a result; ``job_id`` names the
    job the cancellation hit.
    """

    def __init__(self, message: str, *, job_id: str = "") -> None:
        super().__init__(message)
        self.job_id = job_id


class LeaseFencedError(ReproError):
    """A fleet worker's lease epoch was superseded (zombie fencing).

    Raised when a worker holding fencing epoch ``epoch`` finds the
    job's lease gone or re-claimed at a higher epoch — meaning the
    fleet declared this worker dead and handed the job to someone
    else. The worker must stop without touching the record or
    publishing artifacts. ``current`` is the epoch now on the lease
    (None when the lease is gone entirely).
    """

    def __init__(self, message: str, *, job_id: str = "",
                 epoch: int = 0,
                 current: Optional[int] = None) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.epoch = epoch
        self.current = current


class MigrationError(ReproError):
    """A clone-bundle migration was refused.

    ``stage`` names the migration stage that refused (``"preflight"``,
    ``"retune"`` or ``"gate"``), ``blocking`` lists the per-tier
    objects (``"tier/knob"`` style names) that could not be carried to
    the destination, and ``report`` carries the typed report that
    justified the refusal — a ``PreflightReport`` for preflight
    refusals, a ``FidelityReport`` for destination-gate failures
    (typed ``Any`` to keep this module dependency-free).
    """

    def __init__(self, message: str, *, stage: str = "",
                 blocking: Optional[list] = None,
                 report: Any = None) -> None:
        super().__init__(message)
        self.stage = stage
        self.blocking = list(blocking) if blocking else []
        self.report = report


class TierExecutionError(ReproError):
    """One clone-pipeline tier failed after its retry budget.

    The pipeline preserves what the *other* tiers produced: ``outcomes``
    maps completed tier names to their ``TierOutcome`` objects (typed as
    ``Any`` here to keep this module dependency-free), so a caller can
    checkpoint or salvage partial progress instead of losing the run.
    """

    def __init__(self, message: str, *, tier: str, attempts: int = 1,
                 outcomes: Optional[Dict[str, Any]] = None,
                 last_error: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.tier = tier
        self.attempts = attempts
        self.outcomes = dict(outcomes) if outcomes else {}
        self.last_error = last_error
