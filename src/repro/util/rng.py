"""Deterministic random-number management.

Every stochastic component in the library draws from a named
:class:`RngStream` derived from a root seed, so that (a) experiments are
reproducible bit-for-bit and (b) changing the amount of randomness one
component consumes does not perturb any other component.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a stable 63-bit child seed from a root seed and a name path.

    The derivation hashes the root seed together with the path components,
    so streams are independent for distinct names and stable across runs
    and platforms.

    >>> derive_seed(1, "a") != derive_seed(1, "b")
    True
    >>> derive_seed(1, "a") == derive_seed(1, "a")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(name.encode())
    return int.from_bytes(digest.digest()[:8], "little") & (2**63 - 1)


def make_rng(root_seed: int, *names: str) -> np.random.Generator:
    """Create a numpy Generator seeded from ``derive_seed(root_seed, *names)``."""
    return np.random.default_rng(derive_seed(root_seed, *names))


class RngStream:
    """A hierarchical factory of independent random generators.

    >>> stream = RngStream(42)
    >>> rng = stream.rng("cache", "l1d")
    >>> child = stream.child("profiling")
    >>> child.rng("branches") is not None
    True
    """

    def __init__(self, root_seed: int, *path: str) -> None:
        self._root_seed = int(root_seed)
        self._path = tuple(path)

    @property
    def seed(self) -> int:
        """The effective seed of this stream node."""
        return derive_seed(self._root_seed, *self._path)

    def child(self, *names: str) -> "RngStream":
        """Return a sub-stream rooted at ``names`` below this node."""
        return RngStream(self._root_seed, *self._path, *names)

    def rng(self, *names: str) -> np.random.Generator:
        """Return a numpy Generator for the stream at ``names``."""
        return make_rng(self._root_seed, *self._path, *names)

    def __repr__(self) -> str:
        return f"RngStream(seed={self._root_seed}, path={'/'.join(self._path)!r})"
