"""Shared utilities: seeded randomness, statistics, quantisation, errors.

These helpers are deliberately free of any domain knowledge so every
substrate (hardware, kernel, applications, profilers) can depend on them
without cycles.
"""

from repro.util.errors import (
    ConfigurationError,
    ProfilingError,
    ReproError,
    SimulationError,
)
from repro.util.quantize import (
    LogScaleQuantizer,
    next_pow2,
    pow2_bins,
    prev_pow2,
    quantize_pow2,
)
from repro.util.rng import RngStream, derive_seed, make_rng
from repro.util.spec_hash import canonical_bytes, stable_digest
from repro.util.stats import (
    Histogram,
    OnlineStats,
    geometric_mean,
    percentile,
    relative_error,
    weighted_mean,
)

__all__ = [
    "ConfigurationError",
    "Histogram",
    "canonical_bytes",
    "stable_digest",
    "LogScaleQuantizer",
    "OnlineStats",
    "ProfilingError",
    "ReproError",
    "RngStream",
    "SimulationError",
    "derive_seed",
    "geometric_mean",
    "make_rng",
    "next_pow2",
    "percentile",
    "pow2_bins",
    "prev_pow2",
    "quantize_pow2",
    "relative_error",
    "weighted_mean",
]
