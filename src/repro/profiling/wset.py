"""Working-set profiling and the Eq. 1 / Eq. 2 inversions (§4.4.4–4.4.5).

The Valgrind stand-in sweeps simulated cache sizes over the captured
address traces. Rather than re-simulating an LRU cache once per size, the
sweep computes Mattson reuse distances (distinct lines touched since the
previous access to the same line) in one pass: under fully-associative
LRU an access hits a cache of C lines iff its reuse distance is < C, so
one pass yields the hit counts H(s) for *every* size at once. Distances
come from the vectorized kernel in :mod:`repro.hw.stackdist`; the
original O(N log N) Fenwick-tree loop survives as
:func:`reuse_distances_reference` for cross-validation and as the perf
harness's scalar baseline. The paper notes associativity changes move miss rates by only
~1.9%, justifying the fully-associative sweep; tests cross-validate it
against the explicit set-associative simulator.

The inversions recover the generator's working-set histograms:

- Eq. 1 (data):  A_d(64) = H_d(64);  A_d(2^i) = H_d(2^i) - H_d(2^(i-1))
- Eq. 2 (insn):  E_i(2^j) = 16 * [H_i(2^j) - H_i(2^(j-1))]  (line-grain H),
  with the 64-byte bin absorbing the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hw.cache import LINE_BYTES
from repro.hw.stackdist import stack_distances
from repro.util.errors import ConfigurationError, ProfilingError
from repro.util.quantize import pow2_bins

#: instructions per cache line assumed by Eq. 2 (64B line / 4B instruction)
INSTRUCTIONS_PER_LINE = 16


class _Fenwick:
    """Prefix-sum tree over positions."""

    def __init__(self, size: int) -> None:
        self._tree = np.zeros(size + 1, dtype=np.int64)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix(self, index: int) -> int:
        """Sum of [0, index)."""
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return int(total)


def reuse_distances(addresses: np.ndarray) -> np.ndarray:
    """Per-access LRU reuse distance in cache lines (-1 = first touch).

    Delegates to the vectorized stack-distance kernel
    (:func:`repro.hw.stackdist.stack_distances`); bit-identical to the
    online Fenwick formulation kept in
    :func:`reuse_distances_reference`, which tests and the perf harness
    cross-validate against.
    """
    lines = np.asarray(addresses, dtype=np.int64) // LINE_BYTES
    return stack_distances(lines)


def reuse_distances_reference(addresses: np.ndarray) -> np.ndarray:
    """Scalar (Fenwick-tree) reference for :func:`reuse_distances`."""
    lines = np.asarray(addresses, dtype=np.int64) // LINE_BYTES
    n = len(lines)
    distances = np.full(n, -1, dtype=np.int64)
    tree = _Fenwick(n)
    last_position: Dict[int, int] = {}
    for i in range(n):
        line = int(lines[i])
        previous = last_position.get(line)
        if previous is not None:
            # Distinct lines touched strictly between the two accesses =
            # marked last-occurrence positions in (previous, i).
            distances[i] = tree.prefix(i) - tree.prefix(previous + 1)
            tree.add(previous, -1)
        tree.add(i, +1)
        last_position[line] = i
    return distances


@dataclass
class WorkingSetProfile:
    """Weighted hit counts H(s) per simulated cache size."""

    sizes: List[int]
    hits: List[float]
    total_weight: float
    per_request_scale: float = 1.0

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.hits):
            raise ConfigurationError("sizes and hits must align")
        for a, b in zip(self.hits, self.hits[1:]):
            if b < a - 1e-6:
                raise ConfigurationError("H(s) must be non-decreasing")

    def hit_rate(self, size: int) -> float:
        """Hit fraction at one sweep size."""
        if self.total_weight <= 0:
            return 0.0
        try:
            index = self.sizes.index(size)
        except ValueError:
            raise ConfigurationError(f"size {size} not swept") from None
        return self.hits[index] / self.total_weight


def profile_working_sets(
    addresses: np.ndarray,
    weights: Optional[np.ndarray] = None,
    max_size: int = 256 * 1024 * 1024,
    min_size: int = LINE_BYTES,
) -> WorkingSetProfile:
    """Sweep cache sizes over an address trace (one Mattson pass)."""
    if len(addresses) == 0:
        raise ProfilingError("empty address trace")
    if weights is None:
        weights = np.ones(len(addresses), dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if len(weights) != len(addresses):
        raise ConfigurationError("weights must align with addresses")
    sizes = pow2_bins(min_size, max_size)
    distances = reuse_distances(addresses)
    hits: List[float] = []
    for size in sizes:
        capacity_lines = max(1, size // LINE_BYTES)
        mask = (distances >= 0) & (distances < capacity_lines)
        hits.append(float(weights[mask].sum()))
    return WorkingSetProfile(
        sizes=sizes, hits=hits, total_weight=float(weights.sum()))


def profile_working_set_regions(
    regions,
    max_size: int = 256 * 1024 * 1024,
    min_size: int = LINE_BYTES,
    steady_state: bool = True,
) -> WorkingSetProfile:
    """Sweep cache sizes over spatially-sampled per-region traces.

    Each region's reuse distances are measured on its sampled lines and
    scaled by its ``line_sample_factor`` to estimate true stack
    distances; H(s) sums over regions. Cross-region interference is a
    second-order effect for working-set extraction (and the paper's Eq. 1
    argument is per-working-set anyway).

    ``steady_state``: a long-running service's lines are not really cold
    — the bounded trace window merely starts mid-stream. First touches
    are therefore assigned the region's steady-state stack distance: the
    full extent for regular (cyclic) traces, and a uniform spread over
    the extent for irregular ones (the stack-distance law of uniform
    random access).
    """
    regions = list(regions)
    if not regions:
        raise ProfilingError("no region traces to sweep")
    sizes = pow2_bins(min_size, max_size)
    hits = np.zeros(len(sizes), dtype=np.float64)
    total = 0.0
    for region in regions:
        distances = reuse_distances(region.addresses).astype(np.float64)
        scaled = distances * region.line_sample_factor
        weights = np.asarray(region.weights, dtype=np.float64)
        total += float(weights.sum())
        valid = distances >= 0
        if steady_state and region.region_bytes > 0:
            first = ~valid
            n_first = int(first.sum())
            if n_first:
                region_lines = max(1.0, region.region_bytes / LINE_BYTES)
                if regularity_ratio(region.addresses) >= 0.5:
                    scaled[first] = region_lines
                else:
                    scaled[first] = np.linspace(
                        region_lines / n_first, region_lines, n_first)
                valid = np.ones_like(valid)
        for index, size in enumerate(sizes):
            capacity_lines = max(1, size // LINE_BYTES)
            mask = valid & (scaled < capacity_lines)
            hits[index] += float(weights[mask].sum())
    return WorkingSetProfile(sizes=sizes, hits=[float(h) for h in hits],
                             total_weight=total)


def region_regularity_ratio(regions, min_region_bytes: float = 0.0,
                            max_region_bytes: float = float("inf")) -> float:
    """Weighted prefetch-coverable fraction across region traces.

    Optionally restricted to regions within a footprint band — the
    generator distinguishes the regularity of large (capacity-missing)
    working sets from small (cache-resident) ones, since only the former
    shapes memory-level behaviour.
    """
    num = 0.0
    den = 0.0
    for region in regions:
        if not min_region_bytes <= region.region_bytes <= max_region_bytes:
            continue
        weight = region.total_weight
        num += regularity_ratio(region.addresses, region.weights) * weight
        den += weight
    if den <= 0:
        return 0.0
    return num / den


def region_chase_ratio(regions, min_region_bytes: float = 0.0) -> float:
    """Weighted dependent-load fraction across region traces."""
    num = 0.0
    den = 0.0
    for region in regions:
        if region.region_bytes < min_region_bytes:
            continue
        weight = region.total_weight
        num += region.chase_frac * weight
        den += weight
    if den <= 0:
        return 0.0
    return num / den


def region_shared_ratio(regions) -> float:
    """Weighted fraction of accesses to lines another thread touches."""
    num = 0.0
    den = 0.0
    for region in regions:
        weight = region.total_weight
        den += weight
        if region.thread2_addresses is not None:
            num += shared_ratio(region.addresses, region.thread2_addresses,
                                region.weights) * weight
    if den <= 0:
        return 0.0
    return num / den


def invert_data_hits(profile: WorkingSetProfile) -> Dict[int, float]:
    """Eq. 1: working-set access histogram from the data-side sweep."""
    result: Dict[int, float] = {}
    previous = 0.0
    for size, hit in zip(profile.sizes, profile.hits):
        if size == profile.sizes[0]:
            accesses = hit
        else:
            accesses = hit - previous
        previous = hit
        if accesses > 1e-9:
            result[size] = accesses * profile.per_request_scale
    return result


def invert_instruction_hits(
    profile: WorkingSetProfile,
    line_grain_hits: bool = False,
) -> Dict[int, float]:
    """Eq. 2: dynamic-execution histogram per instruction working set.

    With ``line_grain_hits`` the sweep counted hit *lines* and the paper's
    16x multiplier recovers instruction executions; our sweep counts
    per-instruction fetches directly, so the default is the multiplier-
    free variant (same histogram, different bookkeeping).
    """
    factor = INSTRUCTIONS_PER_LINE if line_grain_hits else 1
    executions: Dict[int, float] = {}
    previous = 0.0
    total = profile.hits[-1] if profile.hits else 0.0
    assigned = 0.0
    for size, hit in zip(profile.sizes, profile.hits):
        if size == profile.sizes[0]:
            previous = hit
            continue
        value = factor * (hit - previous)
        previous = hit
        if value > 1e-9:
            executions[size] = value * profile.per_request_scale
            assigned += value
    # The smallest bin absorbs the remainder (the paper's 64-byte case).
    remainder = max(0.0, factor * total - assigned * 1.0) if line_grain_hits \
        else max(0.0, total - assigned)
    if remainder > 1e-9:
        executions[profile.sizes[0]] = remainder * profile.per_request_scale
    return executions


def regularity_ratio(
    addresses: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Fraction of accesses a stride prefetcher would cover (§4.4.4).

    An access is *regular* when its line-address delta repeats the
    previous delta, or steps to an adjacent line.
    """
    if len(addresses) < 3:
        return 0.0
    lines = np.asarray(addresses, dtype=np.int64) // LINE_BYTES
    deltas = np.diff(lines)
    repeat = np.zeros(len(lines), dtype=bool)
    repeat[2:] = deltas[1:] == deltas[:-1]
    adjacent = np.zeros(len(lines), dtype=bool)
    adjacent[1:] = np.abs(deltas) <= 1
    regular = repeat | adjacent
    if weights is None:
        return float(np.mean(regular))
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        return 0.0
    return float(weights[regular].sum() / total)


def shared_ratio(
    thread1: np.ndarray,
    thread2: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """Fraction of thread 1's accesses hitting lines thread 2 also touches."""
    if len(thread1) == 0:
        return 0.0
    lines1 = np.asarray(thread1, dtype=np.int64) // LINE_BYTES
    lines2 = set((np.asarray(thread2, dtype=np.int64) // LINE_BYTES).tolist())
    shared = np.fromiter((int(l) in lines2 for l in lines1), dtype=bool,
                         count=len(lines1))
    if weights is None:
        return float(np.mean(shared))
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        return 0.0
    return float(weights[shared].sum() / total)
