"""Raw execution artifacts the profilers consume.

Everything here is *observable* instrumentation output — the kind of data
SystemTap probes, Intel SDE instruction logs, Valgrind address traces and
perf counters actually produce. Feature extraction operates exclusively
on these types; the application models never cross this boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.treedit import CallTree
from repro.kernelsim.syscalls import SyscallInvocation
from repro.runtime.metrics import ServiceMetrics
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ProfilingBudget:
    """How much data the instrumentation collects per service.

    The paper notes profiling overhead occurs once and does not affect
    the collected platform-independent features; here the budget bounds
    wall-clock cost of the simulated instrumentation.
    """

    sampled_requests: int = 12
    max_accesses_per_spec: int = 1024
    max_istream_per_block: int = 4096
    branch_outcomes_per_site: int = 192
    max_sites_per_population: int = 12
    dep_samples_per_block: int = 96
    profile_duration_s: float = 0.02

    def __post_init__(self) -> None:
        if self.sampled_requests < 1:
            raise ConfigurationError("need at least one sampled request")


@dataclass
class RegionTrace:
    """A spatially-sampled address trace over one memory region.

    Large regions are observed through a 1-in-``line_sample_factor``
    sample of their cache lines (the set-sampling technique production
    working-set profilers use to bound trace volume): reuse distances
    measured on the sampled lines multiply by the factor to estimate true
    stack distances, and each access's ``weight`` says how many real
    accesses it represents.
    """

    addresses: np.ndarray
    weights: np.ndarray
    line_sample_factor: float = 1.0
    #: a second thread's view of the same region (shared-data detection)
    thread2_addresses: Optional[np.ndarray] = None
    #: extent of the region in bytes (observable as the address span)
    region_bytes: float = 0.0
    #: fraction of this region's accesses that are dependent (pointer-
    #: chasing) loads — the DCFG identifies dependent loads and their
    #: target addresses, so per-region attribution is observable
    chase_frac: float = 0.0

    def __post_init__(self) -> None:
        if len(self.addresses) != len(self.weights):
            raise ConfigurationError("addresses/weights must align")
        if self.line_sample_factor < 1.0:
            raise ConfigurationError("line_sample_factor must be >= 1")

    @property
    def total_weight(self) -> float:
        """Real accesses this trace represents."""
        return float(np.sum(self.weights))


@dataclass
class BranchSiteTrace:
    """Outcome history of one static conditional-branch site."""

    pc: int
    outcomes: np.ndarray           # bool array
    executions_weight: float       # total dynamic executions it represents

    @property
    def taken_rate(self) -> float:
        """Observed fraction of taken outcomes."""
        if len(self.outcomes) == 0:
            return 0.0
        return float(np.mean(self.outcomes))

    @property
    def transition_rate(self) -> float:
        """Observed fraction of direction changes between executions."""
        if len(self.outcomes) < 2:
            return 0.0
        return float(np.mean(self.outcomes[1:] != self.outcomes[:-1]))


@dataclass(frozen=True)
class DepSample:
    """One sampled dependency tuple from the DCFG (§4.4.6)."""

    raw: float
    war: float
    waw: float
    pointer_chase: bool


@dataclass
class ThreadObservation:
    """One observed thread: call graph plus kernel-event evidence."""

    thread_id: int
    call_tree: CallTree
    spawned_by_clone: bool
    lifetime_fraction: float        # lifetime / observation window
    wakeup_trigger: str             # "socket" | "timer" | "condvar" | "signal"
    connections_at_observation: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.lifetime_fraction <= 1.0:
            raise ConfigurationError("lifetime_fraction must be in [0, 1]")


@dataclass
class ServiceArtifacts:
    """Everything the instrumentation captured for one service."""

    service: str
    #: (iform name, rep element count) in execution order, sampled
    instruction_stream: List[Tuple[str, float]] = field(default_factory=list)
    #: total dynamic instructions per request, per sampled request
    instructions_per_request: List[float] = field(default_factory=list)
    #: data-side address traces, one per touched memory region
    data_regions: List["RegionTrace"] = field(default_factory=list)
    #: instruction-side address traces, one per code region
    instr_regions: List["RegionTrace"] = field(default_factory=list)
    branch_sites: List[BranchSiteTrace] = field(default_factory=list)
    dep_samples: List[DepSample] = field(default_factory=list)
    #: (request sequence number, invocation), in order
    syscall_log: List[Tuple[int, SyscallInvocation]] = field(
        default_factory=list)
    #: request sequence number -> operation name (joined from tracing:
    #: the tracer tags each server span with its operation, so the
    #: instrumentation can attribute per-request streams to endpoints)
    handler_of_request: Dict[int, str] = field(default_factory=dict)
    requests_observed: int = 0
    threads: List[ThreadObservation] = field(default_factory=list)
    counters: Optional[ServiceMetrics] = None
    observed_handler_mix: Dict[str, float] = field(default_factory=dict)
    observed_connections: int = 0
    observed_qps: float = 0.0
    #: the profiling driver kept one outstanding request per connection
    observed_closed_loop: bool = False
    #: observed RPC calls: handler -> list of (target service, target
    #: operation, req_bytes, resp_bytes, parallel_group) — from tracing,
    #: interface-level only
    rpc_calls: Dict[str, List[Tuple[str, str, float, float, Optional[int]]]] = (
        field(default_factory=dict))
    #: memory the OS reports resident for the process (RSS)
    observed_resident_bytes: float = 0.0
    #: hot text footprint reported by binary analysis (objdump/perf)
    observed_hot_code_bytes: float = 0.0
    #: sizes of files the service touched (stat() during profiling)
    file_sizes: Dict[str, float] = field(default_factory=dict)



# --------------------------------------------------------------------- #
# persistence (digest-stamped envelopes)
# --------------------------------------------------------------------- #
#: schema name stamped into persisted ServiceArtifacts envelopes
ARTIFACTS_SCHEMA = "service-artifacts"
#: payload schema version (bump when the dataclass layout changes)
ARTIFACTS_VERSION = 1


def save_artifacts(path: str, artifacts: ServiceArtifacts) -> str:
    """Persist one service's artifacts atomically, digest-stamped.

    Profiling a real deployment is the expensive half of a clone run;
    saving its artifacts lets a later session re-clone (or re-validate)
    without re-profiling. The envelope format detects truncation and
    bit-rot on load instead of feeding damaged traces to the generator.
    """
    from repro.validation import integrity

    return integrity.save_object(path, artifacts, schema=ARTIFACTS_SCHEMA,
                                 version=ARTIFACTS_VERSION)


def load_artifacts(path: str) -> ServiceArtifacts:
    """Load artifacts saved by :func:`save_artifacts`.

    Raises :class:`~repro.util.errors.ArtifactIntegrityError` (after
    quarantining the file) when the envelope fails verification, and
    ``FileNotFoundError`` when it simply is not there.
    """
    from repro.validation import integrity

    loaded = integrity.load_object(path, schema=ARTIFACTS_SCHEMA,
                                   max_version=ARTIFACTS_VERSION)
    if not isinstance(loaded, ServiceArtifacts):
        raise ConfigurationError(
            f"{path}: envelope holds {type(loaded).__name__}, "
            f"expected ServiceArtifacts")
    return loaded
