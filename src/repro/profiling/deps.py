"""Data-dependency profiling (§4.4.6, the DCFG stand-in).

Quantises sampled RAW/WAR/WAW register dependency distances into the 11
exponential bins 1..1024 and measures the pointer-chase fraction that
bounds memory-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hw.ir import DEP_DISTANCE_BINS
from repro.profiling.artifacts import ServiceArtifacts
from repro.util.errors import ProfilingError
from repro.util.quantize import bin_index


@dataclass
class DependencyDistanceProfile:
    """Quantised dependency-distance distributions."""

    raw: Dict[int, float] = field(default_factory=dict)
    war: Dict[int, float] = field(default_factory=dict)
    waw: Dict[int, float] = field(default_factory=dict)
    pointer_chase_frac: float = 0.0

    def mean_raw(self) -> float:
        """Weighted mean of the quantised RAW distances."""
        total = sum(self.raw.values())
        if total <= 0:
            return 0.0
        return sum(edge * w for edge, w in self.raw.items()) / total


def _quantise_into(target: Dict[int, float], distance: float) -> None:
    edge = DEP_DISTANCE_BINS[bin_index(max(1.0, distance),
                                       DEP_DISTANCE_BINS)]
    target[edge] = target.get(edge, 0.0) + 1.0


def profile_dependencies(
    artifacts: ServiceArtifacts,
) -> DependencyDistanceProfile:
    """Extract the dependency profile from DCFG samples."""
    if not artifacts.dep_samples:
        raise ProfilingError(f"{artifacts.service}: no dependency samples")
    profile = DependencyDistanceProfile()
    chases = 0
    for sample in artifacts.dep_samples:
        _quantise_into(profile.raw, sample.raw)
        _quantise_into(profile.war, sample.war)
        _quantise_into(profile.waw, sample.waw)
        if sample.pointer_chase:
            chases += 1
    profile.pointer_chase_frac = chases / len(artifacts.dep_samples)
    return profile
