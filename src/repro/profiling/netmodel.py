"""Network-model profiling (§4.3.1).

Classifies the server-side wait discipline (blocking / non-blocking /
I/O multiplexing) and the client-side call style (synchronous /
asynchronous) from the observed syscall mix, and extracts the message
size statistics used to parameterise the synthetic network interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.app.skeleton import ClientNetworkModel, ServerNetworkModel
from repro.profiling.artifacts import ServiceArtifacts
from repro.util.errors import ProfilingError
from repro.util.stats import OnlineStats

#: multiplexing wait syscalls
MULTIPLEX_WAITS = ("epoll_wait", "poll", "select")


@dataclass
class NetworkModelProfile:
    """The inferred network model."""

    server_model: ServerNetworkModel
    client_model: ClientNetworkModel
    rx_bytes: OnlineStats
    tx_bytes: OnlineStats
    waits_per_request: float
    rx_per_request: float
    tx_per_request: float


def profile_network_model(artifacts: ServiceArtifacts) -> NetworkModelProfile:
    """Classify the network model from the syscall log."""
    if not artifacts.syscall_log:
        raise ProfilingError(f"{artifacts.service}: empty syscall log")
    counts: Dict[str, int] = {}
    rx = OnlineStats()
    tx = OnlineStats()
    for _, invocation in artifacts.syscall_log:
        counts[invocation.name] = counts.get(invocation.name, 0) + 1
        device = invocation.spec.device
        if device == "net_rx":
            rx.add(invocation.nbytes)
        elif device == "net_tx":
            tx.add(invocation.nbytes)
    requests = max(1, artifacts.requests_observed)
    multiplex_waits = sum(counts.get(name, 0) for name in MULTIPLEX_WAITS)
    rx_count = sum(counts.get(name, 0)
                   for name in ("recv", "recvmsg"))
    if multiplex_waits > 0:
        server = ServerNetworkModel.IO_MULTIPLEXING
    elif rx_count >= requests:
        # Threads block directly in recv() per request.
        server = ServerNetworkModel.BLOCKING
    else:
        server = ServerNetworkModel.NONBLOCKING
    # Synchronous clients pair each outbound call with an in-order
    # blocking receive on the calling thread. Asynchronous clients
    # register response sockets with a reactor instead: epoll_ctl calls
    # tracking the outbound-call rate are their signature.
    tx_count = sum(counts.get(n, 0)
                   for n in ("send", "sendmsg", "writev"))
    reactor_registrations = counts.get("epoll_ctl", 0)
    if tx_count > 0 and reactor_registrations >= 0.3 * tx_count:
        client = ClientNetworkModel.ASYNCHRONOUS
    else:
        client = ClientNetworkModel.SYNCHRONOUS
    return NetworkModelProfile(
        server_model=server,
        client_model=client,
        rx_bytes=rx,
        tx_bytes=tx,
        waits_per_request=multiplex_waits / requests,
        rx_per_request=rx_count / requests,
        tx_per_request=(
            sum(counts.get(n, 0) for n in ("send", "sendmsg", "writev"))
            / requests),
    )
