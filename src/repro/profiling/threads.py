"""Thread-model profiling (§4.3.2).

Clusters observed threads by call-graph similarity (tree-edit distance +
agglomerative clustering with an unknown cluster count), classifies each
cluster's role, lifecycle, and trigger, and detects connection-scaling
classes by comparing thread counts across the two connection settings the
prober experimented with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.clustering import agglomerative_cluster
from repro.analysis.treedit import CallTree, normalized_tree_distance
from repro.profiling.artifacts import ServiceArtifacts, ThreadObservation
from repro.util.errors import ProfilingError

#: normalised tree-edit distance below which threads share a class
CLUSTER_THRESHOLD = 0.4


def _tree_labels(tree: CallTree) -> List[str]:
    labels = [tree.label]
    for child in tree.children:
        labels.extend(_tree_labels(child))
    return labels


@dataclass
class ReconstructedThreadClass:
    """One inferred thread class."""

    name: str
    role: str                         # "acceptor" | "worker" | "background"
    count: int
    scales_with_connections: bool
    trigger: str                      # "socket" | "timer" | ...
    short_lived: bool
    representative_tree: CallTree = None


@dataclass
class ThreadModelProfile:
    """The inferred thread model."""

    classes: List[ReconstructedThreadClass] = field(default_factory=list)

    def worker_classes(self) -> List[ReconstructedThreadClass]:
        """All classes with the worker role."""
        return [cls for cls in self.classes if cls.role == "worker"]

    def total_workers(self, connections: int) -> int:
        """Worker threads expected at a connection count."""
        total = 0
        for cls in self.worker_classes():
            if cls.scales_with_connections:
                total += connections
            else:
                total += cls.count
        return max(1, total)


def _classify_role(labels: List[str], trigger: str) -> str:
    if "accept" in labels:
        return "acceptor"
    if trigger == "timer" or "nanosleep" in labels:
        return "background"
    return "worker"


def profile_thread_model(artifacts: ServiceArtifacts) -> ThreadModelProfile:
    """Cluster and classify the observed threads."""
    if not artifacts.threads:
        raise ProfilingError(f"{artifacts.service}: no thread observations")
    observations = artifacts.threads
    clusters = agglomerative_cluster(
        observations,
        distance=lambda a, b: normalized_tree_distance(a.call_tree,
                                                       b.call_tree),
        threshold=CLUSTER_THRESHOLD,
    )
    connection_settings = sorted(
        {obs.connections_at_observation for obs in observations})
    profile = ThreadModelProfile()
    for index, cluster in enumerate(clusters):
        representative: ThreadObservation = cluster[0]
        labels = _tree_labels(representative.call_tree)
        trigger_votes: Dict[str, int] = {}
        for obs in cluster:
            trigger_votes[obs.wakeup_trigger] = (
                trigger_votes.get(obs.wakeup_trigger, 0) + 1)
        trigger = max(trigger_votes, key=trigger_votes.get)
        role = _classify_role(labels, trigger)
        # Count per connection setting to detect scaling.
        counts_by_setting = {
            setting: sum(1 for obs in cluster
                         if obs.connections_at_observation == setting)
            for setting in connection_settings
        }
        scales = False
        if len(connection_settings) >= 2 and role == "worker":
            low, high = connection_settings[0], connection_settings[-1]
            low_count = counts_by_setting.get(low, 0)
            high_count = counts_by_setting.get(high, 0)
            if low_count > 0 and high_count > low_count:
                # Counts grow roughly with connections -> dynamic pool.
                scales = (high_count / low_count
                          > 0.5 * (high / max(1, low)))
        count = counts_by_setting.get(connection_settings[-1], len(cluster))
        short_lived = (
            sum(1 for obs in cluster if obs.spawned_by_clone
                and obs.lifetime_fraction < 0.95) > len(cluster) / 2
        )
        profile.classes.append(ReconstructedThreadClass(
            name=f"class_{index}",
            role=role,
            count=max(1, count),
            scales_with_connections=scales,
            trigger=trigger,
            short_lived=short_lived,
            representative_tree=representative.call_tree,
        ))
    return profile
