"""System-call profiling (§4.4.1, the SystemTap stand-in).

Aggregates the syscall log into, per operation (endpoint): the ordered
per-request syscall template with average counts, payload-size means, and
file targets — everything the generator needs to replay the kernel-side
behaviour, including page-cache-relevant arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.profiling.artifacts import ServiceArtifacts
from repro.util.errors import ProfilingError


@dataclass(frozen=True)
class SyscallTemplateEntry:
    """One position in the reconstructed per-request syscall sequence."""

    name: str
    count_per_request: float
    mean_bytes: float
    file: Optional[str] = None
    write: bool = False
    mean_position: float = 0.0


@dataclass
class SyscallProfile:
    """Per-operation syscall templates plus global statistics."""

    templates: Dict[str, List[SyscallTemplateEntry]] = field(
        default_factory=dict)
    counts_per_request: Dict[str, float] = field(default_factory=dict)
    files_seen: Dict[str, int] = field(default_factory=dict)

    def template(self, operation: str) -> List[SyscallTemplateEntry]:
        """The ordered template for one operation."""
        found = self.templates.get(operation)
        if found is None:
            raise ProfilingError(f"no syscall template for {operation!r}")
        return found


def profile_syscalls(artifacts: ServiceArtifacts) -> SyscallProfile:
    """Extract per-operation syscall templates from the log."""
    if not artifacts.syscall_log:
        raise ProfilingError(f"{artifacts.service}: empty syscall log")
    profile = SyscallProfile()
    # Group log entries per request, keeping order.
    per_request: Dict[int, List] = {}
    for seq, invocation in artifacts.syscall_log:
        per_request.setdefault(seq, []).append(invocation)
    # Group requests per operation.
    per_operation: Dict[str, List[List]] = {}
    for seq, invocations in per_request.items():
        operation = artifacts.handler_of_request.get(seq, "default")
        per_operation.setdefault(operation, []).append(invocations)
    global_counts: Dict[str, float] = {}
    total_requests = max(1, len(per_request))
    for operation, request_lists in per_operation.items():
        # Aggregate identical (name, file, write) keys across requests,
        # tracking average position to preserve ordering.
        stats: Dict[Tuple[str, Optional[str], bool], Dict[str, float]] = {}
        for invocations in request_lists:
            for position, invocation in enumerate(invocations):
                key = (invocation.name, invocation.file, invocation.write)
                entry = stats.setdefault(
                    key, {"count": 0.0, "bytes": 0.0, "position": 0.0})
                entry["count"] += 1.0
                entry["bytes"] += invocation.nbytes
                entry["position"] += position
                if invocation.file is not None:
                    profile.files_seen[invocation.file] = (
                        profile.files_seen.get(invocation.file, 0) + 1)
        n_requests = len(request_lists)
        template = []
        for (name, file, write), entry in stats.items():
            template.append(SyscallTemplateEntry(
                name=name,
                count_per_request=entry["count"] / n_requests,
                mean_bytes=entry["bytes"] / entry["count"],
                file=file,
                write=write,
                mean_position=entry["position"] / entry["count"],
            ))
        template.sort(key=lambda e: e.mean_position)
        profile.templates[operation] = template
    for _, invocations in per_request.items():
        for invocation in invocations:
            global_counts[invocation.name] = (
                global_counts.get(invocation.name, 0.0) + 1.0)
    profile.counts_per_request = {
        name: count / total_requests for name, count in global_counts.items()
    }
    return profile
