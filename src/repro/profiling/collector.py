"""The instrumentation harness.

Runs the target deployment under the profiling load with full tracing,
then — playing the role of SystemTap + Intel SDE + Valgrind attached to
each service process — materialises per-service execution artifacts:
sampled instruction streams, address traces, branch outcome histories,
dependency samples, syscall logs, and thread observations.

The harness necessarily reads the application models to synthesise the
streams (it *is* the instrumentation, running inside the profiled
process); the feature extractors downstream consume only the artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.treedit import CallTree
from repro.app.program import ComputeOp, Handler, RpcOp, SyscallOp
from repro.app.service import Deployment, ServiceSpec
from repro.app.skeleton import ClientNetworkModel, ThreadTrigger
from repro.hw.branch import generate_branch_outcomes
from repro.kernelsim.syscalls import SyscallInvocation
from repro.hw.ir import BlockSpec
from repro.loadgen.generator import LoadSpec
from repro.profiling.artifacts import (
    BranchSiteTrace,
    DepSample,
    ProfilingBudget,
    ServiceArtifacts,
    ThreadObservation,
)
from repro.runtime.experiment import ExperimentConfig, run_experiment
from repro.tracing.span import Span, SpanKind
from repro.tracing.tracer import Tracer
from repro.util.errors import ProfilingError
from repro.util.quantize import next_pow2
from repro.util.rng import RngStream
from repro.util.stats import Histogram

#: average encoded instruction length assumed by the i-side maths (§4.4.5)
INSTRUCTION_BYTES = 4


@dataclass
class ApplicationProfile:
    """All artifacts of one profiling session."""

    entry_service: str
    services: Dict[str, ServiceArtifacts]
    spans: List[Span]
    platform_name: str
    profiling_qps: float

    def artifacts(self, service: str) -> ServiceArtifacts:
        """Artifacts for one service."""
        found = self.services.get(service)
        if found is None:
            raise ProfilingError(f"no artifacts for service {service!r}")
        return found


class _AddressArena:
    """Assigns disjoint virtual regions for observed working sets."""

    def __init__(self, base: int) -> None:
        self._next = base

    def region(self, size_bytes: int) -> int:
        aligned = next_pow2(max(64, int(size_bytes)))
        base = self._next
        self._next += aligned * 2
        return base


class _RegionAccumulator:
    """Accumulates one region's sampled accesses across requests.

    Implements the spatial (set-sampling) discipline: regions larger than
    ``target_lines`` cache lines are observed through a strided 1-in-K
    line sample, recorded as the trace's ``line_sample_factor``.
    """

    TARGET_LINES = 512

    def __init__(self, base: int, wset_bytes: int,
                 shared_frac: float = 0.0, chase_frac: float = 0.0) -> None:
        self.base = base
        self.wset_bytes = max(64, int(wset_bytes))
        self.shared_frac = float(shared_frac)
        self.chase_frac = float(chase_frac)
        lines = max(1, self.wset_bytes // 64)
        self.stride_lines = max(1, int(np.ceil(lines / self.TARGET_LINES)))
        self.grid = max(1, lines // self.stride_lines)
        self.offsets: List[np.ndarray] = []
        self.weights: List[np.ndarray] = []
        self.offsets_t2: List[np.ndarray] = []
        self._position = 0

    def record(self, pattern, total_accesses: float, length: int,
               rng: np.random.Generator) -> None:
        """Sample ``length`` grid accesses standing for ``total_accesses``."""
        from repro.hw.ir import MemPattern
        length = max(8, min(length, 4 * self.grid + 16))
        if pattern is MemPattern.SEQUENTIAL:
            # Sequential position persists across requests: successive
            # requests stream successive chunks (different values of the
            # same store), wrapping only after a full region sweep.
            grid_offsets = (self._position + np.arange(length)) % self.grid
            self._position = int((self._position + length) % self.grid)
        elif pattern is MemPattern.STRIDED:
            grid_offsets = (self._position + np.arange(length) * 2) % self.grid
            self._position = int((self._position + length * 2) % self.grid)
        elif pattern is MemPattern.RANDOM:
            grid_offsets = rng.integers(0, self.grid, size=length)
        else:  # POINTER_CHASE
            perm = rng.permutation(self.grid)
            grid_offsets = perm[np.arange(length) % self.grid]
        addresses = (self.base
                     + grid_offsets.astype(np.int64)
                     * self.stride_lines * 64)
        self.offsets.append(addresses)
        self.weights.append(
            np.full(length, total_accesses / length, dtype=np.float64))
        if self.shared_frac > 0.0:
            # A sibling thread touches the shared subset of the region's
            # lines; the rest of its accesses land in its own arena.
            overlap = int(round(length * self.shared_frac))
            perm = rng.permutation(self.grid)
            t2 = (self.base
                  + perm[np.arange(length) % self.grid].astype(np.int64)
                  * self.stride_lines * 64)
            # Shift the non-shared tail outside this region.
            t2[overlap:] += int(next_pow2(self.wset_bytes)) * 8
            self.offsets_t2.append(t2)

    def record_instruction_walk(self, dynamic_instructions: float,
                                length: int) -> None:
        """Sample an instruction-pointer walk cycling over the region."""
        instructions_in_region = max(1, self.wset_bytes // INSTRUCTION_BYTES)
        length = max(16, min(length, 4 * instructions_in_region))
        stride_instr = max(1, int(np.ceil(
            instructions_in_region / max(1, length // 2))))
        stride_bytes = stride_instr * INSTRUCTION_BYTES
        steps = (np.arange(length) * stride_bytes) % self.wset_bytes
        self.stride_lines = max(1, stride_bytes // 64)
        self.offsets.append(self.base + steps.astype(np.int64))
        self.weights.append(np.full(
            length, dynamic_instructions / length, dtype=np.float64))

    def finalize(self):
        from repro.profiling.artifacts import RegionTrace
        if not self.offsets:
            return None
        addresses = np.concatenate(self.offsets)
        span = float(addresses.max() - addresses.min()) + 64.0 * (
            self.stride_lines)
        return RegionTrace(
            addresses=addresses,
            weights=np.concatenate(self.weights),
            line_sample_factor=float(self.stride_lines),
            thread2_addresses=(np.concatenate(self.offsets_t2)
                               if self.offsets_t2 else None),
            region_bytes=span,
            chase_frac=self.chase_frac,
        )


def _handler_mix_from_spans(
    spans: List[Span], service: str
) -> Dict[str, float]:
    mix: Dict[str, float] = {}
    for span in spans:
        if span.kind is SpanKind.SERVER and span.service == service:
            mix[span.operation] = mix.get(span.operation, 0.0) + 1.0
    return mix


def _rpcs_from_spans(
    spans: List[Span], service: str
) -> Dict[str, List[Tuple[str, str, float, float, Optional[int]]]]:
    """Per-handler downstream calls with parallel-group detection.

    Client spans under one server span whose start times coincide were
    issued concurrently (a fan-out); sequential calls start strictly
    after the previous response.
    """
    servers = {
        (s.trace_id, s.span_id): s
        for s in spans if s.kind is SpanKind.SERVER
    }
    callee_by_client: Dict[Tuple[int, int], Span] = {
        (s.trace_id, s.parent_id): s
        for s in spans
        if s.kind is SpanKind.SERVER and s.parent_id is not None
    }
    per_parent: Dict[Tuple[int, int], List[Span]] = {}
    for span in spans:
        if span.kind is not SpanKind.CLIENT or span.parent_id is None:
            continue
        parent = servers.get((span.trace_id, span.parent_id))
        if parent is None or parent.service != service:
            continue
        per_parent.setdefault((span.trace_id, span.parent_id), []).append(span)
    # Use the first complete parent execution per handler as the template.
    result: Dict[str, List[Tuple[str, str, float, float, Optional[int]]]] = {}
    for (trace_id, parent_id), clients in sorted(per_parent.items()):
        parent = servers[(trace_id, parent_id)]
        if parent.operation in result:
            continue
        clients.sort(key=lambda s: (s.start_time, s.span_id))
        calls: List[Tuple[str, str, float, float, Optional[int]]] = []
        group = 0
        last_start = None
        group_size = 0
        for client in clients:
            callee = callee_by_client.get((client.trace_id, client.span_id))
            if callee is None:
                continue
            concurrent = (last_start is not None
                          and abs(client.start_time - last_start) < 1e-9)
            if concurrent:
                group_size += 1
            else:
                group += 1
                group_size = 1
            last_start = client.start_time
            calls.append((
                callee.service,
                callee.operation,
                client.tags.get("request_bytes", 0.0),
                client.tags.get("response_bytes", 0.0),
                group,
            ))
        # Collapse singleton groups to "sequential" (no parallel group).
        group_counts: Dict[int, int] = {}
        for _, _, _, _, g in calls:
            group_counts[g] = group_counts.get(g, 0) + 1
        result[parent.operation] = [
            (t, op, rq, rs, g if group_counts[g] > 1 else None)
            for (t, op, rq, rs, g) in calls
        ]
    return result


def _collect_block_artifacts(
    block: BlockSpec,
    artifacts: ServiceArtifacts,
    arenas: Dict[str, _AddressArena],
    regions: Dict[Tuple[str, object], _RegionAccumulator],
    budget: ProfilingBudget,
    rng: np.random.Generator,
) -> None:
    """Sample one block execution into the artifact streams."""
    iterations = max(1.0, block.iterations)
    # --- instruction stream sample (SDE) -------------------------------
    names = sorted(block.iform_counts)
    counts = np.array([block.iform_counts[n] for n in names], dtype=float)
    per_iter = counts.sum()
    if per_iter > 0:
        n_samples = int(min(budget.max_istream_per_block / 4,
                            max(16, per_iter / 8)))
        probs = counts / counts.sum()
        drawn = rng.choice(len(names), size=n_samples, p=probs)
        for index in drawn:
            name = names[index]
            rep = block.rep_elements if name.startswith(("REP", "REPNZ")) else 0.0
            artifacts.instruction_stream.append((name, rep))
    # --- data address trace (Valgrind, spatially sampled) ---------------
    for spec_index, spec in enumerate(block.mem):
        total = spec.accesses * iterations
        if total < 1:
            continue
        key = ("d", (block.name, spec_index))
        accumulator = regions.get(key)
        if accumulator is None:
            from repro.hw.ir import MemPattern as _MP
            arena = (arenas["shared"] if spec.shared_frac > 0
                     else arenas["private"])
            accumulator = _RegionAccumulator(
                arena.region(spec.wset_bytes), spec.wset_bytes,
                shared_frac=spec.shared_frac,
                chase_frac=(1.0 if spec.pattern is _MP.POINTER_CHASE
                            else 0.0))
            regions[key] = accumulator
        length = int(min(budget.max_accesses_per_spec, max(8, total)))
        accumulator.record(spec.pattern, total, length, rng)
    # --- instruction address trace ---------------------------------------
    code_bytes = max(64, block.static_code_bytes())
    key = ("i", block.name)
    accumulator = regions.get(key)
    if accumulator is None:
        accumulator = _RegionAccumulator(
            arenas["text"].region(code_bytes), code_bytes)
        regions[key] = accumulator
    dynamic_instructions = per_iter * iterations
    accumulator.record_instruction_walk(
        dynamic_instructions,
        int(min(budget.max_istream_per_block, max(16, dynamic_instructions))))


def _collect_branch_artifacts(
    block: BlockSpec,
    artifacts: ServiceArtifacts,
    budget: ProfilingBudget,
    rng: np.random.Generator,
    executions_scale: float,
) -> None:
    code_base = (abs(hash(block.name)) % (1 << 24)) << 8
    for pop_index, population in enumerate(block.branches):
        executions = population.executions * max(1.0, block.iterations)
        if executions <= 0:
            continue
        sites = int(min(budget.max_sites_per_population,
                        population.static_count))
        weight = executions * executions_scale / sites
        for site in range(sites):
            # Per-site statistics jitter around the population's.
            taken = float(np.clip(
                population.taken_rate + rng.normal(0, 0.02), 0.0, 1.0))
            trans = float(np.clip(
                population.transition_rate + rng.normal(0, 0.02), 0.0, 1.0))
            outcomes = generate_branch_outcomes(
                taken, trans, budget.branch_outcomes_per_site, rng)
            artifacts.branch_sites.append(BranchSiteTrace(
                pc=code_base + 64 * (pop_index * 97 + site),
                outcomes=outcomes,
                executions_weight=weight,
            ))


def _collect_dep_artifacts(
    block: BlockSpec,
    artifacts: ServiceArtifacts,
    budget: ProfilingBudget,
    rng: np.random.Generator,
) -> None:
    def sample_distance(hist: Optional[Histogram], default: float) -> float:
        if hist is None:
            return default
        edge = float(hist.sample(rng, 1)[0])
        # Jitter within the bin (the DCFG reports exact distances).
        return max(1.0, edge * float(rng.uniform(0.75, 1.25)))

    deps = block.deps
    # One sampler per distance kind for the whole block: same sorted key
    # order (hence identical draws) as rebuilding a Histogram per sample.
    raw_hist = Histogram(dict(deps.raw)) if deps.raw else None
    war_hist = Histogram(dict(deps.war)) if deps.war else None
    waw_hist = Histogram(dict(deps.waw)) if deps.waw else None
    for _ in range(budget.dep_samples_per_block):
        artifacts.dep_samples.append(DepSample(
            raw=sample_distance(raw_hist, default=24.0),
            war=sample_distance(war_hist, default=32.0),
            waw=sample_distance(waw_hist, default=48.0),
            pointer_chase=bool(rng.random() < deps.pointer_chase_frac),
        ))


def _call_tree_for_worker(spec: ServiceSpec) -> CallTree:
    """A worker's sampled call graph: the union over handlers it serves.

    Stack sampling over a profiling window observes every handler a
    worker executed, so all workers of one pool share (near-)identical
    aggregated call graphs.
    """
    loop = CallTree("thread_loop")
    loop.add(CallTree(spec.skeleton.wait_syscall()))
    for handler_name in sorted(spec.program.handlers):
        handler = spec.program.handler(handler_name)
        for op in handler.ops:
            if isinstance(op, SyscallOp):
                loop.add(CallTree(op.invocation.name))
            elif isinstance(op, ComputeOp):
                loop.add(CallTree(
                    f"fn_{abs(hash(op.block.name)) % 99991:05d}"))
            elif isinstance(op, RpcOp):
                rpc = loop.add(CallTree("rpc_call"))
                rpc.add(CallTree("sendmsg"))
                rpc.add(CallTree("recv"))
    return loop


def _thread_observations(
    spec: ServiceSpec,
    connections: int,
    rng: np.random.Generator,
) -> List[ThreadObservation]:
    observations: List[ThreadObservation] = []
    thread_id = 0
    mix = spec.mix_histogram()
    handler_names, probs = mix.keys_and_probs()
    for cls in spec.skeleton.thread_classes:
        if cls.role == "worker":
            count = (min(connections, spec.skeleton.max_connections)
                     if cls.scales_with_connections else cls.count)
        else:
            count = cls.count
        for _ in range(max(1, count)):
            if cls.role == "worker":
                tree = _call_tree_for_worker(spec)
            elif cls.role == "acceptor":
                tree = CallTree.from_nested(
                    ("thread_loop",
                     [(spec.skeleton.wait_syscall(), []), ("accept", []),
                      ("epoll_ctl", [])]))
            else:
                tree = CallTree.from_nested(
                    ("thread_loop",
                     [("nanosleep", []),
                      (f"fn_{int(rng.integers(0, 99991)):05d}", [])]))
            # Observation noise: an extra frame shows up occasionally.
            if rng.random() < 0.2:
                tree.add(CallTree("gettimeofday"))
            trigger = {
                ThreadTrigger.SOCKET: "socket",
                ThreadTrigger.TIMER: "timer",
                ThreadTrigger.CONDVAR: "condvar",
                ThreadTrigger.SIGNAL: "signal",
            }[cls.trigger]
            observations.append(ThreadObservation(
                thread_id=thread_id,
                call_tree=tree,
                spawned_by_clone=cls.scales_with_connections,
                lifetime_fraction=(
                    1.0 if not cls.scales_with_connections
                    else float(rng.uniform(0.6, 1.0))),
                wakeup_trigger=trigger,
                connections_at_observation=connections,
            ))
            thread_id += 1
    return observations


def _collect_service_artifacts(
    spec: ServiceSpec,
    mix: Dict[str, float],
    rpcs: Dict[str, List[Tuple[str, float, float, Optional[int]]]],
    counters,
    observed_qps: float,
    connections: int,
    budget: ProfilingBudget,
    rng_stream: RngStream,
    closed_loop: bool = False,
) -> ServiceArtifacts:
    rng = rng_stream.rng("service", spec.name)
    artifacts = ServiceArtifacts(service=spec.name)
    artifacts.counters = counters
    artifacts.observed_handler_mix = dict(mix)
    artifacts.observed_qps = observed_qps
    artifacts.observed_connections = connections
    artifacts.observed_closed_loop = closed_loop
    artifacts.observed_resident_bytes = spec.program.resident_bytes
    # The binary's hot text size is observable (objdump/perf report it).
    artifacts.observed_hot_code_bytes = spec.program.hot_code_bytes
    artifacts.file_sizes = dict(spec.files)
    artifacts.rpc_calls = rpcs
    arenas = {
        "private": _AddressArena(0x10_0000_0000),
        "shared": _AddressArena(0x20_0000_0000),
        "text": _AddressArena(0x40_0000),
    }
    regions: Dict[Tuple[str, object], _RegionAccumulator] = {}
    mix_hist = Histogram(dict(mix) or {
        name: 1.0 for name in spec.program.handlers})
    names, probs = mix_hist.keys_and_probs()
    branch_done: set = set()
    wait_invocation = SyscallInvocation(spec.skeleton.wait_syscall())
    for seq in range(budget.sampled_requests):
        handler_name = str(names[rng.choice(len(names), p=probs)])
        handler = spec.program.handler(handler_name)
        request_instructions = 0.0
        # SystemTap sees the wait syscall the skeleton blocks in.
        artifacts.syscall_log.append((seq, wait_invocation))
        for op in handler.ops:
            if isinstance(op, ComputeOp):
                _collect_block_artifacts(
                    op.block, artifacts, arenas, regions, budget, rng)
                request_instructions += op.block.instructions_per_request
                if op.block.name not in branch_done:
                    branch_done.add(op.block.name)
                    weight = mix_hist.probability(handler_name)
                    _collect_branch_artifacts(
                        op.block, artifacts, budget, rng,
                        executions_scale=max(weight, 1e-6))
                    _collect_dep_artifacts(op.block, artifacts, budget, rng)
            elif isinstance(op, SyscallOp):
                artifacts.syscall_log.append((seq, op.invocation))
            elif isinstance(op, RpcOp):
                # Client-side syscalls SystemTap sees during an RPC. An
                # asynchronous client registers the response socket with
                # its reactor instead of blocking in recv on the same
                # thread — the observable signature of §4.3.1's async
                # client model.
                artifacts.syscall_log.append(
                    (seq, SyscallInvocation("sendmsg",
                                            nbytes=op.request_bytes)))
                if (spec.skeleton.client_model
                        is ClientNetworkModel.ASYNCHRONOUS):
                    artifacts.syscall_log.append(
                        (seq, SyscallInvocation("epoll_ctl")))
                artifacts.syscall_log.append(
                    (seq, SyscallInvocation("recv",
                                            nbytes=op.response_bytes)))
        artifacts.instructions_per_request.append(request_instructions)
        artifacts.handler_of_request[seq] = handler_name
        artifacts.requests_observed += 1
    # Finalise the per-region traces.
    for (side, _), accumulator in regions.items():
        trace = accumulator.finalize()
        if trace is None:
            continue
        if side == "d":
            artifacts.data_regions.append(trace)
        else:
            artifacts.instr_regions.append(trace)
    # Thread probing "experiments with different connections" (§4.3.2).
    artifacts.threads.extend(_thread_observations(spec, connections, rng))
    artifacts.threads.extend(
        _thread_observations(spec, max(2, connections // 2), rng))
    return artifacts


def profile_deployment(
    deployment: Deployment,
    load: LoadSpec,
    config: ExperimentConfig,
    budget: Optional[ProfilingBudget] = None,
    seed: int = 17,
) -> ApplicationProfile:
    """Run one instrumented profiling session over a deployment."""
    budget = budget if budget is not None else ProfilingBudget()
    tracer = Tracer(sample_rate=1.0, seed=seed)
    # shards=None: the instrumented run needs one process-global tracer
    # (spans from every tier feed dependency extraction), which the
    # sharded runner cannot provide. Any shards setting on the config
    # still applies to the non-instrumented runs downstream (fidelity
    # gate sweeps).
    instrumented = replace(
        config,
        tracer=tracer,
        shards=None,
        duration_s=budget.profile_duration_s,
        trace_sample_rate=1.0,
    )
    result = run_experiment(deployment, load, instrumented)
    spans = tracer.finished_spans()
    if not spans:
        raise ProfilingError("profiling run produced no trace spans")
    stream = RngStream(seed, "profiling")
    connections = (load.connections if load.kind == "closed" else 32)
    services: Dict[str, ServiceArtifacts] = {}
    for name, spec in deployment.services.items():
        mix = _handler_mix_from_spans(spans, name)
        if not mix:
            # The tier saw no traffic during profiling; fall back to the
            # declared handler set with uniform weights.
            mix = {handler: 1.0 for handler in spec.program.handlers}
        rpcs = _rpcs_from_spans(spans, name)
        counters = result.service(name)
        observed_qps = counters.requests / max(result.duration_s, 1e-9)
        services[name] = _collect_service_artifacts(
            spec, mix, rpcs, counters, observed_qps, connections, budget,
            stream.child(name), closed_loop=(load.kind == "closed"),
        )
    return ApplicationProfile(
        entry_service=deployment.entry_service,
        services=services,
        spans=spans,
        platform_name=config.platform.name,
        profiling_qps=(load.qps if load.kind == "open" else 0.0),
    )


# --------------------------------------------------------------------- #
# persistence (digest-stamped envelopes)
# --------------------------------------------------------------------- #
#: schema name stamped into persisted ApplicationProfile envelopes
PROFILE_SCHEMA = "application-profile"
#: payload schema version (bump when the profile layout changes)
PROFILE_VERSION = 1


def save_profile(path: str, profile: ApplicationProfile) -> str:
    """Persist a whole profiling session atomically, digest-stamped.

    One file per session: every tier's artifacts plus the span record,
    so ``clone_from_profile`` can re-run later — on another machine,
    against another platform model — without touching the original
    deployment again.
    """
    from repro.validation import integrity

    return integrity.save_object(path, profile, schema=PROFILE_SCHEMA,
                                 version=PROFILE_VERSION)


def load_profile(path: str) -> ApplicationProfile:
    """Load a session saved by :func:`save_profile`.

    Raises :class:`~repro.util.errors.ArtifactIntegrityError` (after
    quarantining the file) when the envelope fails verification.
    """
    from repro.validation import integrity

    loaded = integrity.load_object(path, schema=PROFILE_SCHEMA,
                                   max_version=PROFILE_VERSION)
    if not isinstance(loaded, ApplicationProfile):
        raise ProfilingError(
            f"{path}: envelope holds {type(loaded).__name__}, "
            f"expected ApplicationProfile")
    return loaded
