"""Instruction-mix profiling (§4.4.2, the Intel SDE stand-in).

Builds the dynamic iform distribution from the sampled instruction
stream, measures per-request instruction counts and REP repeat counts,
and clusters the observed iforms hierarchically by functionality,
operands and ALU usage so the generator can pick representatives with
matching hardware resource requirements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.clustering import hierarchical_feature_clusters
from repro.isa.instructions import feature_vector, iform
from repro.profiling.artifacts import ServiceArtifacts
from repro.util.errors import ProfilingError
from repro.util.stats import Histogram

#: Euclidean threshold under which two iforms count as resource-equivalent
CLUSTER_THRESHOLD = 1.35


@dataclass
class InstructionMixProfile:
    """The extracted instruction-mix feature set for one service."""

    mix: Histogram = field(default_factory=Histogram)
    instructions_per_request: float = 0.0
    instructions_per_request_by_handler: Dict[str, float] = field(
        default_factory=dict)
    rep_counts: Dict[str, float] = field(default_factory=dict)
    clusters: List[List[str]] = field(default_factory=list)

    def probability(self, name: str) -> float:
        """Dynamic frequency of one iform."""
        return self.mix.probability(name)

    def branch_fraction(self) -> float:
        """Fraction of dynamic instructions that are conditional branches."""
        total = 0.0
        for name, prob in self.mix.normalized().items():
            form = iform(str(name))
            if form.is_branch and form.name not in ("JMP_rel", "CALL_rel",
                                                    "RET"):
                total += prob
        return total

    def memory_fraction(self) -> float:
        """Fraction of dynamic instructions touching memory."""
        return sum(
            prob for name, prob in self.mix.normalized().items()
            if iform(str(name)).uses_memory
        )


def profile_instruction_mix(artifacts: ServiceArtifacts) -> InstructionMixProfile:
    """Extract the instruction-mix profile from sampled streams."""
    if not artifacts.instruction_stream:
        raise ProfilingError(
            f"{artifacts.service}: no instruction stream captured")
    profile = InstructionMixProfile()
    rep_totals: Dict[str, List[float]] = {}
    for name, rep in artifacts.instruction_stream:
        iform(name)  # validate observation
        profile.mix.add(name)
        if rep > 0:
            rep_totals.setdefault(name, []).append(rep)
    profile.rep_counts = {
        name: sum(values) / len(values) for name, values in rep_totals.items()
    }
    if artifacts.instructions_per_request:
        samples = artifacts.instructions_per_request
        profile.instructions_per_request = sum(samples) / len(samples)
        by_handler: Dict[str, List[float]] = {}
        for seq, value in enumerate(samples):
            handler = artifacts.handler_of_request.get(seq)
            if handler is not None:
                by_handler.setdefault(handler, []).append(value)
        profile.instructions_per_request_by_handler = {
            handler: sum(vals) / len(vals)
            for handler, vals in by_handler.items()
        }
    observed = sorted({name for name, _ in artifacts.instruction_stream})
    vectors = [feature_vector(iform(name)) for name in observed]
    profile.clusters = hierarchical_feature_clusters(
        observed, vectors, threshold=CLUSTER_THRESHOLD)
    return profile
