"""Ditto's profiling toolchain (the SystemTap/Valgrind/SDE/Perf stand-ins).

The collector runs the target deployment under a representative load and
produces *execution artifacts* per service — instruction streams, data and
instruction address traces, branch outcome traces, dependency-distance
samples, syscall logs, thread observations, performance counters, and
distributed-tracing spans. Feature extractors then turn artifacts into
the platform-independent feature set the generator consumes (§4.4).

The extractors never see the application models — only the artifacts —
so the reconstruction carries genuine sampling and quantisation error,
which the fine-tuner (§4.5) subsequently reduces.
"""

from repro.profiling.artifacts import (
    BranchSiteTrace,
    DepSample,
    ProfilingBudget,
    ServiceArtifacts,
    ThreadObservation,
)
from repro.profiling.collector import ApplicationProfile, profile_deployment
from repro.profiling.instmix import InstructionMixProfile, profile_instruction_mix
from repro.profiling.branches import BranchProfile, profile_branches
from repro.profiling.wset import (
    WorkingSetProfile,
    invert_data_hits,
    invert_instruction_hits,
    profile_working_sets,
)
from repro.profiling.deps import DependencyDistanceProfile, profile_dependencies
from repro.profiling.syscalls import SyscallProfile, profile_syscalls
from repro.profiling.threads import ThreadModelProfile, profile_thread_model
from repro.profiling.netmodel import NetworkModelProfile, profile_network_model

__all__ = [
    "ApplicationProfile",
    "BranchProfile",
    "BranchSiteTrace",
    "DepSample",
    "DependencyDistanceProfile",
    "InstructionMixProfile",
    "NetworkModelProfile",
    "ProfilingBudget",
    "ServiceArtifacts",
    "SyscallProfile",
    "ThreadModelProfile",
    "ThreadObservation",
    "WorkingSetProfile",
    "invert_data_hits",
    "invert_instruction_hits",
    "profile_branches",
    "profile_dependencies",
    "profile_deployment",
    "profile_instruction_mix",
    "profile_network_model",
    "profile_syscalls",
    "profile_thread_model",
    "profile_working_sets",
]
