"""Branch-behaviour profiling (§4.4.3).

Measures per-site taken and transition rates from outcome traces,
quantises both onto the log-scale grid 2^-1 .. 2^-10, and aggregates an
execution-weighted distribution over (taken-exponent, transition-
exponent, dominant-direction) tuples, plus the static-site count that
drives predictor aliasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.profiling.artifacts import ServiceArtifacts
from repro.util.errors import ProfilingError
from repro.util.quantize import LogScaleQuantizer
from repro.util.stats import Histogram

#: (taken exponent m, transition exponent n, dominant direction taken?)
RateBin = Tuple[int, int, bool]


@dataclass
class BranchProfile:
    """The extracted branch feature set."""

    rate_distribution: Histogram = field(default_factory=Histogram)
    static_sites: int = 0
    mean_taken_rate: float = 0.0
    mean_transition_rate: float = 0.0

    def sample_bins(self, rng, size: int) -> List[RateBin]:
        """Draw rate bins for generated branch instructions."""
        return [tuple(b) for b in self.rate_distribution.sample(rng, size)]

    @staticmethod
    def rates_for_bin(bin_: RateBin) -> Tuple[float, float]:
        """Convert a quantised bin back to (taken_rate, transition_rate)."""
        m, n, taken_dominant = bin_
        quantizer = LogScaleQuantizer()
        folded = quantizer.value(m)
        taken = 1.0 - folded if taken_dominant else folded
        transition = quantizer.value(n)
        return taken, transition


def profile_branches(
    artifacts: ServiceArtifacts,
    max_exponent: int = 10,
) -> BranchProfile:
    """Extract the branch profile from per-site outcome traces."""
    if not artifacts.branch_sites:
        raise ProfilingError(f"{artifacts.service}: no branch traces")
    quantizer = LogScaleQuantizer(max_exponent=max_exponent)
    profile = BranchProfile()
    weighted_taken = 0.0
    weighted_transition = 0.0
    total_weight = 0.0
    for site in artifacts.branch_sites:
        taken = site.taken_rate
        transition = site.transition_rate
        bin_: RateBin = (
            quantizer.quantize(taken),
            quantizer.quantize(transition),
            taken >= 0.5,
        )
        profile.rate_distribution.add(bin_, site.executions_weight)
        weighted_taken += taken * site.executions_weight
        weighted_transition += transition * site.executions_weight
        total_weight += site.executions_weight
    profile.static_sites = len({site.pc for site in artifacts.branch_sites})
    if total_weight > 0:
        profile.mean_taken_rate = weighted_taken / total_weight
        profile.mean_transition_rate = weighted_transition / total_weight
    return profile
