"""Discrete-event simulation engine.

A small, fast, generator-based DES kernel in the style of SimPy: processes
are Python generators that ``yield`` events; the environment advances a
virtual clock through a binary-heap event queue. Everything higher in the
stack (network stack, disk queues, thread scheduling, load generation) is
built from these primitives.
"""

from repro.sim.engine import Environment, Event, Interrupt, Process, Timeout
from repro.sim.resources import Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Store",
]
