"""Core event loop, events and processes for discrete-event simulation.

The engine is the innermost loop of every Ditto experiment: profiling
sweeps, tuning iterations and the fig5-fig11 benchmarks all bottom out
in :meth:`Environment.step`. The hot paths are therefore written for
allocation economy while preserving, exactly, the scheduling semantics
the rest of the stack depends on (see DESIGN.md "Engine invariants"):

* events dispatch in (time, insertion counter) order — FIFO among
  same-timestamp events;
* a process yielding an already-triggered event resumes on the *next*
  scheduling round (via a lightweight :class:`_Resume` queue entry, not
  a proxy ``Event``), consuming exactly one counter slot;
* ``Timeout`` objects are pooled per environment and recycled only when
  provably unreferenced, so reuse is invisible to callers;
* an empty fault plan / absent telemetry leaves the schedule untouched,
  keeping runs bit-identical.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.util.errors import SimBudgetExceededError, SimulationError

#: cap on the per-environment freelist of recycled Timeout objects
_TIMEOUT_POOL_MAX = 1024


class Event:
    """A one-shot occurrence at a point in simulated time.

    Processes wait on events by yielding them. An event carries an optional
    ``value`` delivered to every waiter when it succeeds. Events may be
    *succeeded* (normal) or *failed* (the waiting process sees the stored
    exception raised at its yield point).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception when failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Prefer :meth:`Environment.timeout`, which recycles triggered-and-
    dispatched instances from a per-environment pool.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Resume:
    """Queue entry resuming a process whose yield target already triggered.

    Replaces the former proxy-``Event`` mechanism: one slotted object, no
    callback list, no closure — but the same single counter slot, so the
    dispatch order is identical. ``target is None`` marks the process
    bootstrap (first ``send(None)``). ``process`` is cleared to cancel
    the entry (e.g. when an interrupt supersedes the pending resume).
    """

    __slots__ = ("process", "target")

    def __init__(self, process: "Process", target: Optional[Event]) -> None:
        self.process = process
        self.target = target

    def fire(self, env: "Environment") -> None:
        process = self.process
        if process is None:
            return
        process._pending = None
        target = self.target
        if target is None:
            process._step_send(None)
        else:
            process._waiting_on = None
            if target._ok:
                process._step_send(target._value)
            else:
                process._step_throw(target._value)


class _Throw:
    """Queue entry delivering an :class:`Interrupt` into a process."""

    __slots__ = ("process", "cause")

    def __init__(self, process: "Process", cause: Any) -> None:
        self.process = process
        self.cause = cause

    def fire(self, env: "Environment") -> None:
        process = self.process
        if process._triggered:
            return
        # Detach again at fire time: a registration created between the
        # interrupt() call and this dispatch (e.g. the process was only
        # bootstrapping when interrupted) must not double-step it later.
        process._detach()
        process._step_throw(Interrupt(self.cause))


class _Deferred:
    """Queue entry re-delivering an already-triggered event to a callback.

    Used by the combinators so a pre-triggered member still propagates on
    the next scheduling round (ordering stays sane) without allocating a
    proxy ``Event``.
    """

    __slots__ = ("callback", "event")

    def __init__(self, callback: Callable[[Event], None], event: Event) -> None:
        self.callback = callback
        self.event = event

    def fire(self, env: "Environment") -> None:
        self.callback(self.event)


class Process(Event):
    """Wraps a generator as a schedulable simulation process.

    The process is itself an event that triggers with the generator's
    return value when it finishes, so processes can wait on each other
    (fork/join) simply by yielding the child process.

    An exception escaping the generator *fails* the process event:
    every waiter sees it re-raised at its own yield point (the SimPy
    semantic), which is how injected faults propagate from a device
    process up through RPC and request handlers. A failure nobody
    waits on is dropped with the process.
    """

    __slots__ = ("_generator", "_waiting_on", "_pending", "_on_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # The one bound-method callback this process registers on yield
        # targets — allocated once instead of per yield.
        self._on_target = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        entry = _Resume(self, None)
        self._pending: Optional[_Resume] = entry
        env._push(entry)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def _detach(self) -> None:
        """Forget the current wait: deregister callback, cancel resumes."""
        waiting = self._waiting_on
        if waiting is not None:
            callbacks = waiting.callbacks
            if callbacks:
                try:
                    callbacks.remove(self._on_target)
                except ValueError:
                    pass
        pending = self._pending
        if pending is not None and pending.target is not None:
            # Cancel a pending fast-resume so the interrupt below is the
            # only thing that steps the generator (a cancelled bootstrap,
            # by contrast, would mean the process body never ran at all —
            # bootstraps stay scheduled).
            pending.process = None
            self._pending = None
        self._waiting_on = None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._triggered:
            return
        self._detach()
        self.env._push(_Throw(self, cause))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step_send(event._value)
        else:
            self._step_throw(event._value)

    def _step_send(self, value: Any) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            # An un-caught interrupt terminates the process quietly.
            if not self._triggered:
                self.succeed(None)
            return
        except Exception as error:
            # The generator died: fail the process event so waiters see
            # the exception at their yield point.
            if not self._triggered:
                self.fail(error)
            return
        self._wait_on(target)

    def _step_throw(self, exception: BaseException) -> None:
        try:
            target = self._generator.throw(exception)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            if not self._triggered:
                self.succeed(None)
            return
        except Exception as error:
            if not self._triggered:
                self.fail(error)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        cls = target.__class__
        if cls is not Timeout:
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, "
                    f"expected an Event"
                )
            if target.env is not self.env:
                raise SimulationError(
                    "process yielded an event from another Environment")
            if target._triggered:
                # Already-triggered non-timeout events resume the process
                # on the next scheduling round (value already available).
                entry = _Resume(self, target)
                self._pending = entry
                self._waiting_on = target
                self.env._push(entry)
                return
        elif target.env is not self.env:
            raise SimulationError(
                "process yielded an event from another Environment")
        self._waiting_on = target
        target.callbacks.append(self._on_target)


class Environment:
    """The simulation environment: clock plus event queue.

    ``timeline`` is the telemetry hook point: an optional
    :class:`~repro.telemetry.timeline.TimelineRun` that instrumented
    components (service runtimes, kernel devices) emit simulated-time
    events through. It is observation-only — the engine itself never
    consults it, so a timed and an untimed run schedule identically.

    ``faults`` is the fault-injection hook point: an optional
    :class:`~repro.faults.injector.FaultInjector` that instrumented
    devices consult at their injection points (normally installed via
    ``FaultInjector.attach``). The engine itself never consults it, and
    components treat ``None`` as "no faults", so an un-instrumented run
    schedules identically to one with no injector attached.
    """

    def __init__(self, initial_time: float = 0.0,
                 timeline: Optional[Any] = None,
                 faults: Optional[Any] = None) -> None:
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._counter = 0
        self._timeout_pool: List[Timeout] = []
        self.timeline = timeline
        self.faults = faults

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now.

        Serves from the environment's freelist of recycled ``Timeout``
        instances when possible; a recycled timeout is indistinguishable
        from a fresh one (instances are only recycled once dispatched
        and provably unreferenced).
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            timeout = pool.pop()
            timeout.delay = delay
            timeout._value = value
            timeout._ok = True
            timeout._scheduled = True
            heapq.heappush(self._queue,
                           (self._now + delay, self._counter, timeout))
            self._counter += 1
            return timeout
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when every event in ``events`` has.

        Delivers the list of individual values, in input order. Once the
        combinator resolves (first failure, or last success), its
        callbacks are deregistered from every still-pending member, so
        long-lived losing events do not retain the combinator's state.

        A member that is queued but not yet dispatched — every fresh
        :class:`Timeout` (triggered at creation, fires at ``delay``), or
        an event succeeded earlier this timestamp — counts as *pending*:
        the combinator waits for its dispatch instead of treating it as
        already resolved.
        """
        events = list(events)
        done = self.event()
        if not events:
            done.succeed([])
            return done
        values: List[Any] = [None] * len(events)
        pending = [len(events)]
        callbacks: List[Callable[[Event], None]] = []

        def deregister() -> None:
            for event, callback in zip(events, callbacks):
                try:
                    event.callbacks.remove(callback)
                except ValueError:
                    pass

        def make_callback(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                if done._triggered:
                    return
                if not event._ok:
                    done.fail(event._value)
                    deregister()
                    return
                values[index] = event._value
                pending[0] -= 1
                if pending[0] == 0:
                    done.succeed(list(values))

            return callback

        for index, event in enumerate(events):
            callback = make_callback(index)
            callbacks.append(callback)
            if event._triggered and not event._scheduled:
                # Already dispatched: its callbacks have run, so a new
                # one would never fire. Propagate on the next scheduling
                # round instead (formerly a proxy Event).
                self._push(_Deferred(callback, event))
            else:
                event.callbacks.append(callback)
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds as soon as any event in ``events`` does.

        When the race resolves, the combinator's callback is removed from
        every losing event that has not yet dispatched — otherwise a
        long-lived loser (a response that never arrives, a far-future
        timeout) would pin the combinator's closure for its lifetime.

        A queued-but-undispatched member (every fresh :class:`Timeout`)
        is *pending*, not already-won: racing a response against
        ``timeout(t)`` resolves at the first of the two dispatches, so
        the timeout only wins when the response really is late.
        """
        events = list(events)
        done = self.event()
        if not events:
            done.succeed(None)
            return done

        def callback(event: Event) -> None:
            if done._triggered:
                return
            if event._ok:
                done.succeed(event._value)
            else:
                done.fail(event._value)
            for other in events:
                if other is not event:
                    try:
                        other.callbacks.remove(callback)
                    except ValueError:
                        pass

        for event in events:
            if event._triggered and not event._scheduled:
                self._push(_Deferred(callback, event))
            else:
                event.callbacks.append(callback)
        return done

    def _push(self, entry: Any, delay: float = 0.0) -> None:
        """Schedule a raw queue entry (event or lightweight resume)."""
        heapq.heappush(self._queue, (self._now + delay, self._counter, entry))
        self._counter += 1

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, self._counter, event))
        self._counter += 1

    def _dispatch(self, item: Any) -> None:
        """Run one popped queue entry's effects."""
        if isinstance(item, Event):
            # Mark dispatched: run(until=event) keys off this to stop as
            # soon as the awaited event's callbacks have run, instead of
            # draining unrelated queue entries (e.g. the deregistered
            # losers of an any_of race).
            item._scheduled = False
            callbacks = item.callbacks
            if callbacks:
                if len(callbacks) == 1:
                    callback = callbacks[0]
                    callbacks.clear()
                    callback(item)
                else:
                    item.callbacks = []
                    for callback in callbacks:
                        callback(item)
            if item.__class__ is Timeout and getrefcount(item) == 3:
                # Dispatched and provably unreferenced: exactly three
                # refs remain — our parameter, the run()/step() local
                # that passed it in, and getrefcount's own argument.
                # Any caller still holding the timeout inflates the
                # count and keeps it out of the pool.
                pool = self._timeout_pool
                if len(pool) < _TIMEOUT_POOL_MAX:
                    pool.append(item)
        else:
            item.fire(self)

    def step(self) -> None:
        """Process the single next entry in the event queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, item = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        self._dispatch(item)

    def run(
        self,
        until: float | Event | None = None,
        *,
        max_events: Optional[int] = None,
        deadline: Optional[float] = None,
        max_stalled_events: Optional[int] = None,
    ) -> Any:
        """Run the simulation.

        - ``until`` is a number: run until the clock reaches it.
        - ``until`` is an Event: run until that event triggers *and its
          callbacks have dispatched*; its value is returned (its
          exception raised when it failed). The run stops there — queue
          entries scheduled later (e.g. the deregistered losers of an
          ``any_of`` race, or a pending watchdog timeout) stay queued
          instead of being drained and silently advancing the clock.
        - ``until`` is None: run until no events remain.

        Watchdogs (all off by default; a run with none set takes the
        historical fast paths and is bit-identical):

        - ``max_events`` bounds how many queue entries this call may
          dispatch;
        - ``deadline`` bounds simulated time: dispatching an entry
          scheduled past it raises;
        - ``max_stalled_events`` bounds consecutive dispatches that do
          not advance the clock (livelock detection: two processes
          ping-ponging zero-delay events never advance ``now``).

        Each trips a :class:`~repro.util.errors.SimBudgetExceededError`
        naming the queue entry that was running — the stuck process —
        plus the event count and simulated time at the trip.
        """
        if (max_events is not None or deadline is not None
                or max_stalled_events is not None):
            return self._run_guarded(until, max_events, deadline,
                                     max_stalled_events)
        if isinstance(until, Event):
            while not until._triggered or until._scheduled:
                if not self._queue:
                    if until._triggered:
                        break
                    raise SimulationError(self._drained_message(until))
                self.step()
            if not until.ok:
                raise until.value
            return until.value
        queue = self._queue
        pop = heapq.heappop
        dispatch = self._dispatch
        if until is None:
            # Drain everything: the inlined loop batches same-timestamp
            # events without re-entering step() per event.
            while queue:
                when, _, item = pop(queue)
                if when < self._now:
                    raise SimulationError("event scheduled in the past")
                self._now = when
                dispatch(item)
            return None
        horizon = float(until)
        while queue and queue[0][0] <= horizon:
            when, _, item = pop(queue)
            if when < self._now:
                raise SimulationError("event scheduled in the past")
            self._now = when
            dispatch(item)
        self._now = max(self._now, horizon)
        return None

    def _drained_message(self, until: Event) -> str:
        name = getattr(until, "name", "")
        label = f"{type(until).__name__}"
        if name:
            label += f" {name!r}"
        return (f"event queue drained at t={self._now:g} before "
                f"the awaited {label} triggered")

    def _run_guarded(
        self,
        until: float | Event | None,
        max_events: Optional[int],
        deadline: Optional[float],
        max_stalled_events: Optional[int],
    ) -> Any:
        """The watchdogged run loop (any budget active).

        Slower than the fast paths — one comparison per guard per
        dispatch — which is why :meth:`run` only enters it when a
        budget is set: unguarded runs stay on the allocation-free loops
        and their exact historical behaviour.
        """
        queue = self._queue
        pop = heapq.heappop
        awaited = until if isinstance(until, Event) else None
        horizon = None if (until is None or awaited is not None) \
            else float(until)
        dispatched = 0
        stalled = 0
        while True:
            if awaited is not None and awaited._triggered \
                    and not awaited._scheduled:
                break
            if not queue:
                if awaited is not None and not awaited._triggered:
                    raise SimulationError(self._drained_message(awaited))
                break
            when = queue[0][0]
            if horizon is not None and when > horizon:
                break
            if deadline is not None and when > deadline:
                raise SimBudgetExceededError(
                    f"sim-time deadline {deadline:g} exceeded: next entry "
                    f"({self._entry_label(queue[0][2])}) is scheduled at "
                    f"t={when:g} after {dispatched} event(s)",
                    budget="deadline", events=dispatched,
                    sim_time=self._now,
                    process=self._entry_label(queue[0][2]))
            if max_events is not None and dispatched >= max_events:
                raise SimBudgetExceededError(
                    f"event budget of {max_events} dispatches exhausted at "
                    f"t={self._now:g}; next entry is "
                    f"{self._entry_label(queue[0][2])}",
                    budget="max_events", events=dispatched,
                    sim_time=self._now,
                    process=self._entry_label(queue[0][2]))
            when, _, item = pop(queue)
            if when < self._now:
                raise SimulationError("event scheduled in the past")
            advanced = when > self._now
            # The label must be taken before dispatch: dispatching clears
            # an event's callback list, which is how the waiting process
            # is identified.
            label = (self._entry_label(item)
                     if max_stalled_events is not None else "")
            self._now = when
            self._dispatch(item)
            dispatched += 1
            if max_stalled_events is not None:
                if advanced:
                    stalled = 0
                else:
                    stalled += 1
                    if stalled > max_stalled_events:
                        raise SimBudgetExceededError(
                            f"livelock: {stalled} consecutive dispatches "
                            f"without advancing t={self._now:g}; last "
                            f"entry was {label}",
                            budget="livelock", events=dispatched,
                            sim_time=self._now, process=label)
        if horizon is not None:
            self._now = max(self._now, horizon)
            return None
        if awaited is not None:
            if not awaited.ok:
                raise awaited.value
            return awaited.value
        return None

    @staticmethod
    def _entry_label(item: Any) -> str:
        """Human-readable identity of one queue entry (for watchdogs)."""
        if isinstance(item, Process):
            return f"process {item.name!r}"
        if isinstance(item, (_Resume, _Throw)):
            process = item.process
            if process is not None:
                return f"process {process.name!r}"
            return "cancelled resume"
        if isinstance(item, _Deferred):
            return f"deferred delivery of {type(item.event).__name__}"
        if isinstance(item, Event):
            label = (f"Timeout(delay={item.delay:g})"
                     if isinstance(item, Timeout)
                     else type(item).__name__)
            for callback in item.callbacks:
                owner = getattr(callback, "__self__", None)
                if isinstance(owner, Process):
                    return f"{label} waking process {owner.name!r}"
            return label
        return type(item).__name__
