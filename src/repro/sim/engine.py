"""Core event loop, events and processes for discrete-event simulation.

The engine is the innermost loop of every Ditto experiment: profiling
sweeps, tuning iterations and the fig5-fig11 benchmarks all bottom out
in :meth:`Environment.step`. The hot paths are therefore written for
allocation economy while preserving, exactly, the scheduling semantics
the rest of the stack depends on (see DESIGN.md "Engine invariants"):

* events dispatch in (time, insertion counter) order — FIFO among
  same-timestamp events. The queue is a calendar of per-timestamp FIFO
  buckets (a ``dict`` keyed by exact scheduled time) over a binary heap
  of *distinct* times: one bucket per timestamp means the heap never
  holds ties, and appending to / draining a bucket in list order *is*
  insertion-counter order, with no counter stored per entry;
* zero-delay entries — resumes, grants, completion events, the bulk of
  a service simulation's queue traffic — land in the bucket currently
  being drained and cost one list append, no heap operation at all;
  only entries that actually advance time touch the heap;
* a process yielding an already-triggered event resumes on the *next*
  scheduling round (via a lightweight :class:`_Resume` queue entry, not
  a proxy ``Event``), consuming exactly one bucket slot;
* ``Timeout`` objects are pooled per environment and recycled only when
  provably unreferenced, so reuse is invisible to callers; the pool is
  trimmed back after bursty phases (see :meth:`Environment.run`);
* an empty fault plan / absent telemetry leaves the schedule untouched,
  keeping runs bit-identical.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.util.errors import SimBudgetExceededError, SimulationError

#: cap on the per-environment freelist of recycled Timeout objects.
#: Sized to cover a whole arrival train scheduled via ``timeout_many``
#: (load generators batch thousands of arrivals at once); the trim in
#: :meth:`Environment.run` shrinks the freelist back to
#: ``_TIMEOUT_POOL_KEEP`` whenever the queue drains, so a burst-sized
#: pool never outlives the burst.
_TIMEOUT_POOL_MAX = 8192

#: freelist floor kept across trims: enough for steady-state reuse
#: without re-warming, small enough that an idle environment does not
#: pin a burst's worth of dead Timeout objects.
_TIMEOUT_POOL_KEEP = 32


class Event:
    """A one-shot occurrence at a point in simulated time.

    Processes wait on events by yielding them. An event carries an optional
    ``value`` delivered to every waiter when it succeeds. Events may be
    *succeeded* (normal) or *failed* (the waiting process sees the stored
    exception raised at its yield point).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception when failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Prefer :meth:`Environment.timeout`, which recycles triggered-and-
    dispatched instances from a per-environment pool.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Resume:
    """Queue entry resuming a process whose yield target already triggered.

    Replaces the former proxy-``Event`` mechanism: one slotted object, no
    callback list, no closure — but the same single bucket slot, so the
    dispatch order is identical. ``target is None`` marks the process
    bootstrap (first ``send(None)``). ``process`` is cleared to cancel
    the entry (e.g. when an interrupt supersedes the pending resume).
    """

    __slots__ = ("process", "target")

    def __init__(self, process: "Process", target: Optional[Event]) -> None:
        self.process = process
        self.target = target

    def fire(self, env: "Environment") -> None:
        process = self.process
        if process is None:
            return
        process._pending = None
        target = self.target
        if target is None:
            process._step_send(None)
        else:
            process._waiting_on = None
            if target._ok:
                process._step_send(target._value)
            else:
                process._step_throw(target._value)


class _Throw:
    """Queue entry delivering an :class:`Interrupt` into a process."""

    __slots__ = ("process", "cause")

    def __init__(self, process: "Process", cause: Any) -> None:
        self.process = process
        self.cause = cause

    def fire(self, env: "Environment") -> None:
        process = self.process
        if process._triggered:
            return
        # Detach again at fire time: a registration created between the
        # interrupt() call and this dispatch (e.g. the process was only
        # bootstrapping when interrupted) must not double-step it later.
        process._detach()
        process._step_throw(Interrupt(self.cause))


class _Deferred:
    """Queue entry re-delivering an already-triggered event to a callback.

    Used by the combinators so a pre-triggered member still propagates on
    the next scheduling round (ordering stays sane) without allocating a
    proxy ``Event``.
    """

    __slots__ = ("callback", "event")

    def __init__(self, callback: Callable[[Event], None], event: Event) -> None:
        self.callback = callback
        self.event = event

    def fire(self, env: "Environment") -> None:
        self.callback(self.event)


class _Noop:
    """Queue entry that does nothing when dispatched.

    The compiled device continuations (:mod:`repro.kernelsim`) push the
    shared :data:`NOOP` instance wherever the generator path they
    replace would have scheduled an event whose dispatch has no effect —
    an idle-resource grant whose waiter resumed via :class:`_Resume` —
    so both paths consume identical bucket slots and dispatch in the
    same order.
    """

    __slots__ = ()

    def fire(self, env: "Environment") -> None:
        return


#: the shared do-nothing queue entry (see :class:`_Noop`)
NOOP = _Noop()


class _Call:
    """Queue entry invoking a plain callable at its scheduled time.

    Backs :meth:`Environment.call_at` — the cheapest way to run code at
    a future simulated time without an ``Event`` or a process.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn

    def fire(self, env: "Environment") -> None:
        self.fn()


class Process(Event):
    """Wraps a generator as a schedulable simulation process.

    The process is itself an event that triggers with the generator's
    return value when it finishes, so processes can wait on each other
    (fork/join) simply by yielding the child process.

    An exception escaping the generator *fails* the process event:
    every waiter sees it re-raised at its own yield point (the SimPy
    semantic), which is how injected faults propagate from a device
    process up through RPC and request handlers. A failure nobody
    waits on is dropped with the process.
    """

    __slots__ = ("_generator", "_waiting_on", "_pending", "_on_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # The one bound-method callback this process registers on yield
        # targets — allocated once instead of per yield.
        self._on_target = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        entry = _Resume(self, None)
        self._pending: Optional[_Resume] = entry
        env._push(entry)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def _detach(self) -> None:
        """Forget the current wait: deregister callback, cancel resumes."""
        waiting = self._waiting_on
        if waiting is not None:
            callbacks = waiting.callbacks
            if callbacks:
                try:
                    callbacks.remove(self._on_target)
                except ValueError:
                    pass
        pending = self._pending
        if pending is not None and pending.target is not None:
            # Cancel a pending fast-resume so the interrupt below is the
            # only thing that steps the generator (a cancelled bootstrap,
            # by contrast, would mean the process body never ran at all —
            # bootstraps stay scheduled).
            pending.process = None
            self._pending = None
        self._waiting_on = None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._triggered:
            return
        self._detach()
        self.env._push(_Throw(self, cause))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step_send(event._value)
        else:
            self._step_throw(event._value)

    def _step_send(self, value: Any) -> None:
        try:
            target = self._generator.send(value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            # An un-caught interrupt terminates the process quietly.
            if not self._triggered:
                self.succeed(None)
            return
        except Exception as error:
            # The generator died: fail the process event so waiters see
            # the exception at their yield point.
            if not self._triggered:
                self.fail(error)
            return
        self._wait_on(target)

    def _step_throw(self, exception: BaseException) -> None:
        try:
            target = self._generator.throw(exception)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            if not self._triggered:
                self.succeed(None)
            return
        except Exception as error:
            if not self._triggered:
                self.fail(error)
            return
        self._wait_on(target)

    def _wait_on(self, target: Event) -> None:
        cls = target.__class__
        if cls is not Timeout:
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, "
                    f"expected an Event"
                )
            if target.env is not self.env:
                raise SimulationError(
                    "process yielded an event from another Environment")
            if target._triggered:
                # Already-triggered non-timeout events resume the process
                # on the next scheduling round (value already available).
                entry = _Resume(self, target)
                self._pending = entry
                self._waiting_on = target
                self.env._push(entry)
                return
        elif target.env is not self.env:
            raise SimulationError(
                "process yielded an event from another Environment")
        self._waiting_on = target
        target.callbacks.append(self._on_target)


class Environment:
    """The simulation environment: clock plus calendar event queue.

    The queue is two-tiered: ``_buckets`` maps each distinct scheduled
    time to a FIFO bucket (``[cursor, entry, entry, ...]`` — index 0 is
    the drain cursor, entries are appended and consumed in insertion
    order), and ``_times`` is a binary heap of the distinct times that
    currently have a bucket. Dispatch order is therefore exactly the
    documented ``(time, insertion counter)`` order of the former single
    heap, bucket membership standing in for the counter.

    ``timeline`` is the telemetry hook point: an optional
    :class:`~repro.telemetry.timeline.TimelineRun` that instrumented
    components (service runtimes, kernel devices) emit simulated-time
    events through. It is observation-only — the engine itself never
    consults it, so a timed and an untimed run schedule identically.
    Components bind it *once at construction* (the attach-time guard
    that keeps an untimed run's hot paths free of per-event checks), so
    install the timeline before building nodes and runtimes.

    ``faults`` is the fault-injection hook point: an optional
    :class:`~repro.faults.injector.FaultInjector` that instrumented
    devices consult at their injection points (normally installed via
    ``FaultInjector.attach``). The engine itself never consults it, and
    components treat ``None`` as "no faults", so an un-instrumented run
    schedules identically to one with no injector attached.
    """

    def __init__(self, initial_time: float = 0.0,
                 timeline: Optional[Any] = None,
                 faults: Optional[Any] = None) -> None:
        self._now = float(initial_time)
        self._buckets: dict = {}
        self._times: List[float] = []
        self._timeout_pool: List[Timeout] = []
        self._pool_served = 0
        #: queue entries dispatched over the environment's lifetime.
        #: Maintained per drained bucket (not per entry) in the fast
        #: drain loops, so it is exact at run() boundaries but may lag
        #: mid-bucket; observation-only, nothing in the engine reads it.
        self.dispatched_events = 0
        self.timeline = timeline
        self.faults = faults

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def _queue(self) -> List[float]:
        """Back-compat truthiness shim: the heap of pending times.

        Non-empty exactly when queue entries are pending (buckets are
        created with at least one entry and deleted when drained).
        """
        return self._times

    def queue_size(self) -> int:
        """Number of queue entries still pending dispatch."""
        total = 0
        for bucket in self._buckets.values():
            total += len(bucket) - bucket[0]
        return total

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now.

        Serves from the environment's freelist of recycled ``Timeout``
        instances when possible; a recycled timeout is indistinguishable
        from a fresh one (instances are only recycled once dispatched
        and provably unreferenced).
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay}")
            timeout = pool.pop()
            self._pool_served += 1
            # _ok/_triggered are still True from the recycled instance's
            # previous life: timeouts are born triggered and fail()
            # rejects triggered events, so neither flag can have flipped.
            timeout.delay = delay
            timeout._value = value
            timeout._scheduled = True
            when = self._now + delay
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = [1, timeout]
                heapq.heappush(self._times, when)
            else:
                bucket.append(timeout)
            return timeout
        return Timeout(self, delay, value)

    def timeout_many(self, delays: Iterable[float],
                     value: Any = None) -> List[Timeout]:
        """Create one timeout per delay in a single insertion pass.

        Equivalent to ``[env.timeout(d, value) for d in delays]`` — same
        pool reuse, same bucket slots in the same order — but with the
        per-call overhead (attribute lookups, pool probing) hoisted out
        of the loop. Load generators use this to schedule whole arrival
        trains at once.
        """
        now = self._now
        pool = self._timeout_pool
        buckets = self._buckets
        times = self._times
        push = heapq.heappush
        get_bucket = buckets.get
        pool_pop = pool.pop
        new = Timeout.__new__
        out: List[Timeout] = []
        append = out.append
        # The pool is only mutated here for the duration of the loop (no
        # callbacks run inside timeout_many), so a local countdown stands
        # in for per-iteration truth tests on the list itself.
        avail = len(pool)
        initial = avail
        # Trains are dominated by runs of identical timestamps (paced
        # arrival batches, same-tick bursts); caching the last bucket's
        # bound append skips the dict lookup and the method resolution
        # for every repeat.
        last_when: Optional[float] = None
        last_append: Optional[Callable[[Timeout], None]] = None
        for delay in delays:
            if delay < 0:
                self._pool_served += initial - avail
                raise SimulationError(f"negative timeout delay: {delay}")
            if avail:
                avail -= 1
                timeout = pool_pop()
                # _ok/_triggered survive recycling still True (see
                # Environment.timeout).
                timeout.delay = delay
                timeout._value = value
                timeout._scheduled = True
            else:
                timeout = new(Timeout)
                timeout.env = self
                timeout.callbacks = []
                timeout._value = value
                timeout._ok = True
                timeout._triggered = True
                timeout._scheduled = True
                timeout.delay = delay
            when = now + delay
            if when == last_when:
                last_append(timeout)
            else:
                bucket = get_bucket(when)
                if bucket is None:
                    bucket = [1, timeout]
                    buckets[when] = bucket
                    push(times, when)
                else:
                    bucket.append(timeout)
                last_when = when
                last_append = bucket.append
            append(timeout)
        self._pool_served += initial - avail
        return out

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Invoke ``fn()`` at simulated time ``when``.

        The cheapest scheduling primitive — one bucket slot, no
        ``Event``, nothing to wait on. The sharded-simulation router
        uses it to inject cross-shard deliveries at their exact
        timestamps.
        """
        when = float(when)
        if when < self._now:
            raise SimulationError(
                f"call_at({when:g}) is in the past (now={self._now:g})")
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [1, _Call(fn)]
            heapq.heappush(self._times, when)
        else:
            bucket.append(_Call(fn))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Invoke ``fn()`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative call_after delay: {delay}")
        self.call_at(self._now + delay, fn)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when every event in ``events`` has.

        Delivers the list of individual values, in input order. Once the
        combinator resolves (first failure, or last success), its
        callbacks are deregistered from every still-pending member, so
        long-lived losing events do not retain the combinator's state.

        A member that is queued but not yet dispatched — every fresh
        :class:`Timeout` (triggered at creation, fires at ``delay``), or
        an event succeeded earlier this timestamp — counts as *pending*:
        the combinator waits for its dispatch instead of treating it as
        already resolved.
        """
        events = list(events)
        done = self.event()
        if not events:
            done.succeed([])
            return done
        values: List[Any] = [None] * len(events)
        pending = [len(events)]
        callbacks: List[Callable[[Event], None]] = []

        def deregister() -> None:
            for event, callback in zip(events, callbacks):
                try:
                    event.callbacks.remove(callback)
                except ValueError:
                    pass

        def make_callback(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                if done._triggered:
                    return
                if not event._ok:
                    done.fail(event._value)
                    deregister()
                    return
                values[index] = event._value
                pending[0] -= 1
                if pending[0] == 0:
                    done.succeed(list(values))

            return callback

        for index, event in enumerate(events):
            callback = make_callback(index)
            callbacks.append(callback)
            if event._triggered and not event._scheduled:
                # Already dispatched: its callbacks have run, so a new
                # one would never fire. Propagate on the next scheduling
                # round instead (formerly a proxy Event).
                self._push(_Deferred(callback, event))
            else:
                event.callbacks.append(callback)
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds as soon as any event in ``events`` does.

        When the race resolves, the combinator's callback is removed from
        every losing event that has not yet dispatched — otherwise a
        long-lived loser (a response that never arrives, a far-future
        timeout) would pin the combinator's closure for its lifetime.

        A queued-but-undispatched member (every fresh :class:`Timeout`)
        is *pending*, not already-won: racing a response against
        ``timeout(t)`` resolves at the first of the two dispatches, so
        the timeout only wins when the response really is late.
        """
        events = list(events)
        done = self.event()
        if not events:
            done.succeed(None)
            return done

        def callback(event: Event) -> None:
            if done._triggered:
                return
            if event._ok:
                done.succeed(event._value)
            else:
                done.fail(event._value)
            for other in events:
                if other is not event:
                    try:
                        other.callbacks.remove(callback)
                    except ValueError:
                        pass

        for event in events:
            if event._triggered and not event._scheduled:
                self._push(_Deferred(callback, event))
            else:
                event.callbacks.append(callback)
        return done

    def _push(self, entry: Any, delay: float = 0.0) -> None:
        """Schedule a raw queue entry (event or lightweight resume)."""
        when = self._now + delay
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [1, entry]
            heapq.heappush(self._times, when)
        else:
            bucket.append(entry)

    def _push_at(self, when: float, entry: Any) -> None:
        """Schedule a raw queue entry at an absolute time."""
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [1, entry]
            heapq.heappush(self._times, when)
        else:
            bucket.append(entry)

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        when = self._now + delay
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [1, event]
            heapq.heappush(self._times, when)
        else:
            bucket.append(event)

    def _dispatch(self, item: Any) -> None:
        """Run one popped queue entry's effects."""
        if isinstance(item, Event):
            # Mark dispatched: run(until=event) keys off this to stop as
            # soon as the awaited event's callbacks have run, instead of
            # draining unrelated queue entries (e.g. the deregistered
            # losers of an any_of race).
            item._scheduled = False
            callbacks = item.callbacks
            if callbacks:
                if len(callbacks) == 1:
                    callback = callbacks[0]
                    callbacks.clear()
                    callback(item)
                else:
                    item.callbacks = []
                    for callback in callbacks:
                        callback(item)
            if item.__class__ is Timeout and getrefcount(item) == 3:
                # Dispatched and provably unreferenced: exactly three
                # refs remain — our parameter, the run()/step() local
                # that passed it in, and getrefcount's own argument.
                # Any caller still holding the timeout inflates the
                # count and keeps it out of the pool. (The bucket slot
                # it occupied was overwritten with None at pop time.)
                pool = self._timeout_pool
                if len(pool) < _TIMEOUT_POOL_MAX:
                    pool.append(item)
        else:
            item.fire(self)

    def _pop(self) -> Any:
        """Remove and return the next queue entry, advancing the clock."""
        times = self._times
        when = times[0]
        bucket = self._buckets[when]
        cursor = bucket[0]
        item = bucket[cursor]
        bucket[cursor] = None
        cursor += 1
        if cursor == len(bucket):
            del self._buckets[when]
            heapq.heappop(times)
        else:
            bucket[0] = cursor
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        return item

    def step(self) -> None:
        """Process the single next entry in the event queue."""
        if not self._times:
            raise SimulationError("step() on an empty event queue")
        self._dispatch(self._pop())
        self.dispatched_events += 1

    def trim_timeout_pool(self) -> int:
        """Shrink the Timeout freelist after a bursty phase.

        Keeps as many instances as were actually served from the pool
        since the last trim (a proxy for steady-state demand), floored
        at a small warm set — so a burst that briefly inflated the pool
        does not pin up to ``_TIMEOUT_POOL_MAX`` dead objects for the
        life of the environment. Publishes the resulting size as the
        ``ditto_engine_timeout_pool_size`` gauge when a telemetry
        session is active. Returns the retained pool size.

        :meth:`run` calls this automatically whenever a run drains the
        queue; long-lived environments driven by ``run(until=horizon)``
        windows (the sharded coordinator) may call it explicitly.
        """
        pool = self._timeout_pool
        keep = max(_TIMEOUT_POOL_KEEP, self._pool_served)
        self._pool_served = 0
        if len(pool) > keep:
            del pool[keep:]
        size = len(pool)
        from repro.telemetry.context import current_session
        session = current_session()
        if session is not None:
            session.registry.gauge(
                "ditto_engine_timeout_pool_size",
                "recycled Timeout instances pooled by the DES engine",
            ).set(size)
        return size

    def run(
        self,
        until: float | Event | None = None,
        *,
        max_events: Optional[int] = None,
        deadline: Optional[float] = None,
        max_stalled_events: Optional[int] = None,
    ) -> Any:
        """Run the simulation.

        - ``until`` is a number: run until the clock reaches it.
        - ``until`` is an Event: run until that event triggers *and its
          callbacks have dispatched*; its value is returned (its
          exception raised when it failed). The run stops there — queue
          entries scheduled later (e.g. the deregistered losers of an
          ``any_of`` race, or a pending watchdog timeout) stay queued
          instead of being drained and silently advancing the clock.
        - ``until`` is None: run until no events remain.

        A run that drains the queue also trims the Timeout freelist
        (:meth:`trim_timeout_pool`), so burst-sized pools do not outlive
        the burst.

        Watchdogs (all off by default; a run with none set takes the
        historical fast paths and is bit-identical):

        - ``max_events`` bounds how many queue entries this call may
          dispatch;
        - ``deadline`` bounds simulated time: dispatching an entry
          scheduled past it raises;
        - ``max_stalled_events`` bounds consecutive dispatches that do
          not advance the clock (livelock detection: two processes
          ping-ponging zero-delay events never advance ``now``).

        Each trips a :class:`~repro.util.errors.SimBudgetExceededError`
        naming the queue entry that was running — the stuck process —
        plus the event count and simulated time at the trip.
        """
        if (max_events is not None or deadline is not None
                or max_stalled_events is not None):
            return self._run_guarded(until, max_events, deadline,
                                     max_stalled_events)
        if isinstance(until, Event):
            while not until._triggered or until._scheduled:
                if not self._times:
                    if until._triggered:
                        break
                    raise SimulationError(self._drained_message(until))
                self._dispatch(self._pop())
                self.dispatched_events += 1
            if not self._times:
                self.trim_timeout_pool()
            if not until.ok:
                raise until.value
            return until.value
        times = self._times
        buckets = self._buckets
        pop_time = heapq.heappop
        dispatch = self._dispatch
        pool = self._timeout_pool
        pool_append = pool.append
        refcount = getrefcount
        timeout_cls = Timeout
        if until is None:
            # Drain everything, bucket by bucket: entries pushed at the
            # current time while draining append to the live bucket and
            # are picked up by the same inner loop — the dominant
            # zero-delay traffic never touches the heap. Timeout
            # dispatch is inlined (the hottest entry kind by far); the
            # refcount bar is 2 here — the loop local plus getrefcount's
            # argument; the bucket slot was overwritten with None above
            # — where _dispatch (one call deeper) requires 3.
            pool_max = _TIMEOUT_POOL_MAX
            while times:
                when = times[0]
                bucket = buckets[when]
                if when < self._now:
                    raise SimulationError("event scheduled in the past")
                self._now = when
                cursor = bucket[0]
                # The live cursor stays in the loop local; bucket[0] is
                # refreshed only at batch boundaries (try/finally keeps
                # it consistent if a callback raises). Nothing reads
                # bucket[0] mid-drain — pushes only append.
                try:
                    size = len(bucket)
                    while cursor < size:
                        while cursor < size:
                            item = bucket[cursor]
                            bucket[cursor] = None
                            cursor += 1
                            if item.__class__ is timeout_cls:
                                item._scheduled = False
                                callbacks = item.callbacks
                                if callbacks:
                                    if len(callbacks) == 1:
                                        callback = callbacks[0]
                                        callbacks.clear()
                                        callback(item)
                                    else:
                                        item.callbacks = []
                                        for callback in callbacks:
                                            callback(item)
                                if (refcount(item) == 2
                                        and len(pool) < pool_max):
                                    pool_append(item)
                            else:
                                dispatch(item)
                        size = len(bucket)
                finally:
                    bucket[0] = cursor
                self.dispatched_events += cursor - 1
                del buckets[when]
                pop_time(times)
            self.trim_timeout_pool()
            return None
        horizon = float(until)
        pool_max = _TIMEOUT_POOL_MAX
        while times:
            when = times[0]
            if when > horizon:
                break
            bucket = buckets[when]
            if when < self._now:
                raise SimulationError("event scheduled in the past")
            self._now = when
            cursor = bucket[0]
            try:
                size = len(bucket)
                while cursor < size:
                    while cursor < size:
                        item = bucket[cursor]
                        bucket[cursor] = None
                        cursor += 1
                        if item.__class__ is timeout_cls:
                            item._scheduled = False
                            callbacks = item.callbacks
                            if callbacks:
                                if len(callbacks) == 1:
                                    callback = callbacks[0]
                                    callbacks.clear()
                                    callback(item)
                                else:
                                    item.callbacks = []
                                    for callback in callbacks:
                                        callback(item)
                            if (refcount(item) == 2
                                    and len(pool) < pool_max):
                                pool_append(item)
                        else:
                            dispatch(item)
                    size = len(bucket)
            finally:
                bucket[0] = cursor
            self.dispatched_events += cursor - 1
            del buckets[when]
            pop_time(times)
        self._now = max(self._now, horizon)
        if not times:
            self.trim_timeout_pool()
        return None

    def _drained_message(self, until: Event) -> str:
        name = getattr(until, "name", "")
        label = f"{type(until).__name__}"
        if name:
            label += f" {name!r}"
        return (f"event queue drained at t={self._now:g} before "
                f"the awaited {label} triggered")

    def _peek(self) -> tuple:
        """The (time, entry) of the next queue entry, without popping."""
        when = self._times[0]
        bucket = self._buckets[when]
        return when, bucket[bucket[0]]

    def _run_guarded(
        self,
        until: float | Event | None,
        max_events: Optional[int],
        deadline: Optional[float],
        max_stalled_events: Optional[int],
    ) -> Any:
        """The watchdogged run loop (any budget active).

        Slower than the fast paths — one comparison per guard per
        dispatch — which is why :meth:`run` only enters it when a
        budget is set: unguarded runs stay on the allocation-free loops
        and their exact historical behaviour.
        """
        times = self._times
        awaited = until if isinstance(until, Event) else None
        horizon = None if (until is None or awaited is not None) \
            else float(until)
        dispatched = 0
        stalled = 0
        while True:
            if awaited is not None and awaited._triggered \
                    and not awaited._scheduled:
                break
            if not times:
                if awaited is not None and not awaited._triggered:
                    raise SimulationError(self._drained_message(awaited))
                break
            when, head = self._peek()
            if horizon is not None and when > horizon:
                break
            if deadline is not None and when > deadline:
                raise SimBudgetExceededError(
                    f"sim-time deadline {deadline:g} exceeded: next entry "
                    f"({self._entry_label(head)}) is scheduled at "
                    f"t={when:g} after {dispatched} event(s)",
                    budget="deadline", events=dispatched,
                    sim_time=self._now,
                    process=self._entry_label(head))
            if max_events is not None and dispatched >= max_events:
                raise SimBudgetExceededError(
                    f"event budget of {max_events} dispatches exhausted at "
                    f"t={self._now:g}; next entry is "
                    f"{self._entry_label(head)}",
                    budget="max_events", events=dispatched,
                    sim_time=self._now,
                    process=self._entry_label(head))
            advanced = when > self._now
            # The label must be taken before dispatch: dispatching clears
            # an event's callback list, which is how the waiting process
            # is identified.
            label = (self._entry_label(head)
                     if max_stalled_events is not None else "")
            self._dispatch(self._pop())
            dispatched += 1
            self.dispatched_events += 1
            if max_stalled_events is not None:
                if advanced:
                    stalled = 0
                else:
                    stalled += 1
                    if stalled > max_stalled_events:
                        raise SimBudgetExceededError(
                            f"livelock: {stalled} consecutive dispatches "
                            f"without advancing t={self._now:g}; last "
                            f"entry was {label}",
                            budget="livelock", events=dispatched,
                            sim_time=self._now, process=label)
        if horizon is not None:
            self._now = max(self._now, horizon)
            return None
        if awaited is not None:
            if not awaited.ok:
                raise awaited.value
            return awaited.value
        return None

    @staticmethod
    def _entry_label(item: Any) -> str:
        """Human-readable identity of one queue entry (for watchdogs)."""
        if isinstance(item, Process):
            return f"process {item.name!r}"
        if isinstance(item, (_Resume, _Throw)):
            process = item.process
            if process is not None:
                return f"process {process.name!r}"
            return "cancelled resume"
        if isinstance(item, _Deferred):
            return f"deferred delivery of {type(item.event).__name__}"
        if isinstance(item, Event):
            label = (f"Timeout(delay={item.delay:g})"
                     if isinstance(item, Timeout)
                     else type(item).__name__)
            for callback in item.callbacks:
                owner = getattr(callback, "__self__", None)
                if isinstance(owner, Process):
                    return f"{label} waking process {owner.name!r}"
            return label
        label = getattr(item, "label", None)
        if label:
            return str(label)
        return type(item).__name__
