"""Core event loop, events and processes for discrete-event simulation."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.util.errors import SimulationError


class Event:
    """A one-shot occurrence at a point in simulated time.

    Processes wait on events by yielding them. An event carries an optional
    ``value`` delivered to every waiter when it succeeds. Events may be
    *succeeded* (normal) or *failed* (the waiting process sees the stored
    exception raised at its yield point).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception when failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exception`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """Wraps a generator as a schedulable simulation process.

    The process is itself an event that triggers with the generator's
    return value when it finishes, so processes can wait on each other
    (fork/join) simply by yielding the child process.

    An exception escaping the generator *fails* the process event:
    every waiter sees it re-raised at its own yield point (the SimPy
    semantic), which is how injected faults propagate from a device
    process up through RPC and request handlers. A failure nobody
    waits on is dropped with the process.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and self._resume in waiting.callbacks:
            waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        interrupt_event = Event(self.env)
        interrupt_event.callbacks.append(
            lambda _evt: self._step(lambda: self._generator.throw(Interrupt(cause)))
        )
        interrupt_event.succeed()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(lambda: self._generator.send(event.value))
        else:
            self._step(lambda: self._generator.throw(event.value))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            # An un-caught interrupt terminates the process quietly.
            if not self._triggered:
                self.succeed(None)
            return
        except Exception as error:
            # The generator died: fail the process event so waiters see
            # the exception at their yield point.
            if not self._triggered:
                self.fail(error)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.env is not self.env:
            raise SimulationError("process yielded an event from another Environment")
        self._waiting_on = target
        if target._triggered and not isinstance(target, Timeout):
            # Already-triggered non-timeout events resume the process on the
            # next scheduling round (value already available).
            resume_now = Event(self.env)
            resume_now.callbacks.append(lambda _evt: self._resume(target))
            resume_now.succeed()
        else:
            target.callbacks.append(self._resume)


class Environment:
    """The simulation environment: clock plus event queue.

    ``timeline`` is the telemetry hook point: an optional
    :class:`~repro.telemetry.timeline.TimelineRun` that instrumented
    components (service runtimes, kernel devices) emit simulated-time
    events through. It is observation-only — the engine itself never
    consults it, so a timed and an untimed run schedule identically.

    ``faults`` is the fault-injection hook point: an optional
    :class:`~repro.faults.injector.FaultInjector` that instrumented
    devices consult at their injection points (normally installed via
    ``FaultInjector.attach``). The engine itself never consults it, and
    components treat ``None`` as "no faults", so an un-instrumented run
    schedules identically to one with no injector attached.
    """

    def __init__(self, initial_time: float = 0.0,
                 timeline: Optional[Any] = None,
                 faults: Optional[Any] = None) -> None:
        self._now = float(initial_time)
        self._queue: List[tuple[float, int, Event]] = []
        self._counter = 0
        self.timeline = timeline
        self.faults = faults

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds when every event in ``events`` has.

        Delivers the list of individual values, in input order.
        """
        events = list(events)
        done = self.event()
        if not events:
            done.succeed([])
            return done
        remaining = {"count": len(events)}
        values: List[Any] = [None] * len(events)

        def make_callback(index: int) -> Callable[[Event], None]:
            def callback(event: Event) -> None:
                if done.triggered:
                    return
                if not event.ok:
                    done.fail(event.value)
                    return
                values[index] = event.value
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    done.succeed(list(values))

            return callback

        for index, event in enumerate(events):
            if event.triggered:
                # Propagate immediately via a proxy so ordering stays sane.
                proxy = self.event()
                proxy.callbacks.append(make_callback(index))
                if event.ok:
                    proxy.succeed(event.value)
                else:
                    proxy.fail(event.value)
            else:
                event.callbacks.append(make_callback(index))
        return done

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that succeeds as soon as any event in ``events`` does."""
        events = list(events)
        done = self.event()
        if not events:
            done.succeed(None)
            return done

        def callback(event: Event) -> None:
            if done.triggered:
                return
            if event.ok:
                done.succeed(event.value)
            else:
                done.fail(event.value)

        for event in events:
            if event.triggered:
                proxy = self.event()
                proxy.callbacks.append(callback)
                if event.ok:
                    proxy.succeed(event.value)
                else:
                    proxy.fail(event.value)
            else:
                event.callbacks.append(callback)
        return done

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, self._counter, event))
        self._counter += 1

    def step(self) -> None:
        """Process the single next event in the queue."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        for callback in callbacks:
            callback(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        - ``until`` is a number: run until the clock reaches it.
        - ``until`` is an Event: run until that event triggers; its value is
          returned (its exception raised when it failed).
        - ``until`` is None: run until no events remain.
        """
        if isinstance(until, Event):
            while not until.triggered or until._scheduled:
                if not self._queue:
                    if until.triggered:
                        break
                    raise SimulationError(
                        "event queue drained before the awaited event triggered"
                    )
                self.step()
                if until.triggered and not self._queue:
                    break
            if not until.ok:
                raise until.value
            return until.value
        if until is None:
            while self._queue:
                self.step()
            return None
        deadline = float(until)
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        self._now = max(self._now, deadline)
        return None
