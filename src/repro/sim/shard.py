"""Deterministic sharded simulation.

Partitions a deployment's tier DAG across simulation shards — one
:class:`~repro.sim.engine.Environment` per *node*, hosted on one or
more worker processes — with conservative time-window synchronization
for cross-shard RPC traffic.

Design
------

**Partition = node.** Every node of the deployment gets its own
environment, devices and service runtimes, built by the same
:func:`~repro.runtime.experiment._build_simulation` the classic runner
uses, regardless of which process hosts it. Services placed on other
nodes appear in the partition's registry as
:class:`RemoteServiceStub` proxies. Because the per-partition state is
identical no matter how partitions are grouped onto processes, the
result digest is independent of the shard count *by construction* —
``shards=1`` (all partitions in-process) and ``shards=N`` (fork-based
workers) run bit-identical simulations.

**Conservative windows.** Cross-node RPC traffic pays at least one
wire latency ``L`` (the platform's ``base_latency_s``), which is the
lookahead: a message sent during window ``k`` — covering simulated
time ``(k*L, (k+1)*L]`` — can only be delivered in window ``k+1``.
Each window, every partition runs to the shared horizon, outbound
messages are collected at the barrier, routed, and injected into the
destination partition before the next window runs. Idle stretches are
fast-forwarded to the window containing the earliest pending event, so
wall-clock cost tracks busy windows, not simulated time.

**Deterministic delivery.** Messages carry per-edge sequence numbers
(one counter per directed partition pair) and are injected sorted by
``(delivery_time, source node, sequence)`` — a total order that does
not depend on hosting, process scheduling or pipe arrival order.

Divergences from the single-process runner (documented in DESIGN.md):
request/handler *failures* crossing a shard boundary surface to the
caller one wire latency later than the classic runner's immediate
local fail; successful replies land at exactly the classic time. The
sharded digest is therefore pinned against itself (N-independence),
not against the classic runner's digest.

Unsupported in sharded mode (raises
:class:`~repro.util.errors.ConfigurationError`): fault plans and
explicit tracers (both are process-global), engine watchdogs, and
platforms with zero network latency (no lookahead).
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Environment, Event
from repro.util.errors import ConfigurationError, SimBudgetExceededError

__all__ = [
    "ShardMessage",
    "RemoteServiceStub",
    "run_sharded_experiment",
]


@dataclass
class ShardMessage:
    """One cross-shard payload: an RPC request or its reply.

    Picklable by design — multiprocess hosting ships these over pipes.
    ``seq`` is the per-directed-edge sequence number that, together
    with ``delivery_time`` and ``src_node``, totally orders injection.
    """

    kind: str                 # "request" | "reply"
    src_node: str
    dst_node: str
    seq: int
    send_time: float
    delivery_time: float
    req_id: Tuple[str, int]
    dst_service: Optional[str] = None
    handler: Optional[str] = None
    nbytes: float = 0.0
    trace_id: int = 0
    ok: bool = True
    error: Optional[BaseException] = None


class _StubNode:
    """Duck-typed stand-in for a remote :class:`Node` (name only)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class _ShardPort:
    """One partition's mailbox endpoint.

    Senders append :class:`ShardMessage` to ``outbound``; the window
    coordinator drains it at each barrier and routes. ``pending`` maps
    request ids to the local response events awaiting replies.
    """

    def __init__(self, node_key: str, latency_s: float) -> None:
        self.node_key = node_key
        self.latency_s = latency_s
        self.env: Optional[Environment] = None
        self.outbound: List[ShardMessage] = []
        self.pending: Dict[Tuple[str, int], Event] = {}
        self._req_counter = 0
        self._seq: Dict[str, int] = {}

    def _next_seq(self, dst_node: str) -> int:
        seq = self._seq.get(dst_node, 0) + 1
        self._seq[dst_node] = seq
        return seq

    def submit_request(self, dst_service: str, dst_node: str,
                       handler: str, trace_id: int,
                       nbytes: float) -> Event:
        """Ship one RPC request; returns the local response event."""
        env = self.env
        self._req_counter += 1
        req_id = (self.node_key, self._req_counter)
        response = Event(env)
        self.pending[req_id] = response
        self.outbound.append(ShardMessage(
            kind="request",
            src_node=self.node_key,
            dst_node=dst_node,
            seq=self._next_seq(dst_node),
            send_time=env.now,
            delivery_time=env.now + self.latency_s,
            req_id=req_id,
            dst_service=dst_service,
            handler=handler,
            nbytes=nbytes,
            trace_id=trace_id,
        ))
        return response

    def send_reply(self, requester_node: str, req_id: Tuple[str, int],
                   ok: bool, error: Optional[BaseException]) -> None:
        """Ship one RPC outcome back to the requesting partition."""
        env = self.env
        self.outbound.append(ShardMessage(
            kind="reply",
            src_node=self.node_key,
            dst_node=requester_node,
            seq=self._next_seq(requester_node),
            send_time=env.now,
            delivery_time=env.now + self.latency_s,
            req_id=req_id,
            ok=ok,
            error=error,
        ))


class RemoteServiceStub:
    """Registry proxy for a service hosted on another partition.

    Exposes exactly what the RPC client touches: ``name``,
    ``node.name`` (for the cross-node check) and ``remote_submit`` —
    whose presence is how
    :meth:`~repro.runtime.service.ServiceRuntime._rpc_attempt` detects
    a shard boundary.
    """

    def __init__(self, name: str, node_name: str, port: _ShardPort) -> None:
        self.name = name
        self.node = _StubNode(node_name)
        self._port = port

    def remote_submit(self, handler: str, src_node: str, trace_id: int,
                      request_bytes: float) -> Event:
        """Ship the request (arriving one wire latency from now) and
        return the local event its reply will resolve."""
        return self._port.submit_request(
            dst_service=self.name,
            dst_node=self.node.name,
            handler=handler,
            trace_id=trace_id,
            nbytes=request_bytes,
        )


class _RemoteReply:
    """Server-side reply handle for a shard-remote request."""

    __slots__ = ("_port", "_requester_node", "_req_id")

    def __init__(self, port: _ShardPort, requester_node: str,
                 req_id: Tuple[str, int]) -> None:
        self._port = port
        self._requester_node = requester_node
        self._req_id = req_id

    def reply(self, ok: bool, error: Optional[BaseException] = None) -> None:
        self._port.send_reply(self._requester_node, self._req_id, ok, error)


class _Partition:
    """One node's simulation plus its shard port."""

    def __init__(self, deployment, load, config, node_key: str) -> None:
        from repro.runtime.experiment import _build_simulation

        self.node_key = node_key
        self.port = _ShardPort(
            node_key, config.platform.network.base_latency_s)
        self.build = _build_simulation(
            deployment, load, config,
            local_nodes=frozenset((node_key,)),
            remote_stub=lambda service, node: RemoteServiceStub(
                service, node, self.port),
        )
        self.port.env = self.build.env
        if self.build.generator is not None:
            self.build.generator.start()

    def inject(self, messages: Sequence[ShardMessage]) -> None:
        """Schedule delivered messages (already sorted by the caller)."""
        env = self.build.env
        for message in messages:
            # Clamp an ulp of float drift from the sender's addition —
            # deterministic (the horizon is the same on every hosting).
            when = max(message.delivery_time, env.now)
            if message.kind == "request":
                env.call_at(when, self._make_request_delivery(message))
            else:
                env.call_at(when, self._make_reply_delivery(message))

    def _make_request_delivery(self, message: ShardMessage):
        def deliver() -> None:
            runtime = self.build.registry[message.dst_service]
            # Ingress accounting the local-path caller would have done.
            runtime.metrics.net_rx_bytes += message.nbytes
            runtime.node.nic.account_rx(message.nbytes)
            runtime.submit(
                message.handler,
                src_node=message.src_node,
                trace_id=message.trace_id,
                remote=_RemoteReply(self.port, message.src_node,
                                    message.req_id),
            )
        return deliver

    def _make_reply_delivery(self, message: ShardMessage):
        def deliver() -> None:
            response = self.port.pending.pop(message.req_id, None)
            if response is None or response.triggered:
                return
            if message.ok:
                # Same value the classic runner's _delayed_reply sets:
                # the simulated time the reply lands at the caller.
                response.succeed(self.build.env.now)
            else:
                response.fail(message.error)
        return deliver

    def run_until(self, horizon: float, *,
                  max_events: Optional[int] = None,
                  deadline: Optional[float] = None) -> None:
        # With both budgets None, run() takes the historical
        # allocation-free fast paths (bit-identical results).
        self.build.env.run(until=horizon, max_events=max_events,
                           deadline=deadline)

    def drain_outbound(self) -> List[ShardMessage]:
        out, self.port.outbound = self.port.outbound, []
        return out

    def next_time(self) -> Optional[float]:
        times = self.build.env._times
        return times[0] if times else None

    def partial(self, duration_s: float) -> "_PartialResult":
        from repro.runtime.experiment import (
            _breaker_summary,
            _device_utilisations,
        )

        self.build.env.trim_timeout_pool()
        duration = max(duration_s, 1e-9)
        cpu_util, disk_util = _device_utilisations(self.build.nodes,
                                                   duration)
        return _PartialResult(
            services={name: rt.metrics
                      for name, rt in self.build.registry.items()
                      if not isinstance(rt, RemoteServiceStub)},
            recorder=self.build.recorder,
            node_utilisation=cpu_util,
            disk_utilisation=disk_util,
            breakers=_breaker_summary(self.build.registry),
            events_dispatched=self.build.env.dispatched_events,
        )


@dataclass
class _PartialResult:
    """One partition's contribution to the merged RunResult."""

    services: Dict[str, object]
    recorder: Optional[object]
    node_utilisation: Dict[str, float]
    disk_utilisation: Dict[str, float]
    breakers: Dict[str, dict] = field(default_factory=dict)
    events_dispatched: int = 0


# --------------------------------------------------------------------- #
# hosting: partitions grouped in-process or behind forked workers
# --------------------------------------------------------------------- #
class _LocalHost:
    """Hosts a group of partitions in the coordinator's process."""

    def __init__(self, deployment, load, config,
                 node_keys: Sequence[str]) -> None:
        self._node_keys = list(node_keys)
        self._partitions = {
            key: _Partition(deployment, load, config, key)
            for key in self._node_keys
        }
        self._duration_s = config.duration_s
        # Engine watchdogs (shards=1 only — _validate rejects them for
        # forked hosts). The event budget is global: each window call
        # gets the *remaining* allowance, so the total dispatched
        # across all partitions and windows matches the classic
        # runner's single-environment budget. The sim-time deadline is
        # absolute and passes through unchanged.
        self._max_events = config.max_sim_events
        self._deadline = config.sim_deadline_s

    def _remaining_events(self) -> Optional[int]:
        if self._max_events is None:
            return None
        spent = sum(p.build.env.dispatched_events
                    for p in self._partitions.values())
        return max(0, self._max_events - spent)

    def run_window(
        self, horizon: float,
        inbound: Dict[str, List[ShardMessage]],
    ) -> Tuple[List[ShardMessage], Dict[str, Optional[float]]]:
        outbound: List[ShardMessage] = []
        next_times: Dict[str, Optional[float]] = {}
        for key in self._node_keys:
            partition = self._partitions[key]
            partition.inject(inbound.get(key, ()))
            try:
                partition.run_until(horizon,
                                    max_events=self._remaining_events(),
                                    deadline=self._deadline)
            except SimBudgetExceededError as trip:
                if trip.budget == "max_events" \
                        and self._max_events is not None:
                    # The engine saw only this window's remaining
                    # allowance — report the global budget instead.
                    raise SimBudgetExceededError(
                        f"event budget of {self._max_events} dispatches "
                        f"exhausted across all partitions (node "
                        f"{key!r} at t={trip.sim_time:g}); next entry "
                        f"is {trip.process}", budget="max_events",
                        events=self._max_events, sim_time=trip.sim_time,
                        process=trip.process) from trip
                raise
            outbound.extend(partition.drain_outbound())
            next_times[key] = partition.next_time()
        return outbound, next_times

    def finish(self) -> Dict[str, _PartialResult]:
        return {key: self._partitions[key].partial(self._duration_s)
                for key in self._node_keys}


def _shard_worker(conn, deployment, load, config,
                  node_keys: Sequence[str]) -> None:
    """Forked worker: hosts partitions, speaks the window protocol."""
    try:
        host = _LocalHost(deployment, load, config, node_keys)
        while True:
            command = conn.recv()
            if command[0] == "window":
                _, horizon, inbound = command
                conn.send(("window_done",) + host.run_window(horizon,
                                                             inbound))
            elif command[0] == "finish":
                conn.send(("result", host.finish()))
                return
            else:  # pragma: no cover - protocol exhaustive
                raise ConfigurationError(
                    f"unknown shard command {command[0]!r}")
    except BaseException as error:  # surface crashes to the coordinator
        try:
            conn.send(("error", repr(error)))
        except Exception:  # pragma: no cover - pipe already gone
            pass
        raise
    finally:
        conn.close()


class _ForkHost:
    """Hosts a group of partitions behind a forked worker process."""

    def __init__(self, ctx, deployment, load, config,
                 node_keys: Sequence[str]) -> None:
        self.node_keys = list(node_keys)
        self._parent_conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=_shard_worker,
            args=(child_conn, deployment, load, config, self.node_keys),
        )
        self._process.start()
        child_conn.close()

    def send_window(self, horizon: float,
                    inbound: Dict[str, List[ShardMessage]]) -> None:
        self._parent_conn.send(("window", horizon, inbound))

    def _recv(self, expected: str):
        reply = self._parent_conn.recv()
        if reply[0] == "error":
            raise ConfigurationError(
                f"shard worker for {self.node_keys} died: {reply[1]}")
        if reply[0] != expected:  # pragma: no cover - protocol exhaustive
            raise ConfigurationError(
                f"shard worker sent {reply[0]!r}, expected {expected!r}")
        return reply

    def recv_window(
        self,
    ) -> Tuple[List[ShardMessage], Dict[str, Optional[float]]]:
        _, outbound, next_times = self._recv("window_done")
        return outbound, next_times

    def finish(self) -> Dict[str, _PartialResult]:
        self._parent_conn.send(("finish",))
        _, partials = self._recv("result")
        return partials

    def close(self) -> None:
        try:
            self._parent_conn.close()
        except Exception:  # pragma: no cover - already closed
            pass
        self._process.join(timeout=30)
        if self._process.is_alive():  # pragma: no cover - stuck worker
            self._process.terminate()
            self._process.join()


# --------------------------------------------------------------------- #
# coordinator
# --------------------------------------------------------------------- #
def _validate(deployment, config, shard_count: int) -> float:
    """Check shard-mode restrictions; returns the lookahead latency."""
    if config.fault_plan is not None and not config.fault_plan.is_empty:
        raise ConfigurationError(
            "sharded simulation does not support fault plans "
            "(the injector is process-global); run with shards=None")
    if config.tracer is not None:
        raise ConfigurationError(
            "sharded simulation does not support an explicit tracer "
            "(spans would scatter across processes); run with shards=None")
    if config.max_stalled_events is not None:
        raise ConfigurationError(
            "sharded simulation does not support max_stalled_events: "
            "stall counts reset at every conservative window barrier, "
            "so livelocks spanning a barrier would go undetected; "
            "run with shards=None")
    if shard_count > 1:
        if config.max_sim_events is not None:
            raise ConfigurationError(
                "max_sim_events is not supported across "
                f"{shard_count} shard processes: the event budget is "
                "global but each process counts dispatches "
                "independently; run with shards=1 (same result "
                "digest, watchdogs supported) or shards=None")
        if config.sim_deadline_s is not None:
            raise ConfigurationError(
                "sim_deadline_s is not supported across "
                f"{shard_count} shard processes: a deadline trip in "
                "one process cannot stop its peers at a consistent "
                "point; run with shards=1 (same result digest, "
                "watchdogs supported) or shards=None")
    latency = config.platform.network.base_latency_s
    if latency <= 0:
        raise ConfigurationError(
            "sharded simulation needs base_latency_s > 0 "
            "(the wire latency is the synchronization lookahead)")
    return latency


def _window_after_idle(min_time: float, width: float, current: int) -> int:
    """Index of the window containing ``min_time`` (fast-forward)."""
    index = int(math.ceil(min_time / width)) - 1
    while (index + 1) * width < min_time:  # float-rounding guard
        index += 1
    return max(index, current + 1)


def run_sharded_experiment(deployment, load, config):
    """Run one experiment partitioned across ``config.shards`` shards.

    Same signature contract as
    :func:`~repro.runtime.experiment._run_experiment`; the merged
    :class:`~repro.runtime.metrics.RunResult` has one entry per service
    and node exactly like the classic runner's. The result digest is
    identical for every shard count (``shards=1`` hosts all partitions
    in-process; higher counts fork worker processes).
    """
    from repro.runtime.metrics import RunResult

    node_keys = sorted(deployment.node_names())
    shard_count = max(1, min(config.shards or 1, len(node_keys)))
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = None
    if ctx is None:
        shard_count = 1
    # Validated against the *effective* shard count: watchdogs are
    # fine when every partition is hosted in this process (shards=1).
    latency = _validate(deployment, config, shard_count)

    groups: List[List[str]] = [[] for _ in range(shard_count)]
    for index, key in enumerate(node_keys):
        groups[index % shard_count].append(key)

    hosts: List[object] = []
    node_to_host: Dict[str, object] = {}
    try:
        for group in groups:
            if shard_count == 1:
                host = _LocalHost(deployment, load, config, group)
            else:
                host = _ForkHost(ctx, deployment, load, config, group)
            hosts.append(host)
            for key in group:
                node_to_host[key] = host

        window = 0
        in_flight: List[ShardMessage] = []
        while True:
            horizon = (window + 1) * latency
            inbound: Dict[object, Dict[str, List[ShardMessage]]] = {}
            for message in sorted(
                    in_flight,
                    key=lambda m: (m.delivery_time, m.src_node, m.seq)):
                host = node_to_host[message.dst_node]
                inbound.setdefault(host, {}).setdefault(
                    message.dst_node, []).append(message)
            if shard_count == 1:
                outbound, next_times = hosts[0].run_window(
                    horizon, inbound.get(hosts[0], {}))
                all_outbound = outbound
                all_times = list(next_times.values())
            else:
                for host in hosts:
                    host.send_window(horizon, inbound.get(host, {}))
                all_outbound = []
                all_times = []
                for host in hosts:
                    outbound, next_times = host.recv_window()
                    all_outbound.extend(outbound)
                    all_times.extend(next_times.values())
            in_flight = all_outbound
            if in_flight:
                window += 1
                continue
            pending = [t for t in all_times if t is not None]
            if not pending:
                break
            window = _window_after_idle(min(pending), latency, window)

        partials: Dict[str, _PartialResult] = {}
        for host in hosts:
            partials.update(host.finish())
    finally:
        for host in hosts:
            if isinstance(host, _ForkHost):
                host.close()

    services: Dict[str, object] = {}
    node_utilisation: Dict[str, float] = {}
    disk_utilisation: Dict[str, float] = {}
    breakers: Dict[str, dict] = {}
    recorder = None
    events_dispatched = 0
    for key in node_keys:
        partial = partials[key]
        services.update(partial.services)
        node_utilisation.update(partial.node_utilisation)
        disk_utilisation.update(partial.disk_utilisation)
        breakers.update(partial.breakers)
        events_dispatched += partial.events_dispatched
        if partial.recorder is not None:
            recorder = partial.recorder
    return RunResult(
        duration_s=max(config.duration_s, 1e-9),
        services=services,
        latency=recorder,
        node_utilisation=node_utilisation,
        disk_utilisation=disk_utilisation,
        faults=None,
        breakers=breakers,
        events_dispatched=events_dispatched,
    )
