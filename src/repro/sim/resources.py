"""Shared-resource primitives built on the DES engine.

:class:`Resource` models a counted server pool (CPU cores, disk channels,
worker slots) with FIFO queueing. :class:`Store` models an unbounded or
bounded FIFO of items (request queues, mailboxes between threads).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.sim.engine import Environment, Event
from repro.util.errors import SimulationError


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO wait queue.

    Usage from a process::

        grant = resource.request()
        yield grant
        ...  # hold the resource
        resource.release()

    The grant event's value is the resource itself. Waiting time statistics
    are accumulated so callers can report queueing delay.
    """

    def __init__(self, env: Environment, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[tuple[Event, float]] = deque()
        self.total_wait_time = 0.0
        self.total_grants = 0
        self.peak_queue_length = 0

    @property
    def in_use(self) -> int:
        """Number of servers currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a server."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires once a server is granted."""
        grant = self.env.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_grants += 1
            grant.succeed(self)
        else:
            self._waiters.append((grant, self.env.now))
            self.peak_queue_length = max(self.peak_queue_length, len(self._waiters))
        return grant

    def release(self) -> None:
        """Release one held server, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            grant, enqueued_at = self._waiters.popleft()
            self.total_wait_time += self.env.now - enqueued_at
            self.total_grants += 1
            grant.succeed(self)
        else:
            self._in_use -= 1

    def use(self, hold_time: float) -> Generator[Event, Any, None]:
        """A ready-made process body: acquire, hold ``hold_time``, release."""
        grant = self.request()
        yield grant
        try:
            yield self.env.timeout(hold_time)
        finally:
            self.release()

    @property
    def mean_wait_time(self) -> float:
        """Average queueing delay per grant so far."""
        if self.total_grants == 0:
            return 0.0
        return self.total_wait_time / self.total_grants


class Store:
    """A FIFO buffer of items with blocking get and optional capacity."""

    def __init__(
        self, env: Environment, capacity: Optional[int] = None, name: str = ""
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self.total_puts = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """A snapshot of buffered items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; blocks (as an event) when at capacity."""
        done = self.env.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            self.total_puts += 1
            done.succeed(None)
            return done
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((done, item))
            return done
        self._items.append(item)
        self.total_puts += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))
        done.succeed(None)
        return done

    def get(self) -> Event:
        """Remove and return the oldest item; blocks when empty."""
        got = self.env.event()
        if self._items:
            item = self._items.popleft()
            self._admit_blocked_putter()
            got.succeed(item)
        else:
            self._getters.append(got)
        return got

    def _admit_blocked_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            done, item = self._putters.popleft()
            self._items.append(item)
            self.total_puts += 1
            self.peak_occupancy = max(self.peak_occupancy, len(self._items))
            done.succeed(None)
