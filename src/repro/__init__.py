"""Ditto (ASPLOS 2023) reproduction: end-to-end application cloning for
networked cloud services, on a fully simulated system stack.

Top-level convenience exports — the typical flow:

>>> from repro import (CloneRequest, Deployment, DittoCloner,
...                    ExperimentConfig, LoadSpec, PLATFORM_A,
...                    build_memcached)
>>> original = Deployment.single(build_memcached())
>>> request = CloneRequest(
...     deployment=original, load=LoadSpec.open_loop(100_000),
...     config=ExperimentConfig(platform=PLATFORM_A, duration_s=0.02))
>>> result = DittoCloner().clone(request)   # doctest: +SKIP
>>> synthetic, report = result.synthetic, result.report  # doctest: +SKIP

Many clones at once go through the fleet control plane instead
(:class:`~repro.fleet.FleetClient`, or ``python -m repro.fleet`` from a
shell) — same :class:`CloneRequest`, plus a persistent job store,
scheduler, and per-job lifecycle.

Subpackages, bottom-up:

- :mod:`repro.util` — rng/statistics/quantisation helpers
- :mod:`repro.sim` — discrete-event simulation engine
- :mod:`repro.isa` — x86-flavoured instruction-set model
- :mod:`repro.hw` — caches, branch prediction, analytical OoO core,
  platforms A/B/C, contention
- :mod:`repro.kernelsim` — syscalls, VFS/page cache, network fabric,
  scheduling
- :mod:`repro.app` — application models (the paper's six workloads)
- :mod:`repro.loadgen` — open/closed-loop drivers
- :mod:`repro.tracing` — distributed tracing + dependency graphs
- :mod:`repro.runtime` — runs deployments, produces counters/latency
- :mod:`repro.profiling` — the SystemTap/SDE/Valgrind-like toolchain
- :mod:`repro.analysis` — tree-edit distance, clustering, error reports
- :mod:`repro.core` — Ditto itself: feature extraction, generators,
  fine tuning, the cloner, and the assembly emitter
- :mod:`repro.validation` — fidelity gates, artifact integrity,
  self-healing remediation (``python -m repro.validation`` gates a
  saved bundle)
- :mod:`repro.fleet` — the cloning control plane: persistent job
  store, scheduler, ``python -m repro.fleet`` CLI
"""

from repro.app.service import Deployment
from repro.app.workloads import (
    build_memcached,
    build_mongodb,
    build_nginx,
    build_redis,
    build_social_network,
    social_network_deployment,
)
from repro.core import (
    CloneRequest,
    CloneResult,
    DittoCloner,
    GeneratorConfig,
    emit_assembly,
)
from repro.faults import (
    CpuStealFault,
    DiskErrorFault,
    DiskSlowdownFault,
    FaultPlan,
    FaultWindow,
    LatencySpikeFault,
    NodeCrashFault,
    PacketLossFault,
)
from repro.fleet import ChaosPlan, CloneJobSpec, FleetClient, JobState
from repro.hw import PLATFORM_A, PLATFORM_B, PLATFORM_C, platform_by_name
from repro.loadgen import LoadSpec
from repro.runtime import (
    ExperimentCache,
    ExperimentConfig,
    ResilienceConfig,
    RetryPolicy,
    RunResult,
    run_experiment,
)
from repro.util.errors import (
    ArtifactIntegrityError,
    FidelityGateError,
    SimBudgetExceededError,
)
from repro.validation import (
    FidelityGate,
    FidelityReport,
    RemediationPolicy,
)

__version__ = "1.0.0"

__all__ = [
    "ArtifactIntegrityError",
    "CloneJobSpec",
    "CloneRequest",
    "CloneResult",
    "ChaosPlan",
    "CpuStealFault",
    "Deployment",
    "DiskErrorFault",
    "DiskSlowdownFault",
    "DittoCloner",
    "ExperimentCache",
    "ExperimentConfig",
    "FaultPlan",
    "FaultWindow",
    "FidelityGate",
    "FidelityGateError",
    "FidelityReport",
    "FleetClient",
    "GeneratorConfig",
    "JobState",
    "LatencySpikeFault",
    "LoadSpec",
    "NodeCrashFault",
    "RemediationPolicy",
    "SimBudgetExceededError",
    "PLATFORM_A",
    "PLATFORM_B",
    "PLATFORM_C",
    "PacketLossFault",
    "ResilienceConfig",
    "RetryPolicy",
    "RunResult",
    "build_memcached",
    "build_mongodb",
    "build_nginx",
    "build_redis",
    "build_social_network",
    "emit_assembly",
    "platform_by_name",
    "run_experiment",
    "social_network_deployment",
]
