"""RPC dependency-graph extraction (§4.2).

Given collected traces, reconstruct the microservice topology: a DAG
whose nodes are services and whose edges carry call counts, per-call
request/response size statistics, and per-parent fan-out — everything the
skeleton generator needs to recreate the API interfaces between synthetic
tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.tracing.span import Span, SpanKind
from repro.util.errors import ProfilingError
from repro.util.stats import OnlineStats


@dataclass
class EdgeStats:
    """Statistics of one caller->callee RPC edge."""

    calls: int = 0
    operations: Dict[str, int] = field(default_factory=dict)
    request_bytes: OnlineStats = field(default_factory=OnlineStats)
    response_bytes: OnlineStats = field(default_factory=OnlineStats)
    #: mean concurrent calls issued by one parent execution
    calls_per_parent: float = 0.0


@dataclass
class DependencyGraph:
    """The extracted topology."""

    graph: nx.DiGraph
    root_services: List[str]
    operation_mix: Dict[str, Dict[str, float]]   # service -> op -> weight

    def services(self) -> List[str]:
        """All services, topologically sorted from the roots."""
        return list(nx.topological_sort(self.graph))

    def edge(self, src: str, dst: str) -> EdgeStats:
        """Stats for one edge."""
        data = self.graph.get_edge_data(src, dst)
        if data is None:
            raise ProfilingError(f"no edge {src!r} -> {dst!r}")
        return data["stats"]

    def downstreams(self, service: str) -> List[str]:
        """Callee services of ``service``."""
        return list(self.graph.successors(service))


def extract_dependency_graph(spans: List[Span]) -> DependencyGraph:
    """Reconstruct the service DAG from finished spans.

    Client spans are matched to the server span of the same trace whose
    parent is that client span; edges aggregate call counts and byte-size
    statistics. Roots are services whose server spans have no parent.
    """
    finished = [span for span in spans if span.finished]
    if not finished:
        raise ProfilingError("no finished spans to extract a topology from")
    by_id: Dict[Tuple[int, int], Span] = {
        (span.trace_id, span.span_id): span for span in finished
    }
    server_by_parent: Dict[Tuple[int, int], Span] = {
        (span.trace_id, span.parent_id): span
        for span in finished
        if span.kind is SpanKind.SERVER and span.parent_id is not None
    }
    graph = nx.DiGraph()
    roots: Dict[str, int] = {}
    op_mix: Dict[str, Dict[str, float]] = {}
    parent_call_counts: Dict[Tuple[str, str, int, int], int] = {}
    for span in finished:
        if span.kind is SpanKind.SERVER:
            graph.add_node(span.service)
            op_mix.setdefault(span.service, {})
            op_mix[span.service][span.operation] = (
                op_mix[span.service].get(span.operation, 0.0) + 1.0
            )
            if span.parent_id is None:
                roots[span.service] = roots.get(span.service, 0) + 1
            continue
        # CLIENT span: its parent is the caller's server span; its child
        # (same-trace server span pointing at it) is the callee.
        if span.parent_id is None:
            continue
        parent = by_id.get((span.trace_id, span.parent_id))
        if parent is None:
            continue
        # The callee is the server span whose parent is this client span.
        callee_span = server_by_parent.get((span.trace_id, span.span_id))
        if callee_span is None:
            continue
        callee_operation = callee_span.operation
        src, dst = parent.service, callee_span.service
        graph.add_edge(src, dst)
        data = graph.get_edge_data(src, dst)
        stats: EdgeStats = data.setdefault("stats", EdgeStats())
        stats.calls += 1
        stats.operations[callee_operation] = (
            stats.operations.get(callee_operation, 0) + 1
        )
        stats.request_bytes.add(span.tags.get("request_bytes", 0.0))
        stats.response_bytes.add(span.tags.get("response_bytes", 0.0))
        key = (src, dst, parent.trace_id, parent.span_id)
        parent_call_counts[key] = parent_call_counts.get(key, 0) + 1
    # Fan-out per parent execution.
    per_edge_parents: Dict[Tuple[str, str], List[int]] = {}
    for (src, dst, _, _), count in parent_call_counts.items():
        per_edge_parents.setdefault((src, dst), []).append(count)
    for (src, dst), counts in per_edge_parents.items():
        stats = graph.get_edge_data(src, dst)["stats"]
        stats.calls_per_parent = sum(counts) / len(counts)
    if not nx.is_directed_acyclic_graph(graph):
        raise ProfilingError("extracted topology contains a cycle")
    if not roots:
        raise ProfilingError("no root services found in traces")
    return DependencyGraph(
        graph=graph,
        root_services=sorted(roots, key=roots.get, reverse=True),
        operation_mix=op_mix,
    )
