"""The collecting tracer."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.tracing.span import Span, SpanKind
from repro.util.errors import ConfigurationError


class Tracer:
    """Collects spans with head-based sampling.

    Sampling is decided once per trace (at root creation) so sampled
    traces are always complete — the property dependency-graph extraction
    relies on. The paper notes properly-sampled tracing has negligible
    overhead; here sampling simply bounds memory.
    """

    def __init__(self, sample_rate: float = 1.0, seed: int = 7) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError("sample_rate must be within [0, 1]")
        self.sample_rate = sample_rate
        self._rng = np.random.default_rng(seed)
        self._next_trace_id = 1
        self._next_span_id = 1
        self._sampled_traces: Dict[int, bool] = {}
        self.spans: List[Span] = []

    def start_trace(self) -> int:
        """Open a new trace; returns its id (sampling decided here)."""
        trace_id = self._next_trace_id
        self._next_trace_id += 1
        self._sampled_traces[trace_id] = bool(
            self._rng.random() < self.sample_rate
        )
        return trace_id

    def end_trace(self, trace_id: int) -> None:
        """Close a trace, evicting its sampling verdict.

        The verdict is only consulted while spans are still being
        opened, so it is kept only while the trace is open; without this
        eviction ``_sampled_traces`` grows by one entry per request for
        the life of the tracer. Recorded spans are unaffected. Unknown
        (or already-ended) trace ids are tolerated.
        """
        self._sampled_traces.pop(trace_id, None)

    @property
    def open_traces(self) -> int:
        """Traces started but not yet ended."""
        return len(self._sampled_traces)

    def reset(self) -> None:
        """Drop every collected span and open-trace verdict.

        Id counters restart too, so a reset tracer behaves like a fresh
        one (the sampling RNG keeps its state: the decision stream stays
        one draw per ``start_trace`` with no replays).
        """
        self._sampled_traces.clear()
        self.spans.clear()
        self._next_trace_id = 1
        self._next_span_id = 1

    def is_sampled(self, trace_id: int) -> bool:
        """Whether a trace's spans are being recorded."""
        return self._sampled_traces.get(trace_id, False)

    def start_span(
        self,
        trace_id: int,
        service: str,
        operation: str,
        kind: SpanKind,
        start_time: float,
        parent_id: Optional[int] = None,
        tags: Optional[Dict[str, float]] = None,
    ) -> Optional[Span]:
        """Open a span (returns None for unsampled traces)."""
        if not self.is_sampled(trace_id):
            return None
        span = Span(
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            service=service,
            operation=operation,
            kind=kind,
            start_time=start_time,
            tags=dict(tags or {}),
        )
        self._next_span_id += 1
        self.spans.append(span)
        return span

    def finished_spans(self) -> List[Span]:
        """All closed spans collected so far."""
        return [span for span in self.spans if span.finished]

    def traces(self) -> Dict[int, List[Span]]:
        """Finished spans grouped by trace id."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.finished_spans():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped
