"""Distributed-tracing substrate (§4.2).

Production microservice deployments run tracers like Jaeger/Zipkin/Dapper;
Ditto consumes their sampled end-to-end traces to learn the RPC dependency
graph. This package provides the span data model, a sampling tracer the
runtime reports RPCs to, and the dependency-graph extraction Ditto's
topology analyser runs.
"""

from repro.tracing.span import Span, SpanKind
from repro.tracing.tracer import Tracer
from repro.tracing.graph import DependencyGraph, extract_dependency_graph

__all__ = [
    "DependencyGraph",
    "Span",
    "SpanKind",
    "Tracer",
    "extract_dependency_graph",
]
