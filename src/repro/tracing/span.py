"""Trace spans."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.errors import ConfigurationError


class SpanKind(enum.Enum):
    """Role of a span within a trace."""

    SERVER = "server"   # handling a request
    CLIENT = "client"   # issuing an RPC to a downstream tier


@dataclass
class Span:
    """One unit of traced work.

    Mirrors the OpenTracing data model: a trace id shared across the whole
    request tree, a span id, a parent pointer, the owning service, the
    operation (handler) name, timestamps, and free-form tags (Ditto stores
    request/response byte counts there).
    """

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    service: str
    operation: str
    kind: SpanKind
    start_time: float
    end_time: Optional[float] = None
    tags: Dict[str, float] = field(default_factory=dict)

    def finish(self, end_time: float) -> None:
        """Close the span at ``end_time``."""
        if end_time < self.start_time:
            raise ConfigurationError("span cannot end before it starts")
        self.end_time = end_time

    @property
    def duration(self) -> float:
        """Span duration (0 while unfinished)."""
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` was called."""
        return self.end_time is not None
