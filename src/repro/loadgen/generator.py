"""Open- and closed-loop request generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.sim import Environment, Event
from repro.util.errors import (
    CircuitOpenError,
    ConfigurationError,
    LoadSheddedError,
    ReproError,
    RetryExhaustedError,
    RpcTimeoutError,
)
from repro.util.rng import RngStream
from repro.util.stats import Histogram, percentile

#: a callable the runtime provides: submit(handler_name) -> response Event
SubmitFn = Callable[[str], Event]

#: the per-request outcome vocabulary recorders count
REQUEST_OUTCOMES = ("ok", "timeout", "shed", "error")


def classify_failure(error: BaseException) -> str:
    """Map a failed request's exception to its outcome bucket.

    Timeouts (including a retry budget that died timing out) are
    ``"timeout"``, admission rejections are ``"shed"``, everything else
    the library raises — injected faults, open circuit breakers — is
    ``"error"``.
    """
    if isinstance(error, RpcTimeoutError):
        return "timeout"
    if isinstance(error, RetryExhaustedError):
        if isinstance(error.last_error, RpcTimeoutError):
            return "timeout"
        return "error"
    if isinstance(error, (LoadSheddedError, CircuitOpenError)):
        return "shed" if isinstance(error, LoadSheddedError) else "error"
    return "error"


@dataclass
class LatencyRecorder:
    """Collects per-request latencies and outcomes, grouped by handler.

    Latency percentiles cover *successful* requests only; failed
    requests land in ``outcomes`` (``timeout`` / ``shed`` / ``error``)
    and in ``failures_by_handler``, so error rates are first-class
    alongside the latency distribution instead of polluting it.
    """

    samples: List[float] = field(default_factory=list)
    by_handler: Dict[str, List[float]] = field(default_factory=dict)
    completed: int = 0
    issued: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    failures_by_handler: Dict[str, Dict[str, int]] = field(
        default_factory=dict)

    def record(self, handler: str, latency_s: float) -> None:
        """Record one successfully completed request."""
        self.samples.append(latency_s)
        self.by_handler.setdefault(handler, []).append(latency_s)
        self.completed += 1
        self.outcomes["ok"] = self.outcomes.get("ok", 0) + 1

    def record_failure(self, handler: str, outcome: str) -> None:
        """Record one failed request under its outcome bucket."""
        if outcome not in REQUEST_OUTCOMES or outcome == "ok":
            raise ConfigurationError(
                f"not a failure outcome: {outcome!r}")
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        per_handler = self.failures_by_handler.setdefault(handler, {})
        per_handler[outcome] = per_handler.get(outcome, 0) + 1

    @property
    def failed(self) -> int:
        """Requests that finished without a successful response."""
        return sum(count for outcome, count in self.outcomes.items()
                   if outcome != "ok")

    @property
    def error_rate(self) -> float:
        """Failed fraction of finished requests (0.0 when none failed)."""
        finished = self.completed + self.failed
        if finished <= 0:
            return 0.0
        return self.failed / finished

    def outcome_counts(self) -> Dict[str, int]:
        """All outcome buckets, zero-filled for stability in summaries."""
        return {outcome: self.outcomes.get(outcome, 0)
                for outcome in REQUEST_OUTCOMES}

    def percentile(self, q: float) -> float:
        """Latency percentile in seconds over all handlers."""
        return percentile(self.samples, q)

    @property
    def mean(self) -> float:
        """Average latency in seconds."""
        if not self.samples:
            raise ConfigurationError("no latency samples recorded")
        return float(sum(self.samples) / len(self.samples))


@dataclass(frozen=True)
class LoadSpec:
    """One load point.

    Open-loop: ``qps`` target arrival rate (Poisson unless
    ``deterministic``); closed-loop: ``connections`` each keeping one
    outstanding request with ``think_time_s`` between completions.
    """

    kind: str                      # "open" | "closed"
    qps: float = 0.0
    connections: int = 0
    think_time_s: float = 0.0
    deterministic: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("open", "closed"):
            raise ConfigurationError(f"unknown load kind {self.kind!r}")
        if self.kind == "open" and self.qps <= 0:
            raise ConfigurationError("open-loop load needs qps > 0")
        if self.kind == "closed" and self.connections < 1:
            raise ConfigurationError("closed-loop load needs connections >= 1")
        if self.think_time_s < 0:
            raise ConfigurationError("think time must be non-negative")

    @staticmethod
    def open_loop(qps: float, deterministic: bool = False) -> "LoadSpec":
        """An open-loop (mutated/tcpkali/wrk2-style) load point."""
        return LoadSpec(kind="open", qps=qps, deterministic=deterministic)

    @staticmethod
    def closed_loop(connections: int, think_time_s: float = 0.0) -> "LoadSpec":
        """A closed-loop (YCSB-style) load point."""
        return LoadSpec(kind="closed", connections=connections,
                        think_time_s=think_time_s)


class OpenLoopGenerator:
    """Injects requests at a target rate, regardless of completions."""

    def __init__(
        self,
        env: Environment,
        submit: SubmitFn,
        mix: Histogram,
        qps: float,
        duration_s: float,
        rng_stream: RngStream,
        recorder: Optional[LatencyRecorder] = None,
        deterministic: bool = False,
    ) -> None:
        if qps <= 0 or duration_s <= 0:
            raise ConfigurationError("qps and duration must be positive")
        self.env = env
        self.submit = submit
        self.mix = mix
        self.qps = qps
        self.duration_s = duration_s
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self.deterministic = deterministic
        self._rng = rng_stream.rng("openloop")

    def start(self) -> Event:
        """Start injecting; returns the injector process."""
        return self.env.process(self._inject(), name="open-loop")

    #: arrivals scheduled per ``timeout_many`` pass in deterministic mode
    ARRIVAL_TRAIN = 1024

    def _inject(self):
        end = self.env.now + self.duration_s
        keys, probs = self.mix.keys_and_probs()
        # Inverse-CDF draw replicating rng.choice(p=probs) bit-for-bit
        # (same single rng.random() per request) without its per-call
        # validation overhead.
        cdf = np.cumsum(probs)
        cdf /= cdf[-1]
        last = len(keys) - 1
        if self.deterministic:
            yield from self._inject_paced(end, keys, cdf, last)
            return
        # Poisson arrivals interleave the gap and handler draws on one
        # RNG stream, so they cannot be batched without perturbing the
        # draw order — this loop stays request-at-a-time.
        while self.env.now < end:
            gap = float(self._rng.exponential(1.0 / self.qps))
            yield self.env.timeout(gap)
            if self.env.now >= end:
                break
            handler = str(keys[min(
                cdf.searchsorted(self._rng.random(), side="right"), last)])
            self.recorder.issued += 1
            self.env.process(self._track(handler), name="req")

    def _inject_paced(self, end, keys, cdf, last):
        """Deterministic arrivals, scheduled as whole trains.

        Fixed-gap arrivals carry no randomness in their timing, so a
        train of them is scheduled in one
        :meth:`~repro.sim.engine.Environment.timeout_many` insertion
        pass; each arrival timeout carries a callback that draws the
        handler (in chronological order, exactly like the sequential
        loop) and issues the request — no injector wake-up and no
        per-arrival process between requests.
        """
        gap = 1.0 / self.qps
        rng = self._rng
        recorder = self.recorder
        env = self.env

        def arrive(event: Event) -> None:
            handler = str(keys[min(
                cdf.searchsorted(rng.random(), side="right"), last)])
            recorder.issued += 1
            env.process(self._track(handler), name="req")

        while True:
            start = env.now
            count = 0
            delays = []
            while count < self.ARRIVAL_TRAIN:
                count += 1
                if start + count * gap >= end:
                    break
                delays.append(count * gap)
            if not delays:
                return
            train = env.timeout_many(delays)
            for timeout in train:
                timeout.callbacks.append(arrive)
            # Ride the train's tail so the next one starts where this
            # one ended (float-for-float with arrivals at start + k*gap).
            yield train[-1]

    def _track(self, handler: str):
        start = self.env.now
        try:
            response = self.submit(handler)
            yield response
        except ReproError as error:
            self.recorder.record_failure(handler, classify_failure(error))
            return
        self.recorder.record(handler, self.env.now - start)


class ClosedLoopGenerator:
    """N connections, each one outstanding request at a time (YCSB)."""

    def __init__(
        self,
        env: Environment,
        submit: SubmitFn,
        mix: Histogram,
        connections: int,
        duration_s: float,
        rng_stream: RngStream,
        recorder: Optional[LatencyRecorder] = None,
        think_time_s: float = 0.0,
    ) -> None:
        if connections < 1 or duration_s <= 0:
            raise ConfigurationError("connections and duration must be positive")
        self.env = env
        self.submit = submit
        self.mix = mix
        self.connections = connections
        self.duration_s = duration_s
        self.think_time_s = think_time_s
        self.recorder = recorder if recorder is not None else LatencyRecorder()
        self._rng_stream = rng_stream

    def start(self) -> Event:
        """Start all connections; returns a join event over them."""
        procs = [
            self.env.process(self._connection(i), name=f"conn-{i}")
            for i in range(self.connections)
        ]
        return self.env.all_of(procs)

    def _connection(self, index: int):
        rng = self._rng_stream.rng("closedloop", str(index))
        keys, probs = self.mix.keys_and_probs()
        cdf = np.cumsum(probs)
        cdf /= cdf[-1]
        last = len(keys) - 1
        end = self.env.now + self.duration_s
        while self.env.now < end:
            handler = str(keys[min(
                cdf.searchsorted(rng.random(), side="right"), last)])
            start = self.env.now
            self.recorder.issued += 1
            try:
                response = self.submit(handler)
                yield response
            except ReproError as error:
                self.recorder.record_failure(handler,
                                             classify_failure(error))
            else:
                self.recorder.record(handler, self.env.now - start)
            if self.think_time_s > 0:
                yield self.env.timeout(self.think_time_s)


def build_generator(
    env: Environment,
    submit: SubmitFn,
    mix: Histogram,
    load: LoadSpec,
    duration_s: float,
    rng_stream: RngStream,
    recorder: Optional[LatencyRecorder] = None,
):
    """Instantiate the right generator for a :class:`LoadSpec`."""
    if load.kind == "open":
        return OpenLoopGenerator(
            env, submit, mix, load.qps, duration_s, rng_stream,
            recorder=recorder, deterministic=load.deterministic,
        )
    return ClosedLoopGenerator(
        env, submit, mix, load.connections, duration_s, rng_stream,
        recorder=recorder, think_time_s=load.think_time_s,
    )
