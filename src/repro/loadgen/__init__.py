"""Load generators.

Mirrors the paper's drivers (§6.1.2): open-loop generators (the mutated
Memcached generator, tcpkali, the open-loop wrk2 fork) inject requests at
a target rate regardless of completions; closed-loop generators (YCSB for
MongoDB/Redis) keep one outstanding request per connection, which is why
the paper's MongoDB/Redis latencies stay flat at saturation.
"""

from repro.loadgen.distributions import (
    ConstantInterarrival,
    ExponentialInterarrival,
    UniformKeys,
    ZipfKeys,
)
from repro.loadgen.generator import (
    REQUEST_OUTCOMES,
    ClosedLoopGenerator,
    LatencyRecorder,
    LoadSpec,
    OpenLoopGenerator,
    build_generator,
    classify_failure,
)

__all__ = [
    "ClosedLoopGenerator",
    "ConstantInterarrival",
    "ExponentialInterarrival",
    "LatencyRecorder",
    "LoadSpec",
    "OpenLoopGenerator",
    "REQUEST_OUTCOMES",
    "UniformKeys",
    "ZipfKeys",
    "build_generator",
    "classify_failure",
]
