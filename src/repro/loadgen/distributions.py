"""Arrival processes and key-popularity distributions."""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError


class ExponentialInterarrival:
    """Poisson arrivals at a target rate (open-loop generators)."""

    def __init__(self, rate_per_s: float, rng: np.random.Generator) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate_per_s = rate_per_s
        self._rng = rng

    def next_gap(self) -> float:
        """Seconds until the next arrival."""
        return float(self._rng.exponential(1.0 / self.rate_per_s))


class ConstantInterarrival:
    """Deterministic arrivals (wrk2's fixed-rate scheduling)."""

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        self.rate_per_s = rate_per_s

    def next_gap(self) -> float:
        """Seconds until the next arrival."""
        return 1.0 / self.rate_per_s


class UniformKeys:
    """Uniform key popularity (the paper's YCSB-uniform MongoDB setup)."""

    def __init__(self, key_count: int, rng: np.random.Generator) -> None:
        if key_count < 1:
            raise ConfigurationError("key_count must be >= 1")
        self.key_count = key_count
        self._rng = rng

    def next_key(self) -> int:
        """Draw one key index."""
        return int(self._rng.integers(0, self.key_count))


class ZipfKeys:
    """Zipfian key popularity (YCSB's default for cache-friendly loads)."""

    def __init__(
        self, key_count: int, rng: np.random.Generator, s: float = 0.99
    ) -> None:
        if key_count < 1:
            raise ConfigurationError("key_count must be >= 1")
        if s <= 0:
            raise ConfigurationError("zipf exponent must be positive")
        self.key_count = key_count
        self.s = s
        self._rng = rng
        ranks = np.arange(1, key_count + 1, dtype=float)
        weights = ranks**-s
        self._cdf = np.cumsum(weights / weights.sum())

    def next_key(self) -> int:
        """Draw one key index (0 is the most popular)."""
        return int(np.searchsorted(self._cdf, self._rng.random()))
