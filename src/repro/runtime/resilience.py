"""Resilience semantics for the simulated RPC layer.

Real microservice meshes do not make bare RPCs: they wrap every call in
a timeout, retry transient failures with exponential backoff and full
jitter, trip a circuit breaker per downstream, and shed load at
admission when queues grow past bound. These are exactly the behaviours
that shape a service's *tail* under faults — the regime Ditto's clones
must stay representative in — so the simulated
:class:`~repro.runtime.service.ServiceRuntime` implements all four,
gated on a :class:`ResilienceConfig`.

Everything here is deterministic: backoff jitter draws from a named
stream of the experiment's :class:`~repro.util.rng.RngStream`, and the
circuit breaker is a pure function of simulated time and observed
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.util.errors import ConfigurationError

__all__ = ["CircuitBreaker", "ResilienceConfig", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter (the AWS-recommended form).

    Attempt ``n`` (1-based) that fails waits
    ``uniform(0, min(max_backoff_s, base_backoff_s * 2**(n-1)))``
    before the next try.
    """

    max_attempts: int = 3
    base_backoff_s: float = 500e-6
    max_backoff_s: float = 10e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff_s <= 0 or self.max_backoff_s <= 0:
            raise ConfigurationError("backoff bounds must be positive")
        if self.max_backoff_s < self.base_backoff_s:
            raise ConfigurationError(
                "max_backoff_s must be >= base_backoff_s")

    def backoff_s(self, attempt: int, rng) -> float:
        """Jittered sleep before the retry that follows ``attempt``."""
        cap = min(self.max_backoff_s,
                  self.base_backoff_s * (2.0 ** max(0, attempt - 1)))
        return float(rng.random()) * cap


@dataclass(frozen=True)
class ResilienceConfig:
    """Per-service RPC resilience knobs (picklable, stably hashable).

    ``None`` anywhere in the runtime means "no resilience layer" — the
    historical bare-RPC behaviour, kept bit-identical.
    """

    #: per-attempt RPC timeout; ``None`` disables timeouts
    rpc_timeout_s: Optional[float] = 5e-3
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: consecutive failures that trip a downstream's breaker
    breaker_failure_threshold: int = 5
    #: how long an open breaker rejects before probing (half-open)
    breaker_recovery_s: float = 10e-3
    #: admission bound: shed requests once a service queue holds this
    #: many; ``None`` disables shedding
    max_queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rpc_timeout_s is not None and self.rpc_timeout_s <= 0:
            raise ConfigurationError("rpc timeout must be positive")
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError(
                "breaker_failure_threshold must be >= 1")
        if self.breaker_recovery_s <= 0:
            raise ConfigurationError("breaker recovery must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")


class CircuitBreaker:
    """Per-downstream circuit breaker (closed → open → half-open).

    Closed: calls flow; ``failure_threshold`` *consecutive* failures
    trip it. Open: calls are rejected without being attempted until
    ``recovery_s`` of simulated time passes. Half-open: exactly one
    probe call is admitted; success closes the breaker, failure
    re-opens it for another recovery period.
    """

    def __init__(self, env, target: str, *, failure_threshold: int,
                 recovery_s: float) -> None:
        self.env = env
        self.target = target
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.open_transitions = 0
        self.rejections = 0
        self._probe_inflight = False

    def allow(self) -> bool:
        """May a call proceed right now? (May move open → half-open.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self.env.now - self.opened_at >= self.recovery_s:
                self.state = "half-open"
                self._probe_inflight = True
                return True
            self.rejections += 1
            return False
        # half-open: a single probe owns the breaker
        if self._probe_inflight:
            self.rejections += 1
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        """The admitted call completed; close the breaker."""
        self.state = "closed"
        self.consecutive_failures = 0
        self._probe_inflight = False

    def record_failure(self) -> None:
        """The admitted call failed; maybe trip or re-open."""
        self.consecutive_failures += 1
        tripped = (self.state == "half-open"
                   or self.consecutive_failures >= self.failure_threshold)
        self._probe_inflight = False
        if tripped and self.state != "open":
            self.state = "open"
            self.opened_at = self.env.now
            self.open_transitions += 1
