"""Execution runtime: runs deployments on simulated platforms.

The runtime binds an application model (service specs), a hardware
platform (analytical core + caches + devices), the kernel substrate
(syscalls, VFS, network fabric, scheduling) and a load generator into a
discrete-event simulation, producing the measurements the paper reports:
per-service performance counters (IPC, miss rates, branch mispredictions,
top-down breakdown), network/disk bandwidth, and latency percentiles.

Both the original applications and Ditto's synthetic clones run through
this same runtime — differences in results come only from how faithfully
the clone's program reconstructs the original's characteristics.
"""

from repro.runtime.metrics import RunResult, ServiceMetrics
from repro.runtime.pricing import BlockPricer, PricingKey
from repro.runtime.experiment import ExperimentConfig, run_experiment, sweep_load
from repro.runtime.expcache import CacheStats, ExperimentCache
from repro.runtime.resilience import CircuitBreaker, ResilienceConfig, RetryPolicy

__all__ = [
    "BlockPricer",
    "CacheStats",
    "CircuitBreaker",
    "ExperimentCache",
    "ExperimentConfig",
    "PricingKey",
    "ResilienceConfig",
    "RetryPolicy",
    "RunResult",
    "ServiceMetrics",
    "run_experiment",
    "sweep_load",
]
