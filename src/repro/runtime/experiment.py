"""Experiment orchestration: deploy, load, measure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.app.service import Deployment
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hw.contention import CoRunner, contention_factors
from repro.hw.platform import PlatformSpec
from repro.kernelsim.node import Node
from repro.loadgen.generator import LatencyRecorder, LoadSpec, build_generator
from repro.runtime.metrics import RunResult
from repro.runtime.pricing import BlockPricer
from repro.runtime.resilience import ResilienceConfig
from repro.runtime.service import NodeState, ServiceRuntime
from repro.sim import Environment
from repro.telemetry.context import current_session
from repro.telemetry.spans import span
from repro.tracing.tracer import Tracer
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream, derive_seed

#: cap on how much of a co-located tier's code can pollute the i-side
COLOCATED_CODE_CAP = 512 * 1024


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs for one experiment run."""

    platform: PlatformSpec
    duration_s: float = 1.0
    seed: int = 42
    frequency_ghz: Optional[float] = None    # DVFS override (Fig. 11)
    cores: Optional[int] = None              # core-count override (Fig. 11)
    corunners: Tuple[CoRunner, ...] = ()     # interference (Fig. 10)
    page_cache_bytes: Optional[float] = None
    trace_sample_rate: float = 0.1
    connections_hint: Optional[int] = None
    tracer: Optional[Tracer] = None
    #: scripted faults injected into the run; ``None`` or an empty plan
    #: leaves the run bit-identical to a fault-free one
    fault_plan: Optional[FaultPlan] = None
    #: RPC timeout/retry/breaker/shedding semantics; ``None`` keeps the
    #: historical bare-RPC behaviour
    resilience: Optional[ResilienceConfig] = None
    #: watchdog: cap on queue entries the run may dispatch (``None``
    #: disables; a disabled run takes the engine's historical fast path)
    max_sim_events: Optional[int] = None
    #: watchdog: absolute simulated-time deadline for the run; a run
    #: normally finishes shortly after ``duration_s``, so a pathological
    #: config (runaway retry storm, tuning knob blow-up) trips this
    #: instead of hanging the tier
    sim_deadline_s: Optional[float] = None
    #: watchdog: livelock detector — consecutive dispatches allowed
    #: without the simulated clock advancing
    max_stalled_events: Optional[int] = None
    #: partition the deployment's nodes across this many simulation
    #: shards (processes) with deterministic cross-shard messaging —
    #: see :mod:`repro.sim.shard`. ``None`` keeps the single-process
    #: runner; any value (including 1) selects the sharded runner,
    #: whose result digest is independent of the shard count.
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.max_sim_events is not None and self.max_sim_events < 1:
            raise ConfigurationError("max_sim_events must be >= 1")
        if self.sim_deadline_s is not None \
                and self.sim_deadline_s < self.duration_s:
            raise ConfigurationError(
                f"sim_deadline_s ({self.sim_deadline_s!r}) must cover "
                f"duration_s ({self.duration_s!r})")
        if self.max_stalled_events is not None \
                and self.max_stalled_events < 1:
            raise ConfigurationError("max_stalled_events must be >= 1")
        if (self.fault_plan is not None
                and not isinstance(self.fault_plan, FaultPlan)):
            raise ConfigurationError(
                f"fault_plan must be a FaultPlan, got {self.fault_plan!r}")
        if (self.resilience is not None
                and not isinstance(self.resilience, ResilienceConfig)):
            raise ConfigurationError(
                f"resilience must be a ResilienceConfig, "
                f"got {self.resilience!r}")


def run_experiment(
    deployment: Deployment,
    load: LoadSpec,
    config: ExperimentConfig,
) -> RunResult:
    """Run one load point of a deployment and collect measurements.

    Telemetry (when a session is active): the run is wrapped in a
    wall-clock span, counted in ``ditto_experiments_total``, and — if
    the session records simulated time — services and kernel devices
    emit their per-request/per-IO events onto a fresh timeline run.
    All of it is observation-only: measured results are identical with
    telemetry on, off, or absent.
    """
    session = current_session()
    timeline_run = None
    if (session is not None and session.timeline is not None
            and config.shards is None):
        load_text = (f"open {load.qps:g} qps" if load.kind == "open"
                     else f"closed {load.connections} conns")
        timeline_run = session.timeline.begin_run(
            f"{deployment.entry_service} ({load_text})")
    with span("run_experiment", category="experiment",
              service=deployment.entry_service,
              duration_s=config.duration_s):
        if config.shards is not None:
            from repro.sim.shard import run_sharded_experiment
            result = run_sharded_experiment(deployment, load, config)
        else:
            result = _run_experiment(deployment, load, config, timeline_run)
    if session is not None:
        session.registry.counter(
            "ditto_experiments_total",
            "simulated experiment runs executed").inc()
        requests = session.registry.counter(
            "ditto_sim_requests_total",
            "requests completed inside simulated runs", ("service",))
        for name, metrics in result.services.items():
            if metrics.requests:
                requests.inc(metrics.requests, service=name)
    return result


@dataclass
class SimulationBuild:
    """One assembled simulation: environment, devices, services, load.

    Produced by :func:`_build_simulation` for both the single-process
    runner (all nodes in one environment) and the sharded runner (one
    build per partition, services on non-local nodes replaced by
    cross-shard stubs; ``generator``/``recorder`` are ``None`` when the
    entry service lives elsewhere).
    """

    env: Environment
    injector: Optional[FaultInjector]
    tracer: Tracer
    nodes: Dict[str, Node]
    registry: Dict[str, ServiceRuntime]
    recorder: Optional[LatencyRecorder]
    generator: Optional[object]


def _build_simulation(
    deployment: Deployment,
    load: LoadSpec,
    config: ExperimentConfig,
    timeline_run=None,
    local_nodes: Optional[frozenset] = None,
    remote_stub=None,
) -> SimulationBuild:
    """Assemble one simulation (or one shard partition of it).

    ``local_nodes`` limits the build to a subset of the deployment's
    nodes; services placed elsewhere are registered as
    ``remote_stub(service_name, node_name)`` proxies instead of
    runtimes, and the load generator is only built when the entry
    service is local. ``None`` builds everything (the classic runner).
    """
    env = Environment(timeline=timeline_run)
    stream = RngStream(config.seed, "experiment")
    # Fault injection: the injector draws exclusively from streams under
    # derive_seed(seed, "faults", ...), so it cannot perturb the load
    # generator's or any profiler's randomness. An absent/empty plan
    # attaches nothing — the run is bit-identical to the fault-free one.
    injector: Optional[FaultInjector] = None
    if config.fault_plan is not None and not config.fault_plan.is_empty:
        injector = FaultInjector(
            config.fault_plan,
            seed=derive_seed(config.seed, "faults")).attach(env)
    tracer = config.tracer if config.tracer is not None else Tracer(
        sample_rate=config.trace_sample_rate, seed=config.seed)
    platform = config.platform
    corunners = list(config.corunners)
    # Nodes with their devices (NIC/disk shares degraded by stressors).
    nodes: Dict[str, Node] = {}
    node_states: Dict[str, NodeState] = {}
    for node_name in deployment.node_names():
        if local_nodes is not None and node_name not in local_nodes:
            continue
        factors_probe = contention_factors(0.0, corunners)
        node = Node(
            env, platform, name=node_name,
            cores=config.cores,
            frequency_ghz=config.frequency_ghz,
            page_cache_bytes=config.page_cache_bytes,
            nic_bandwidth_share=factors_probe.net_share,
            disk_bandwidth_share=factors_probe.disk_share,
        )
        nodes[node_name] = node
        state = NodeState(node=node)
        for service_name in deployment.services_on(node_name):
            program = deployment.services[service_name].program
            state.colocated_code_bytes[service_name] = min(
                COLOCATED_CODE_CAP, program.hot_code_bytes)
            state.colocated_resident_bytes[service_name] = (
                program.resident_bytes)
        node_states[node_name] = state
    pricer = BlockPricer(platform, frequency_ghz=config.frequency_ghz)
    # Connection hint: closed-loop connection count, else a typical pool.
    if config.connections_hint is not None:
        connections = config.connections_hint
    elif load.kind == "closed":
        connections = load.connections
    else:
        connections = 32
    # Service runtimes share one registry for RPC routing.
    registry: Dict[str, ServiceRuntime] = {}
    for service_name, spec in deployment.services.items():
        service_node = deployment.node_of(service_name)
        if local_nodes is not None and service_node not in local_nodes:
            registry[service_name] = remote_stub(service_name, service_node)
            continue
        node = nodes[service_node]
        factors = contention_factors(spec.program.resident_bytes, corunners)
        runtime = ServiceRuntime(
            env=env,
            spec=spec,
            node=node,
            node_state=node_states[service_node],
            pricer=pricer,
            tracer=tracer,
            base_factors=factors,
            connections_hint=connections,
            registry=registry,
            cross_node_latency_s=platform.network.base_latency_s,
            resilience=config.resilience,
            rng_stream=stream,
        )
        registry[service_name] = runtime
        # Pre-warm the page cache to steady state: a long-running service
        # arrives at our measurement window with its cache share filled.
        for fname in spec.files:
            file_spec = node.filesystem.lookup(fname)
            capacity = node.filesystem.page_cache.capacity_bytes
            node.filesystem.page_cache.write(
                file_spec, min(file_spec.size_bytes, capacity))
    for runtime in registry.values():
        if isinstance(runtime, ServiceRuntime):
            runtime.start()
    entry_node = deployment.node_of(deployment.entry_service)
    if local_nodes is not None and entry_node not in local_nodes:
        return SimulationBuild(env=env, injector=injector, tracer=tracer,
                               nodes=nodes, registry=registry,
                               recorder=None, generator=None)
    entry = registry[deployment.entry_service]
    recorder = LatencyRecorder()

    def submit(handler: str):
        trace_id = tracer.start_trace()
        response = entry.submit(handler, src_node="client",
                                trace_id=trace_id)
        # Evict the sampling verdict once the request tree completes —
        # every span below the root has been opened by then, and without
        # this the tracer's verdict map grows one entry per request.
        response.callbacks.append(lambda _evt: tracer.end_trace(trace_id))
        return response

    generator = build_generator(
        env=env,
        submit=submit,
        mix=deployment.services[deployment.entry_service].mix_histogram(),
        load=load,
        duration_s=config.duration_s,
        rng_stream=stream,
        recorder=recorder,
    )
    return SimulationBuild(env=env, injector=injector, tracer=tracer,
                           nodes=nodes, registry=registry,
                           recorder=recorder, generator=generator)


def _device_utilisations(
    nodes: Dict[str, Node], duration: float,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Per-node CPU and disk utilisation over ``duration`` seconds."""
    cpu = {
        name: node.cpu.utilisation(duration)
        for name, node in nodes.items()
    }
    disk = {
        name: min(1.0, (node.disk.read_bytes + node.disk.write_bytes)
                  / (node.disk.spec.bandwidth_bytes_per_s * duration))
        for name, node in nodes.items()
    }
    return cpu, disk


def _breaker_summary(registry: Dict[str, ServiceRuntime]) -> Dict:
    """Per-service circuit-breaker end states (empty entries omitted)."""
    return {
        name: {
            target: {"state": breaker.state,
                     "open_transitions": breaker.open_transitions,
                     "rejections": breaker.rejections}
            for target, breaker in rt._breakers.items()
        }
        for name, rt in registry.items()
        if isinstance(rt, ServiceRuntime) and rt._breakers
    }


def _run_experiment(
    deployment: Deployment,
    load: LoadSpec,
    config: ExperimentConfig,
    timeline_run=None,
) -> RunResult:
    build = _build_simulation(deployment, load, config, timeline_run)
    build.generator.start()
    # Run until all injected requests drain (workers blocked on empty
    # queues schedule no events, so the event queue empties naturally).
    # With any watchdog configured the engine runs its guarded loop and
    # raises SimBudgetExceededError naming the stuck entry; with none,
    # this is the historical (bit-identical) fast path.
    build.env.run(until=None,
                  max_events=config.max_sim_events,
                  deadline=config.sim_deadline_s,
                  max_stalled_events=config.max_stalled_events)
    duration = max(config.duration_s, 1e-9)
    cpu_util, disk_util = _device_utilisations(build.nodes, duration)
    injector = build.injector
    result = RunResult(
        duration_s=duration,
        services={name: rt.metrics
                  for name, rt in build.registry.items()},
        latency=build.recorder,
        node_utilisation=cpu_util,
        disk_utilisation=disk_util,
        faults=injector.timeline if injector is not None else None,
        breakers=_breaker_summary(build.registry),
        events_dispatched=build.env.dispatched_events,
    )
    return result


def sweep_load(
    deployment: Deployment,
    loads: List[LoadSpec],
    config: ExperimentConfig,
    cache=None,
) -> List[RunResult]:
    """Run a list of load points (fresh simulation each).

    Pass an :class:`~repro.runtime.expcache.ExperimentCache` as
    ``cache`` to memoize the points: cross-figure sweeps that revisit a
    (deployment, load, platform) combination are then served from
    memory instead of re-simulating.
    """
    if cache is not None:
        return cache.sweep(deployment, loads, config)
    return [run_experiment(deployment, load, config) for load in loads]
