"""Block pricing with execution-state bucketing.

Pricing a block through the analytical core model is cheap but not free
(the branch oracle runs Monte-Carlo simulations on first use), and a run
executes the same handful of blocks millions of times. The pricer
memoises :class:`~repro.hw.core.BlockTiming` per (block, quantised
execution state): concurrency is bucketed to powers of two and cache/SMT
factors to two decimals, so a run touches only a few dozen distinct
pricings while timing still responds to load, colocation and
interference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hw.core import BlockTiming, CoreModel, ExecutionContext
from repro.hw.ir import BlockSpec
from repro.hw.platform import PlatformSpec
from repro.util.errors import ConfigurationError
from repro.util.quantize import next_pow2


@dataclass(frozen=True)
class PricingKey:
    """Quantised execution state a pricing is valid for."""

    cold: bool
    concurrency_bucket: int
    smt_contention: float
    l1i_factor: float
    l1d_factor: float
    l2_factor: float
    llc_factor: float
    code_reuse_kb: int
    static_branch_sites: int

    @staticmethod
    def build(
        cold: bool,
        concurrency: int,
        smt_contention: float,
        cache_factors: Tuple[float, float, float, float],
        code_reuse_bytes: float,
        static_branch_sites: int,
    ) -> "PricingKey":
        """Quantise raw state into a cache-friendly key."""
        if concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        l1i, l1d, l2, llc = cache_factors
        return PricingKey(
            cold=cold,
            concurrency_bucket=next_pow2(concurrency),
            smt_contention=round(smt_contention, 2),
            l1i_factor=round(l1i, 2),
            l1d_factor=round(l1d, 2),
            l2_factor=round(l2, 2),
            llc_factor=round(llc, 2),
            # 64KB steps: fine enough to keep cache-boundary distinctions
            # (a 680KB reuse must stay below a 1MB L2 and above a 256KB
            # one), coarse enough to memoise well.
            code_reuse_kb=64 * max(1, round(code_reuse_bytes / 1024 / 64)),
            static_branch_sites=next_pow2(max(1, static_branch_sites)),
        )


class BlockPricer:
    """Memoised CoreModel frontend for one platform/frequency."""

    def __init__(
        self,
        platform: PlatformSpec,
        frequency_ghz: Optional[float] = None,
        prefetch_coverage: float = 0.75,
    ) -> None:
        self.platform = platform
        self.frequency_ghz = (
            frequency_ghz if frequency_ghz is not None
            else platform.base_frequency_ghz
        )
        self.prefetch_coverage = prefetch_coverage
        self._base_hierarchy = platform.hierarchy(self.frequency_ghz)
        self._cache: Dict[Tuple[int, PricingKey], BlockTiming] = {}
        self._context_cache: Dict[PricingKey, ExecutionContext] = {}

    def context_for(self, key: PricingKey) -> ExecutionContext:
        """The ExecutionContext realising a pricing key."""
        ctx = self._context_cache.get(key)
        if ctx is not None:
            return ctx
        caches = self._base_hierarchy.with_effective_sizes(
            l1i_factor=key.l1i_factor,
            l1d_factor=key.l1d_factor,
            l2_factor=key.l2_factor,
            llc_factor=key.llc_factor,
        )
        ctx = ExecutionContext(
            uarch=self.platform.uarch,
            caches=caches,
            smt_contention=key.smt_contention,
            active_threads=key.concurrency_bucket,
            code_reuse_bytes=float(key.code_reuse_kb * 1024),
            static_branch_sites=key.static_branch_sites,
            prefetch_coverage=self.prefetch_coverage,
            predictor_cold=key.cold,
        )
        self._context_cache[key] = ctx
        return ctx

    def price(self, block: BlockSpec, key: PricingKey) -> BlockTiming:
        """Memoised timing of ``block`` under state ``key``."""
        cache_key = (id(block), key)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        timing = CoreModel(self.context_for(key)).time_block(block)
        self._cache[cache_key] = timing
        return timing

    def seconds(self, cycles: float) -> float:
        """Convert cycles to seconds at the pricer's frequency."""
        return self.platform.cycles_to_seconds(cycles, self.frequency_ghz)

    @property
    def cache_size(self) -> int:
        """Number of distinct pricings computed so far."""
        return len(self._cache)
