"""Experiment memoization (the measurement cache behind fine-tuning).

Cloning is dominated by repeated measurement: every fine-tune iteration
re-simulates a candidate clone, and validation sweeps re-run the same
(deployment, load, platform) points across figures. Because
:func:`~repro.runtime.experiment.run_experiment` is a deterministic
function of its inputs (all randomness flows from the config seed
through named :class:`~repro.util.rng.RngStream` children), its results
can be memoized by a stable digest of those inputs —
:func:`~repro.util.spec_hash.stable_digest` over ``(deployment, load,
config)``. A knob vector nudged by the tuner regenerates the program,
which changes the deployment spec and therefore the key; converged
knobs, repeated iterations, and cross-figure re-measurement all hit.

Runs that carry a live :class:`~repro.tracing.tracer.Tracer` are *not*
cached: tracing is a side effect the caller wants, so those runs bypass
the cache (counted separately as ``bypasses``).

Accounting lives in real telemetry counters
(``ditto_expcache_*_total{cache=...}`` in a
:class:`~repro.telemetry.registry.MetricsRegistry`) — the ambient
telemetry session's registry when one is active at construction, else a
private one. :attr:`ExperimentCache.stats` is a derived view over those
counters, so the pre-telemetry :class:`CacheStats` API (and the
:class:`~repro.core.cloner.CloneReport` fields built from it) is
unchanged.
"""

from __future__ import annotations

import copy
import os
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.app.service import Deployment
from repro.loadgen.generator import LoadSpec
from repro.runtime.experiment import ExperimentConfig, run_experiment
from repro.runtime.metrics import RunResult
from repro.telemetry.context import current_session
from repro.telemetry.registry import MetricsRegistry
from repro.util.errors import ConfigurationError
from repro.util.spec_hash import stable_digest

__all__ = ["CacheStats", "ExperimentCache", "SharedExperimentCache"]

#: default number of memoized runs an :class:`ExperimentCache` retains
DEFAULT_CACHE_ENTRIES = 256

#: registry metric names the cache accounts through (``cache`` label =
#: the cache's ``name``)
CACHE_METRICS = {
    "hits": "ditto_expcache_hits_total",
    "misses": "ditto_expcache_misses_total",
    "bypasses": "ditto_expcache_bypasses_total",
    "evictions": "ditto_expcache_evictions_total",
}

#: registry metric names for the fleet-wide shared store (disk tier of
#: :class:`SharedExperimentCache`; ``cache`` label = the cache's name)
SHARED_CACHE_METRICS = {
    "disk_hits": "ditto_fleet_shared_cache_hits_total",
    "disk_stores": "ditto_fleet_shared_cache_stores_total",
}


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ExperimentCache`."""

    hits: int = 0
    misses: int = 0
    #: runs that skipped the cache (e.g. a live tracer was attached)
    bypasses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Cacheable lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable lookups served from memory."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold another stats block in (for cross-worker aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.bypasses += other.bypasses
        self.evictions += other.evictions
        return self

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "CacheStats":
        """Aggregate view over every cache accounted in ``registry``."""
        def total(metric_name: str) -> int:
            metric = registry.get(metric_name)
            return int(metric.total()) if metric is not None else 0

        return cls(**{field: total(name)
                      for field, name in CACHE_METRICS.items()})


class ExperimentCache:
    """LRU memoization of :func:`run_experiment` results.

    ``registry``/``name`` select where hit/miss/bypass/eviction counters
    live: by default the ambient telemetry session's registry (when a
    session is active at construction) so pipeline accounting merges
    into the run's telemetry, else a private registry. Caches sharing a
    registry must use distinct ``name``\\ s to keep their counter series
    apart.

    >>> cache = ExperimentCache()
    >>> # result = cache.run(deployment, load, config)  # miss: simulates
    >>> # again = cache.run(deployment, load, config)   # hit: no sim
    """

    def __init__(self, *, max_entries: int = DEFAULT_CACHE_ENTRIES,
                 registry: Optional[MetricsRegistry] = None,
                 name: str = "expcache") -> None:
        if max_entries < 1:
            raise ConfigurationError("cache needs max_entries >= 1")
        self.max_entries = max_entries
        self.name = name
        if registry is None:
            session = current_session()
            registry = (session.registry if session is not None
                        else MetricsRegistry())
        self.registry = registry
        self._counters = {
            field: registry.counter(
                metric_name,
                f"experiment cache {field}", ("cache",))
            for field, metric_name in CACHE_METRICS.items()
        }
        self._entries: "OrderedDict[str, RunResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, event: str, amount: int = 1) -> None:
        self._counters[event].inc(amount, cache=self.name)

    @property
    def stats(self) -> CacheStats:
        """Derived view over this cache's registry counters."""
        return CacheStats(**{
            field: int(counter.value(cache=self.name))
            for field, counter in self._counters.items()
        })

    @staticmethod
    def key(
        deployment: Deployment,
        load: LoadSpec,
        config: ExperimentConfig,
    ) -> str:
        """The memoization key: a stable digest of the full request.

        The tracer is excluded — it does not change measured results
        (``run_experiment`` only *writes* spans into it), and live-traced
        runs bypass the cache anyway.
        """
        return stable_digest(deployment, load, replace(config, tracer=None))

    def run(
        self,
        deployment: Deployment,
        load: LoadSpec,
        config: ExperimentConfig,
    ) -> RunResult:
        """``run_experiment`` with memoization.

        Returns a deep copy of the cached result on a hit so callers can
        mutate their view without corrupting the cache.
        """
        if config.tracer is not None:
            self._count("bypasses")
            return run_experiment(deployment, load, config)
        key = self.key(deployment, load, config)
        cached = self._lookup(key)
        if cached is not None:
            self._count("hits")
            return cached
        self._count("misses")
        result = run_experiment(deployment, load, config)
        self._insert(key, result)
        return result

    def _lookup(self, key: str) -> Optional[RunResult]:
        """Fetch ``key`` or ``None``; a hit returns a private deep copy."""
        cached = self._entries.get(key)
        if cached is None:
            return None
        self._entries.move_to_end(key)
        return copy.deepcopy(cached)

    def _insert(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key``, evicting LRU entries."""
        self._entries[key] = copy.deepcopy(result)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._count("evictions")

    def sweep(
        self,
        deployment: Deployment,
        loads: List[LoadSpec],
        config: ExperimentConfig,
    ) -> List[RunResult]:
        """Memoized equivalent of :func:`~repro.runtime.experiment.sweep_load`."""
        return [self.run(deployment, load, config) for load in loads]

    def clear(self) -> None:
        """Drop all cached results (stats are retained)."""
        self._entries.clear()


class SharedExperimentCache(ExperimentCache):
    """An :class:`ExperimentCache` backed by a fleet-wide on-disk store.

    The in-memory LRU tier behaves exactly like the base class; behind
    it sits a directory of digest-keyed result files, one envelope per
    key (written via :mod:`repro.validation.integrity`, so entries are
    atomic and self-verifying). Several jobs — in the same process or
    not — point at the same directory and reuse each other's
    measurements: a second job with an identical spec finds the first
    job's simulations already on disk.

    Disk traffic is accounted separately from the LRU counters
    (``ditto_fleet_shared_cache_{hits,stores}_total{cache=...}``): a
    disk hit still counts as an ordinary cache hit, the extra counter
    records that it was served by the shared store rather than this
    process's memory. Corrupt entries are quarantined by the integrity
    layer and treated as misses, so a torn write can cost a repeat
    simulation but never wrong results.
    """

    #: envelope schema for one memoized :class:`RunResult`
    SCHEMA = "fleet-exp-result"
    SCHEMA_VERSION = 1

    def __init__(self, directory: str, *,
                 max_entries: int = DEFAULT_CACHE_ENTRIES,
                 registry: Optional[MetricsRegistry] = None,
                 name: str = "fleet") -> None:
        super().__init__(max_entries=max_entries, registry=registry,
                         name=name)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._shared_counters = {
            field: self.registry.counter(
                metric_name,
                f"fleet shared experiment cache {field}", ("cache",))
            for field, metric_name in SHARED_CACHE_METRICS.items()
        }

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    def _lookup(self, key: str) -> Optional[RunResult]:
        cached = super()._lookup(key)
        if cached is not None:
            return cached
        # Lazy import: runtime/ must not depend on validation/ at module
        # load (validation's gate imports runtime for replay).
        from repro.validation import integrity
        path = self._path(key)
        try:
            result = integrity.load_object(
                path, schema=self.SCHEMA, max_version=self.SCHEMA_VERSION)
        except FileNotFoundError:
            return None
        except integrity.ArtifactIntegrityError:
            # Quarantined by the loader; behave as a miss and re-measure.
            return None
        self._shared_counters["disk_hits"].inc(1, cache=self.name)
        # Warm the in-memory tier so repeat lookups in this process stay
        # off the disk; count evictions as usual.
        super()._insert(key, result)
        return result

    def _insert(self, key: str, result: RunResult) -> None:
        super()._insert(key, result)
        from repro.validation import integrity
        path = self._path(key)
        if not os.path.exists(path):
            integrity.save_object(path, result, schema=self.SCHEMA,
                                  version=self.SCHEMA_VERSION)
            self._shared_counters["disk_stores"].inc(1, cache=self.name)
