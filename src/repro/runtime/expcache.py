"""Experiment memoization (the measurement cache behind fine-tuning).

Cloning is dominated by repeated measurement: every fine-tune iteration
re-simulates a candidate clone, and validation sweeps re-run the same
(deployment, load, platform) points across figures. Because
:func:`~repro.runtime.experiment.run_experiment` is a deterministic
function of its inputs (all randomness flows from the config seed
through named :class:`~repro.util.rng.RngStream` children), its results
can be memoized by a stable digest of those inputs —
:func:`~repro.util.spec_hash.stable_digest` over ``(deployment, load,
config)``. A knob vector nudged by the tuner regenerates the program,
which changes the deployment spec and therefore the key; converged
knobs, repeated iterations, and cross-figure re-measurement all hit.

Runs that carry a live :class:`~repro.tracing.tracer.Tracer` are *not*
cached: tracing is a side effect the caller wants, so those runs bypass
the cache (counted separately as ``bypasses``).
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.app.service import Deployment
from repro.loadgen.generator import LoadSpec
from repro.runtime.experiment import ExperimentConfig, run_experiment
from repro.runtime.metrics import RunResult
from repro.util.errors import ConfigurationError
from repro.util.spec_hash import stable_digest

__all__ = ["CacheStats", "ExperimentCache"]

#: default number of memoized runs an :class:`ExperimentCache` retains
DEFAULT_CACHE_ENTRIES = 256


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ExperimentCache`."""

    hits: int = 0
    misses: int = 0
    #: runs that skipped the cache (e.g. a live tracer was attached)
    bypasses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Cacheable lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable lookups served from memory."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold another stats block in (for cross-worker aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.bypasses += other.bypasses
        self.evictions += other.evictions
        return self


class ExperimentCache:
    """LRU memoization of :func:`run_experiment` results.

    >>> cache = ExperimentCache()
    >>> # result = cache.run(deployment, load, config)  # miss: simulates
    >>> # again = cache.run(deployment, load, config)   # hit: no sim
    """

    def __init__(self, *, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 1:
            raise ConfigurationError("cache needs max_entries >= 1")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, RunResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(
        deployment: Deployment,
        load: LoadSpec,
        config: ExperimentConfig,
    ) -> str:
        """The memoization key: a stable digest of the full request.

        The tracer is excluded — it does not change measured results
        (``run_experiment`` only *writes* spans into it), and live-traced
        runs bypass the cache anyway.
        """
        return stable_digest(deployment, load, replace(config, tracer=None))

    def run(
        self,
        deployment: Deployment,
        load: LoadSpec,
        config: ExperimentConfig,
    ) -> RunResult:
        """``run_experiment`` with memoization.

        Returns a deep copy of the cached result on a hit so callers can
        mutate their view without corrupting the cache.
        """
        if config.tracer is not None:
            self.stats.bypasses += 1
            return run_experiment(deployment, load, config)
        key = self.key(deployment, load, config)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return copy.deepcopy(cached)
        self.stats.misses += 1
        result = run_experiment(deployment, load, config)
        self._entries[key] = copy.deepcopy(result)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return result

    def sweep(
        self,
        deployment: Deployment,
        loads: List[LoadSpec],
        config: ExperimentConfig,
    ) -> List[RunResult]:
        """Memoized equivalent of :func:`~repro.runtime.experiment.sweep_load`."""
        return [self.run(deployment, load, config) for load in loads]

    def clear(self) -> None:
        """Drop all cached results (stats are retained)."""
        self._entries.clear()
