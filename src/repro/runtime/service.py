"""Per-service runtime: workers, request handling, RPC client."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.app.program import ComputeOp, Handler, RpcOp, SyscallOp
from repro.app.service import ServiceSpec
from repro.app.skeleton import ClientNetworkModel, ServerNetworkModel
from repro.hw.contention import ContentionFactors
from repro.kernelsim.node import Node
from repro.kernelsim.syscalls import (
    SyscallInvocation,
    context_switch_block,
    kernel_block_for,
    kernel_code_footprint,
)
from repro.runtime.metrics import ServiceMetrics
from repro.runtime.pricing import BlockPricer, PricingKey
from repro.runtime.resilience import CircuitBreaker, ResilienceConfig
from repro.sim import Environment, Event, Store
from repro.telemetry.context import current_session
from repro.tracing.span import SpanKind
from repro.tracing.tracer import Tracer
from repro.util.errors import (
    CircuitOpenError,
    ConfigurationError,
    FaultInjectionError,
    LoadSheddedError,
    ReproError,
    RetryExhaustedError,
    RpcTimeoutError,
)
from repro.util.rng import RngStream

#: cache pollution accumulates while a worker sleeps: timer ticks, RCU,
#: and other processes walk the caches at roughly this rate, so short
#: idles only evict small L2s while long idles evict anything private.
IDLE_POLLUTION_BYTES_PER_S = 1.5e9
#: pollution saturates once everything private is evicted anyway
MAX_IDLE_POLLUTION_BYTES = 4 * 1024 * 1024
#: a worker idle longer than this redispatches with cold caches/predictor
COLD_IDLE_THRESHOLD_S = 100e-6
#: static branch sites contributed by the kernel's hot paths
KERNEL_STATIC_BRANCHES = 1500


@lru_cache(maxsize=8192)
def _cached_kernel_block(invocation: SyscallInvocation):
    return kernel_block_for(invocation)


@dataclass
class Request:
    """One in-flight request."""

    handler: str
    response: Event
    src_node: str
    arrival: float
    trace_id: int = 0
    parent_span_id: Optional[int] = None
    #: reply handle for requests that arrived from another simulation
    #: shard (see :mod:`repro.sim.shard`); ``None`` for local requests
    remote: Optional[object] = None


@dataclass
class NodeState:
    """Cross-service view of one node's software load."""

    node: Node
    active_threads: int = 0
    colocated_code_bytes: Dict[str, float] = field(default_factory=dict)
    colocated_resident_bytes: Dict[str, float] = field(default_factory=dict)

    def oversubscription(self) -> float:
        """Active software threads per core (>=1)."""
        return max(1.0, self.active_threads / max(1, self.node.cores))

    def other_code_bytes(self, service: str) -> float:
        """Hot code of co-located services other than ``service``."""
        return float(
            sum(b for name, b in self.colocated_code_bytes.items()
                if name != service)
        )

    def other_resident_pressure(self, service: str, llc_bytes: float) -> float:
        """LLC pressure from other services' resident data, capped per tier."""
        return float(
            sum(min(b, llc_bytes) for name, b in
                self.colocated_resident_bytes.items() if name != service)
        )


class ServiceRuntime:
    """Executes one service's skeleton and handlers on a node.

    ``fast_ops`` selects the engine path for the inner device loops
    (CPU execute, NIC transmit, disk I/O): ``True`` (the default) uses
    the compiled generator-free continuations
    (:meth:`~repro.kernelsim.scheduler.CpuDevice.execute_op` and
    friends), ``False`` the original generator processes. Both schedule
    bit-identically — the flag exists so the equivalence suite can run
    the same workload down both paths and compare digests.
    """

    #: class-wide default for the device-op fast path (see class doc)
    fast_ops: bool = True

    def __init__(
        self,
        env: Environment,
        spec: ServiceSpec,
        node: Node,
        node_state: NodeState,
        pricer: BlockPricer,
        tracer: Tracer,
        base_factors: ContentionFactors = ContentionFactors(),
        connections_hint: int = 32,
        registry: Optional[Dict[str, "ServiceRuntime"]] = None,
        cross_node_latency_s: float = 30e-6,
        resilience: Optional[ResilienceConfig] = None,
        rng_stream: Optional[RngStream] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.node = node
        self.node_state = node_state
        self.pricer = pricer
        self.tracer = tracer
        self.base_factors = base_factors
        self.connections_hint = connections_hint
        self.registry = registry if registry is not None else {}
        self.cross_node_latency_s = cross_node_latency_s
        self.resilience = resilience
        # Per-downstream circuit breakers plus the jitter stream for
        # retry backoff, created only when resilience semantics are on —
        # a bare runtime draws no extra randomness.
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._retry_rng = None
        if resilience is not None:
            stream = rng_stream if rng_stream is not None else RngStream(0)
            self._retry_rng = stream.rng("resilience", spec.name)
        self.queue: Store = Store(env, name=f"{spec.name}-queue")
        self.metrics = ServiceMetrics()
        self.active = 0
        self._started = False
        # Telemetry timeline, bound once at construction (attach-time
        # guard): an untimed run pays no per-request check at all.
        self._timeline = env.timeline
        # Device-op entry points, resolved once: the compiled
        # continuations or the generator processes (bit-identical
        # schedules — see the class docstring).
        if self.fast_ops:
            self._cpu_execute = node.cpu.execute_op
            self._disk_io = node.disk.io_op
            self._nic_transmit = node.nic.transmit_op
        else:
            self._cpu_execute = (
                lambda cycles: env.process(node.cpu.execute(cycles)))
            self._disk_io = (
                lambda nbytes, write=False: env.process(
                    node.disk.io(nbytes, write=write)))
            self._nic_transmit = (
                lambda nbytes: env.process(node.nic.transmit(nbytes)))
        # Static execution-state ingredients.
        program = spec.program
        syscall_names: List[str] = [spec.skeleton.wait_syscall()]
        per_handler_kernel: Dict[str, float] = {}
        for hname, handler in program.handlers.items():
            names = [inv.name for inv in handler.syscalls]
            syscall_names.extend(names)
            per_handler_kernel[hname] = kernel_code_footprint(names)
        self._kernel_footprint = kernel_code_footprint(syscall_names)
        self._warm_reuse = (0.3 * program.hot_code_bytes
                            + 0.3 * self._kernel_footprint)
        self._cold_reuse = program.hot_code_bytes + self._kernel_footprint
        self._static_branches = (program.static_branch_sites()
                                 + KERNEL_STATIC_BRANCHES)
        self._switch_block = context_switch_block()
        self._wait_invocation = SyscallInvocation(spec.skeleton.wait_syscall())
        # Per-handler concurrent data footprint (for LLC competition).
        self._handler_footprint = {
            hname: handler.data_footprint_bytes()
            for hname, handler in program.handlers.items()
        }
        self._mean_footprint = (
            sum(self._handler_footprint.values())
            / max(1, len(self._handler_footprint))
        )
        # Register declared files with the node's VFS.
        for fname, size in spec.files.items():
            node.filesystem.create(fname, size)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn worker (and background) processes."""
        if self._started:
            raise ConfigurationError(f"{self.spec.name} already started")
        self._started = True
        workers = self.spec.skeleton.worker_threads(self.connections_hint)
        for index in range(workers):
            self.env.process(self._worker(index),
                             name=f"{self.spec.name}-worker-{index}")
        for cls in self.spec.skeleton.background_classes():
            if self.spec.program.background_blocks:
                self.env.process(self._background(cls),
                                 name=f"{self.spec.name}-{cls.name}")

    @property
    def worker_count(self) -> int:
        """Configured worker threads for the current connection hint."""
        return self.spec.skeleton.worker_threads(self.connections_hint)

    # ------------------------------------------------------------------ #
    # request entry
    # ------------------------------------------------------------------ #
    def submit(
        self,
        handler: str,
        src_node: str = "client",
        trace_id: int = 0,
        parent_span_id: Optional[int] = None,
        remote=None,
    ) -> Event:
        """Enqueue a request; returns the response event.

        Admission control happens here: a request for a crashed node
        fails immediately with
        :class:`~repro.util.errors.FaultInjectionError`, and — when the
        runtime carries a :class:`ResilienceConfig` with a queue bound —
        a request arriving at a full queue is shed with
        :class:`~repro.util.errors.LoadSheddedError` instead of growing
        the queue without bound.

        ``remote`` is a reply handle for requests delivered from another
        simulation shard (:mod:`repro.sim.shard`): outcomes — including
        admission rejections — then travel back over the shard boundary
        instead of the local response event.
        """
        self.spec.program.handler(handler)  # validate
        response = self.env.event()
        faults = self.env.faults
        if faults is not None and faults.node_down(self.node.name):
            self.metrics.failed_requests += 1
            error = FaultInjectionError(
                f"{self.spec.name}: node {self.node.name} is down",
                kind="node_down", scope=self.node.name)
            if remote is not None:
                remote.reply(ok=False, error=error)
            else:
                response.fail(error)
            return response
        if (self.resilience is not None
                and self.resilience.max_queue_depth is not None
                and len(self.queue) >= self.resilience.max_queue_depth):
            self.metrics.shed_requests += 1
            self._session_count(
                "ditto_requests_shed_total",
                "requests rejected at admission by load shedding",
                service=self.spec.name)
            error = LoadSheddedError(
                f"{self.spec.name}: queue at shedding bound",
                service=self.spec.name, queue_depth=len(self.queue))
            if remote is not None:
                remote.reply(ok=False, error=error)
            else:
                response.fail(error)
            return response
        request = Request(
            handler=handler,
            response=response,
            src_node=src_node,
            arrival=self.env.now,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            remote=remote,
        )
        self.queue.put(request)
        return response

    # ------------------------------------------------------------------ #
    # workers
    # ------------------------------------------------------------------ #
    def _worker(self, index: int):
        skeleton = self.spec.skeleton
        blocking = skeleton.server_model is ServerNetworkModel.BLOCKING

        def dispatch(request, cold, idle):
            """Serve one request; returns the event freeing this worker.

            Synchronous clients hold the worker for the whole handler.
            Asynchronous clients (§4.3.1) hand the downstream wait to the
            event loop: the worker frees as soon as the RPC group is
            issued, and the continuation (a callback) re-runs without
            occupying a worker slot.
            """
            release = self.env.event()
            self.env.process(
                self._serve(request, cold=cold, idle_s=idle,
                            worker_release=release),
                name=f"{self.spec.name}-serve")
            return release

        while True:
            wait_start = self.env.now
            request = yield self.queue.get()
            idle = self.env.now - wait_start
            if blocking:
                idle = max(idle, 2 * COLD_IDLE_THRESHOLD_S)
            cold = idle > COLD_IDLE_THRESHOLD_S
            yield dispatch(request, cold, idle)
            if blocking:
                continue
            # Drain the epoll batch while it lasts: subsequent requests in
            # the same wakeup are warm (no context switch, hot i-cache).
            served = 1
            while len(self.queue) > 0 and served < skeleton.max_batch:
                request = yield self.queue.get()
                yield dispatch(request, False, 0.0)
                served += 1

    def _background(self, cls):
        while True:
            yield self.env.timeout(cls.background_period_s)
            key = self._pricing_key(cold=True)
            cycles = 0.0
            for block in self.spec.program.background_blocks:
                timing = self.pricer.price(block, key)
                self.metrics.absorb(timing)
                cycles += timing.cycles
            if cycles > 0:
                try:
                    yield self._cpu_execute(cycles)
                except FaultInjectionError:
                    # Node down: this period's background work is lost,
                    # the thread survives to run again after restart.
                    continue

    # ------------------------------------------------------------------ #
    # execution-state -> pricing key
    # ------------------------------------------------------------------ #
    def _pricing_key(self, cold: bool, idle_s: float = 0.0) -> PricingKey:
        conc = max(1, self.active)
        llc_bytes = float(self.pricer.platform.llc.size_bytes)
        # Other in-flight requests and co-located tiers compete for LLC.
        pressure = ((conc - 1) * min(self._mean_footprint, llc_bytes)
                    + self.node_state.other_resident_pressure(
                        self.spec.name, llc_bytes))
        llc_dyn = max(0.2, llc_bytes / (llc_bytes + pressure))
        oversub = self.node_state.oversubscription()
        l2_dyn = max(0.3, 1.0 / (1.0 + 0.35 * (oversub - 1.0)))
        l1_dyn = max(0.5, 1.0 / (1.0 + 0.15 * (oversub - 1.0)))
        reuse = self._cold_reuse if cold else self._warm_reuse
        if cold:
            reuse += min(MAX_IDLE_POLLUTION_BYTES,
                         idle_s * IDLE_POLLUTION_BYTES_PER_S)
            reuse += self.node_state.other_code_bytes(self.spec.name)
        factors = self.base_factors
        return PricingKey.build(
            cold=cold,
            concurrency=conc,
            smt_contention=factors.smt_contention,
            cache_factors=(
                factors.l1i_factor * l1_dyn,
                factors.l1d_factor * l1_dyn,
                factors.l2_factor * l2_dyn,
                factors.llc_factor * llc_dyn,
            ),
            code_reuse_bytes=reuse,
            static_branch_sites=self._static_branches,
        )

    # ------------------------------------------------------------------ #
    # request execution
    # ------------------------------------------------------------------ #
    def _serve(self, request: Request, cold: bool, idle_s: float = 0.0,
               worker_release=None):
        self.active += 1
        self.node_state.active_threads += 1
        serve_start = self.env.now
        handler = self.spec.program.handler(request.handler)
        span = self.tracer.start_span(
            request.trace_id, self.spec.name, request.handler,
            SpanKind.SERVER, self.env.now, parent_id=request.parent_span_id,
        )
        key = self._pricing_key(cold, idle_s)
        pending = [0.0]  # cycles awaiting a CPU grant

        def charge(block) -> None:
            timing = self.pricer.price(block, key)
            self.metrics.absorb(timing)
            pending[0] += timing.cycles

        def flush():
            cycles, pending[0] = pending[0], 0.0
            if cycles > 0:
                return self._cpu_execute(cycles)
            return self.env.timeout(0.0)

        if cold:
            self.metrics.cold_wakeups += 1
            self.metrics.context_switches += 1
            self.node.cpu.context_switches += 1
            switch = self.pricer.price(self._switch_block, key)
            self.metrics.absorb(switch)
            pending[0] += switch.cycles
            charge(_cached_kernel_block(self._wait_invocation))

        loopback = request.src_node == self.node.name
        failure: Optional[ReproError] = None
        try:
            index = 0
            ops = handler.ops
            while index < len(ops):
                op = ops[index]
                if isinstance(op, ComputeOp):
                    charge(op.block)
                    index += 1
                elif isinstance(op, SyscallOp):
                    yield from self._do_syscall(op.invocation, charge, flush,
                                                loopback)
                    index += 1
                elif isinstance(op, RpcOp):
                    group = [op]
                    if op.parallel_group is not None:
                        while (index + len(group) < len(ops)
                               and isinstance(ops[index + len(group)], RpcOp)
                               and ops[index + len(group)].parallel_group
                               == op.parallel_group):
                            group.append(ops[index + len(group)])
                    asynchronous = (self.spec.skeleton.client_model
                                    is ClientNetworkModel.ASYNCHRONOUS)
                    if (asynchronous and worker_release is not None
                            and not worker_release.triggered):
                        # Event-driven client: the downstream wait belongs to
                        # the reactor, not to a worker slot (§4.3.1).
                        worker_release.succeed(None)
                    yield from self._do_rpcs(group, request, span, charge,
                                             flush, asynchronous=asynchronous)
                    index += len(group)
                else:  # pragma: no cover - exhaustive over Op union
                    raise ConfigurationError(f"unknown op {op!r}")
            yield flush()
        except ConfigurationError:
            raise
        except ReproError as error:
            # An injected fault, exhausted retry budget or open breaker
            # killed this request. The handler aborts — remaining ops
            # and unflushed cycles die with it — but the worker, the
            # metrics and the caller all stay consistent: the response
            # event fails with the error so the client can classify it.
            failure = error
            self.metrics.failed_requests += 1
        if worker_release is not None and not worker_release.triggered:
            worker_release.succeed(None)
        if failure is None:
            self.metrics.requests += 1
        self.active -= 1
        self.node_state.active_threads -= 1
        timeline = self._timeline
        if timeline is not None:
            detail = dict(queued=serve_start - request.arrival, cold=cold)
            if failure is not None:
                detail["error"] = type(failure).__name__
            timeline.complete(
                self.spec.name, request.handler, serve_start,
                self.env.now - serve_start, **detail)
        if span is not None:
            span.finish(self.env.now)
        if request.remote is not None:
            # Shard-remote request: the outcome crosses the shard
            # boundary (one cross-node latency) instead of the local
            # response event. Successful replies land at exactly the
            # time _delayed_reply would deliver them.
            if failure is not None:
                request.remote.reply(ok=False, error=failure)
            else:
                request.remote.reply(ok=True)
        elif failure is not None:
            if not request.response.triggered:
                request.response.fail(failure)
        elif request.src_node != self.node.name:
            self.env.process(
                self._delayed_reply(request.response),
                name="reply",
            )
        else:
            request.response.succeed(self.env.now)

    def _delayed_reply(self, response: Event):
        yield self.env.timeout(self.cross_node_latency_s)
        response.succeed(self.env.now)

    def _do_syscall(self, invocation: SyscallInvocation, charge, flush,
                    loopback: bool = False):
        charge(_cached_kernel_block(invocation))
        device = invocation.spec.device
        if device == "disk" and invocation.file is not None:
            if invocation.write:
                miss = self.node.filesystem.write(invocation.file,
                                                  invocation.nbytes)
            else:
                miss = self.node.filesystem.read(invocation.file,
                                                 invocation.nbytes)
            if miss > 0:
                yield flush()
                yield self._disk_io(miss, write=invocation.write)
                if invocation.write:
                    self.metrics.disk_write_bytes += miss
                else:
                    self.metrics.disk_read_bytes += miss
        elif device == "disk" and invocation.name == "fsync":
            yield flush()
            yield self._disk_io(invocation.nbytes, write=True)
            self.metrics.disk_write_bytes += invocation.nbytes
        elif device == "net_tx":
            self.metrics.net_tx_bytes += invocation.nbytes
            if loopback:
                # Same-node peer: the payload never hits the wire.
                self.node.nic.tx_bytes += invocation.nbytes
            else:
                yield flush()
                yield self._nic_transmit(invocation.nbytes)
        elif device == "net_rx":
            self.metrics.net_rx_bytes += invocation.nbytes
            self.node.nic.account_rx(invocation.nbytes)

    def _do_rpcs(self, group: List[RpcOp], request: Request, span, charge,
                 flush, asynchronous: bool = False):
        # Client-side kernel send work for every call in the group; an
        # asynchronous client additionally registers each response socket
        # with its reactor (epoll_ctl).
        for rpc in group:
            charge(_cached_kernel_block(
                SyscallInvocation("sendmsg", nbytes=rpc.request_bytes)))
            if asynchronous:
                charge(_cached_kernel_block(
                    SyscallInvocation("epoll_ctl")))
        yield flush()
        calls = []
        for rpc in group:
            calls.append(self.env.process(
                self._one_rpc(rpc, request, span), name=f"rpc-{rpc.target_service}"))
        yield self.env.all_of(calls)
        # Client-side kernel receive work for the responses.
        for rpc in group:
            charge(_cached_kernel_block(
                SyscallInvocation("recv", nbytes=rpc.response_bytes)))

    def _one_rpc(self, rpc: RpcOp, request: Request, parent_span):
        target = self.registry.get(rpc.target_service)
        if target is None:
            raise ConfigurationError(
                f"{self.spec.name} calls unknown service "
                f"{rpc.target_service!r}"
            )
        if self.resilience is None:
            yield from self._rpc_attempt(rpc, request, parent_span, target,
                                         attempt=0, timeout_s=None)
            return
        yield from self._resilient_rpc(rpc, request, parent_span, target)

    def _resilient_rpc(self, rpc: RpcOp, request: Request, parent_span,
                       target: "ServiceRuntime"):
        """Timeout + retry-with-backoff + circuit breaker around one RPC.

        Retries are at-least-once: a timed-out attempt's request may
        still complete downstream (its stale response event simply has
        no waiter), exactly like a real RPC mesh.
        """
        policy = self.resilience.retry
        breaker = self._breakers.get(rpc.target_service)
        if breaker is None:
            breaker = CircuitBreaker(
                self.env, rpc.target_service,
                failure_threshold=self.resilience.breaker_failure_threshold,
                recovery_s=self.resilience.breaker_recovery_s)
            self._breakers[rpc.target_service] = breaker
        last_error: Optional[ReproError] = None
        attempt = 0
        while attempt < policy.max_attempts:
            attempt += 1
            if not breaker.allow():
                self.metrics.circuit_rejections += 1
                self._session_count(
                    "ditto_rpc_circuit_rejections_total",
                    "RPC calls rejected by an open circuit breaker",
                    service=self.spec.name, target=rpc.target_service)
                raise CircuitOpenError(
                    f"{self.spec.name} -> {rpc.target_service}: "
                    f"circuit open", target=rpc.target_service)
            try:
                yield from self._rpc_attempt(
                    rpc, request, parent_span, target, attempt=attempt,
                    timeout_s=self.resilience.rpc_timeout_s)
            except ConfigurationError:
                raise
            except ReproError as error:
                breaker.record_failure()
                last_error = error
                if isinstance(error, RpcTimeoutError):
                    self.metrics.rpc_timeouts += 1
                    self._session_count(
                        "ditto_rpc_timeouts_total",
                        "RPC attempts that exceeded their timeout",
                        service=self.spec.name, target=rpc.target_service)
                if attempt >= policy.max_attempts:
                    break
                self.metrics.rpc_retries += 1
                self._session_count(
                    "ditto_rpc_retries_total",
                    "RPC re-attempts after a failed attempt",
                    service=self.spec.name, target=rpc.target_service)
                backoff = policy.backoff_s(attempt, self._retry_rng)
                if backoff > 0:
                    yield self.env.timeout(backoff)
            else:
                breaker.record_success()
                return
        raise RetryExhaustedError(
            f"{self.spec.name} -> {rpc.target_service}: "
            f"{attempt} attempts failed",
            attempts=attempt, last_error=last_error) from last_error

    def _rpc_attempt(self, rpc: RpcOp, request: Request, parent_span,
                     target: "ServiceRuntime", attempt: int,
                     timeout_s: Optional[float]):
        """One try of one RPC; ``attempt`` 0 means the bare legacy path."""
        tags = {"request_bytes": rpc.request_bytes,
                "response_bytes": rpc.response_bytes}
        if attempt:
            tags["attempt"] = attempt
        client_span = self.tracer.start_span(
            request.trace_id, self.spec.name,
            f"call_{rpc.target_service}", SpanKind.CLIENT, self.env.now,
            parent_id=parent_span.span_id if parent_span is not None else None,
            tags=tags,
        )
        try:
            cross_node = target.node.name != self.node.name
            remote_submit = (getattr(target, "remote_submit", None)
                             if cross_node else None)
            self.metrics.net_tx_bytes += rpc.request_bytes
            if cross_node:
                # Request serialisation on our NIC, then the wire.
                yield self._nic_transmit(rpc.request_bytes)
                if remote_submit is not None:
                    # Target lives on another shard: ship the request
                    # now (it arrives one wire latency from now, i.e.
                    # exactly when the local-path submit would run)
                    # while we wait out the same latency here.
                    response = remote_submit(
                        rpc.handler,
                        src_node=self.node.name,
                        trace_id=request.trace_id,
                        request_bytes=rpc.request_bytes,
                    )
                yield self.env.timeout(self.cross_node_latency_s)
            else:
                self.node.nic.tx_bytes += rpc.request_bytes
            if remote_submit is None:
                target.metrics.net_rx_bytes += rpc.request_bytes
                target.node.nic.account_rx(rpc.request_bytes)
                response = target.submit(
                    rpc.handler,
                    src_node=self.node.name,
                    trace_id=request.trace_id,
                    parent_span_id=(client_span.span_id
                                    if client_span is not None else None),
                )
            if timeout_s is None:
                yield response
            else:
                yield self.env.any_of([response,
                                       self.env.timeout(timeout_s)])
                if not response.triggered:
                    if client_span is not None:
                        client_span.tags["timed_out"] = True
                    raise RpcTimeoutError(
                        f"{self.spec.name} -> {rpc.target_service}: "
                        f"no response within {timeout_s:g}s",
                        target=rpc.target_service, timeout_s=timeout_s)
            self.metrics.net_rx_bytes += rpc.response_bytes
        except ReproError as error:
            if client_span is not None:
                client_span.tags.setdefault("error",
                                            type(error).__name__)
            raise
        finally:
            if client_span is not None:
                client_span.finish(self.env.now)

    def _session_count(self, name: str, help_text: str,
                       **labels: str) -> None:
        """Bump a telemetry-registry counter when a session is active."""
        session = current_session()
        if session is not None:
            session.registry.counter(
                name, help_text, tuple(sorted(labels))).inc(1, **labels)
