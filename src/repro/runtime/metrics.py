"""Measurement containers: per-service counters and run results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hw.core import BlockTiming
from repro.hw.topdown import TopDownBreakdown
from repro.loadgen.generator import LatencyRecorder
from repro.util.errors import ConfigurationError


@dataclass
class ServiceMetrics:
    """Aggregated hardware counters and I/O volumes for one service."""

    timing: BlockTiming = field(default_factory=BlockTiming)
    requests: int = 0
    cold_wakeups: int = 0
    context_switches: int = 0
    net_tx_bytes: float = 0.0
    net_rx_bytes: float = 0.0
    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    # Resilience/fault accounting (all zero on a clean, bare-RPC run).
    #: requests whose handler aborted on an error (injected fault,
    #: exhausted retries, open breaker)
    failed_requests: int = 0
    #: requests rejected at admission by load shedding
    shed_requests: int = 0
    #: RPC attempts that exceeded their per-attempt timeout
    rpc_timeouts: int = 0
    #: RPC re-attempts made after a failed attempt
    rpc_retries: int = 0
    #: RPC calls rejected by an open circuit breaker
    circuit_rejections: int = 0

    def absorb(self, timing: BlockTiming) -> None:
        """Fold one block execution's counters in."""
        self.timing = self.timing + timing

    # ------------------------------------------------------------------ #
    # derived metrics (the Fig. 5/7 radar axes)
    # ------------------------------------------------------------------ #
    @property
    def ipc(self) -> float:
        """Instructions per cycle across user+kernel on-core work."""
        return self.timing.ipc

    @property
    def cpi(self) -> float:
        """Cycles per instruction (Fig. 8's y-axis)."""
        if self.timing.instructions <= 0:
            return 0.0
        return self.timing.cycles / self.timing.instructions

    def _rate(self, misses: float, accesses: float) -> float:
        if accesses <= 0:
            return 0.0
        return min(1.0, misses / accesses)

    @property
    def branch_mispredict_rate(self) -> float:
        """Mispredictions / executed conditional branches."""
        return self._rate(self.timing.branch_mispredictions,
                          self.timing.branches)

    @property
    def l1i_miss_rate(self) -> float:
        """L1i misses / L1i accesses."""
        return self._rate(self.timing.l1i_misses, self.timing.l1i_accesses)

    @property
    def l1d_miss_rate(self) -> float:
        """L1d misses / L1d accesses."""
        return self._rate(self.timing.l1d_misses, self.timing.l1d_accesses)

    @property
    def l2_miss_rate(self) -> float:
        """L2 misses / L2 accesses."""
        return self._rate(self.timing.l2_misses, self.timing.l2_accesses)

    @property
    def llc_miss_rate(self) -> float:
        """LLC misses / LLC accesses."""
        return self._rate(self.timing.llc_misses, self.timing.llc_accesses)

    def mpki(self, misses: float) -> float:
        """Misses per kilo-instruction for any counter."""
        if self.timing.instructions <= 0:
            return 0.0
        return 1000.0 * misses / self.timing.instructions

    @property
    def topdown(self) -> TopDownBreakdown:
        """Aggregated top-down slot breakdown."""
        return self.timing.topdown

    @property
    def instructions_per_request(self) -> float:
        """Average dynamic instructions per served request."""
        if self.requests <= 0:
            return 0.0
        return self.timing.instructions / self.requests

    def metric(self, name: str) -> float:
        """Look a derived metric up by its figure label."""
        table = {
            "ipc": self.ipc,
            "cpi": self.cpi,
            "branch": self.branch_mispredict_rate,
            "l1i": self.l1i_miss_rate,
            "l1d": self.l1d_miss_rate,
            "l2": self.l2_miss_rate,
            "llc": self.llc_miss_rate,
        }
        if name not in table:
            raise ConfigurationError(f"unknown metric {name!r}")
        return table[name]

    def snapshot(self) -> Dict[str, float]:
        """All derived metrics plus raw volumes, as a plain dict.

        A comparison-friendly view: two runs measured the same thing iff
        their snapshots are equal (used by the experiment cache and the
        serial-vs-parallel determinism tests).
        """
        out = {name: self.metric(name)
               for name in ("ipc", "cpi", "branch", "l1i", "l1d", "l2",
                            "llc")}
        out.update(
            requests=float(self.requests),
            instructions=float(self.timing.instructions),
            cycles=float(self.timing.cycles),
            cold_wakeups=float(self.cold_wakeups),
            context_switches=float(self.context_switches),
            net_tx_bytes=self.net_tx_bytes,
            net_rx_bytes=self.net_rx_bytes,
            disk_read_bytes=self.disk_read_bytes,
            disk_write_bytes=self.disk_write_bytes,
            failed_requests=float(self.failed_requests),
            shed_requests=float(self.shed_requests),
            rpc_timeouts=float(self.rpc_timeouts),
            rpc_retries=float(self.rpc_retries),
            circuit_rejections=float(self.circuit_rejections),
        )
        return out

    @property
    def error_rate(self) -> float:
        """Failed fraction of requests this service finished."""
        finished = self.requests + self.failed_requests
        if finished <= 0:
            return 0.0
        return self.failed_requests / finished


@dataclass
class RunResult:
    """Everything one experiment run produced."""

    duration_s: float
    services: Dict[str, ServiceMetrics]
    latency: LatencyRecorder
    node_utilisation: Dict[str, float] = field(default_factory=dict)
    disk_utilisation: Dict[str, float] = field(default_factory=dict)
    #: the injected-fault record when the run carried a fault plan
    #: (:class:`~repro.faults.injector.FaultTimeline`); None otherwise
    faults: Optional[object] = None
    #: final circuit-breaker state per service per downstream target:
    #: ``{service: {target: {"state": ..., "open_transitions": n,
    #: "rejections": n}}}`` — populated only when the run carried a
    #: resilience config (observability for recovery tests/dashboards;
    #: deliberately excluded from result digests)
    breakers: Dict[str, Dict[str, Dict[str, object]]] = field(
        default_factory=dict)
    #: total queue entries the engine dispatched to produce this result,
    #: summed across every shard in a sharded run (observability for the
    #: perf harness; deliberately excluded from result digests — it is a
    #: property of the runner, not of the simulated system)
    events_dispatched: Optional[int] = None

    def service(self, name: str) -> ServiceMetrics:
        """Metrics for one service."""
        found = self.services.get(name)
        if found is None:
            raise ConfigurationError(f"no metrics for service {name!r}")
        return found

    @property
    def throughput(self) -> float:
        """Completed requests per second at the entry service."""
        if self.duration_s <= 0:
            return 0.0
        return self.latency.completed / self.duration_s

    def net_bandwidth(self, service: str) -> float:
        """Service egress+ingress bandwidth in bytes/s."""
        metrics = self.service(service)
        return (metrics.net_tx_bytes + metrics.net_rx_bytes) / self.duration_s

    def disk_bandwidth(self, service: str) -> float:
        """Service disk traffic in bytes/s."""
        metrics = self.service(service)
        return (
            metrics.disk_read_bytes + metrics.disk_write_bytes
        ) / self.duration_s

    def latency_ms(self, q: Optional[float] = None) -> float:
        """Latency in milliseconds: mean when ``q`` is None, else percentile."""
        if q is None:
            return self.latency.mean * 1e3
        return self.latency.percentile(q) * 1e3

    @property
    def error_rate(self) -> float:
        """Client-observed failed fraction of finished requests."""
        return self.latency.error_rate

    def outcome_counts(self) -> Dict[str, int]:
        """Client-observed request outcomes (ok/timeout/shed/error)."""
        return self.latency.outcome_counts()
