"""VFS with a page cache.

File reads first consult the :class:`PageCache`; only misses generate
device traffic. The cache uses an expected-value residency model: for the
uniform-random access patterns of the paper's database workloads (YCSB
uniform reads over MongoDB), the steady-state hit probability of a file
equals the fraction of the file resident in the cache, and residency
grows with misses until the cache's capacity share is exhausted — the
same behaviour an LRU page cache converges to, without tracking millions
of 4 KB pages individually.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.util.errors import ConfigurationError


@dataclass
class FileSpec:
    """One file known to the VFS."""

    name: str
    size_bytes: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"file {self.name!r} must be non-empty")


class PageCache:
    """Expected-value page cache over whole files."""

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes < 0:
            raise ConfigurationError("capacity must be non-negative")
        self.capacity_bytes = float(capacity_bytes)
        self._resident: Dict[str, float] = {}
        self.hit_bytes = 0.0
        self.miss_bytes = 0.0

    @property
    def used_bytes(self) -> float:
        """Bytes currently resident across all files."""
        return float(sum(self._resident.values()))

    def resident_fraction(self, file: FileSpec) -> float:
        """Fraction of ``file`` resident in the cache."""
        resident = self._resident.get(file.name, 0.0)
        return min(1.0, resident / file.size_bytes)

    def read(self, file: FileSpec, nbytes: float) -> float:
        """Account a read of ``nbytes``; returns bytes that missed.

        Under uniform random access, the expected miss fraction equals the
        non-resident fraction. Missed bytes are inserted (and other files'
        residency evicted proportionally when over capacity).
        """
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        hit_fraction = self.resident_fraction(file)
        missed = nbytes * (1.0 - hit_fraction)
        self.hit_bytes += nbytes - missed
        self.miss_bytes += missed
        if missed > 0.0:
            self._insert(file, missed)
        return missed

    def write(self, file: FileSpec, nbytes: float) -> float:
        """Account a write; write-back caching absorbs it, dirtying pages.

        Returns the bytes that must eventually reach the device (all of
        them — the disk write happens asynchronously but the bandwidth is
        consumed either way).
        """
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        self._insert(file, nbytes)
        return nbytes

    def _insert(self, file: FileSpec, nbytes: float) -> None:
        if self.capacity_bytes <= 0.0:
            return
        current = self._resident.get(file.name, 0.0)
        self._resident[file.name] = min(file.size_bytes, current + nbytes)
        overflow = self.used_bytes - self.capacity_bytes
        if overflow > 0.0:
            # Proportional eviction approximates global LRU pressure.
            used = self.used_bytes
            for name in list(self._resident):
                share = self._resident[name] / used
                self._resident[name] = max(
                    0.0, self._resident[name] - overflow * share
                )


class FileSystem:
    """A flat namespace of files in front of a page cache."""

    def __init__(self, page_cache: PageCache) -> None:
        self.page_cache = page_cache
        self._files: Dict[str, FileSpec] = {}

    def create(self, name: str, size_bytes: float) -> FileSpec:
        """Register a file (idempotent when sizes match)."""
        existing = self._files.get(name)
        if existing is not None:
            if existing.size_bytes != size_bytes:
                raise ConfigurationError(
                    f"file {name!r} already exists with a different size"
                )
            return existing
        spec = FileSpec(name, size_bytes)
        self._files[name] = spec
        return spec

    def lookup(self, name: str) -> FileSpec:
        """Find a file by name."""
        spec = self._files.get(name)
        if spec is None:
            raise ConfigurationError(f"no such file {name!r}")
        return spec

    def read(self, name: str, nbytes: float) -> float:
        """Read from a file; returns bytes that need device access."""
        return self.page_cache.read(self.lookup(name), nbytes)

    def write(self, name: str, nbytes: float) -> float:
        """Write to a file; returns bytes that need device access."""
        return self.page_cache.write(self.lookup(name), nbytes)
