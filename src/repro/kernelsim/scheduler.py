"""CPU scheduling: core pools and context-switch costs.

:class:`CpuDevice` is the node's pool of logical cores — a DES resource
threads acquire to execute on-CPU work. Every block/unblock transition
pays a context switch priced through the analytical core model (kernel
scheduler code is real code: it pollutes the i-cache and burns cycles,
one of the effects prior user-level cloning work misses).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.core import CoreModel, ExecutionContext
from repro.kernelsim.syscalls import context_switch_block
from repro.sim import Environment, Event, Resource
from repro.util.errors import ConfigurationError


class ContextSwitchModel:
    """Prices one context switch on a given execution context."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self._timing = CoreModel(ctx).time_block(context_switch_block())

    @property
    def cycles(self) -> float:
        """Core cycles consumed per switch."""
        return self._timing.cycles

    @property
    def instructions(self) -> float:
        """Kernel instructions retired per switch."""
        return self._timing.instructions

    @property
    def timing(self):
        """Full BlockTiming of one switch (for counter aggregation)."""
        return self._timing


class CpuDevice:
    """A pool of logical cores with utilisation accounting."""

    def __init__(
        self,
        env: Environment,
        cores: int,
        frequency_hz: float,
        name: str = "cpu",
    ) -> None:
        if cores < 1:
            raise ConfigurationError("cores must be >= 1")
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.env = env
        self.cores = cores
        self.frequency_hz = frequency_hz
        self.name = name
        self._pool = Resource(env, capacity=cores, name=name)
        self.busy_seconds = 0.0
        self.context_switches = 0

    @property
    def queue_length(self) -> int:
        """Runnable threads waiting for a core."""
        return self._pool.queue_length

    @property
    def in_use(self) -> int:
        """Cores currently executing."""
        return self._pool.in_use

    def utilisation(self, elapsed_seconds: float) -> float:
        """Aggregate CPU utilisation in [0, 1] over ``elapsed_seconds``."""
        if elapsed_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed_seconds * self.cores))

    def seconds_for_cycles(self, cycles: float) -> float:
        """Wall-clock seconds for ``cycles`` of on-core work."""
        if cycles < 0:
            raise ConfigurationError("cycles must be non-negative")
        return cycles / self.frequency_hz

    def execute(
        self,
        cycles: float,
        switch: Optional[ContextSwitchModel] = None,
    ) -> Generator[Event, None, None]:
        """DES process body: occupy one core for ``cycles`` of work.

        When ``switch`` is given, the dispatch pays one context switch
        (the thread was blocked and is being scheduled back in).

        Injection point: an attached
        :class:`~repro.faults.injector.FaultInjector` may declare the
        node crashed (raises
        :class:`~repro.util.errors.FaultInjectionError`) or stretch the
        hold time by a CPU-steal factor — the vmstat ``%steal`` effect
        of a noisy hypervisor co-tenant. A factor of 1.0 schedules
        identically to no injector.
        """
        total_cycles = cycles
        if switch is not None:
            total_cycles += switch.cycles
            self.context_switches += 1
        hold = self.seconds_for_cycles(total_cycles)
        faults = self.env.faults
        if faults is not None:
            faults.check_node_up(self.name)
        grant = self._pool.request()
        yield grant
        try:
            if faults is not None:
                hold *= faults.cpu_factor(self.name)
            yield self.env.timeout(hold)
        finally:
            self._pool.release()
        self.busy_seconds += hold

    @property
    def mean_run_queue_wait(self) -> float:
        """Average scheduling delay per dispatch so far."""
        return self._pool.mean_wait_time
