"""CPU scheduling: core pools and context-switch costs.

:class:`CpuDevice` is the node's pool of logical cores — a DES resource
threads acquire to execute on-CPU work. Every block/unblock transition
pays a context switch priced through the analytical core model (kernel
scheduler code is real code: it pollutes the i-cache and burns cycles,
one of the effects prior user-level cloning work misses).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.core import CoreModel, ExecutionContext
from repro.kernelsim.syscalls import context_switch_block
from repro.sim import Environment, Event, Resource
from repro.sim.engine import NOOP
from repro.util.errors import ConfigurationError


class _CpuExecuteOp:
    """Compiled continuation equivalent of :meth:`CpuDevice.execute`.

    A generator-free state machine that pushes *exactly* the queue
    entries the ``yield env.process(cpu.execute(...))`` path would —
    same bucket slots, same times, same fault-draw points — so a run
    using it is bit-identical to the generator path (asserted by
    tests/test_perf_equivalence.py) while skipping the Process wrapper,
    the generator frame and two send() round-trips per operation.

    Slot map vs the generator (T = issue time, H = hold):
      stage 0 @ T       — process bootstrap ``_Resume``
      NOOP @ T          — the idle-path grant event (dispatches empty)
      stage 1 @ T       — the waiter's ``_Resume`` on the grant
      stage 2 @ T+H     — the hold ``Timeout``
      completion @ T+H  — the Process-completion event
    On a busy pool there are no NOOP/stage-1 slots: the grant event is
    pushed by ``release()`` and resumes the op from its callback, just
    as the generator resumes inline from the grant's callback.
    """

    __slots__ = ("device", "completion", "label", "_stage", "_hold",
                 "_switch")

    def __init__(self, device: "CpuDevice", cycles: float,
                 switch: Optional[ContextSwitchModel]) -> None:
        env = device.env
        self.device = device
        self.completion = Event(env)
        self.label = f"cpu-execute on {device.name!r}"
        self._stage = 0
        self._hold = cycles
        self._switch = switch
        env._push(self)

    def fire(self, env: Environment) -> None:
        stage = self._stage
        if stage == 0:
            device = self.device
            total_cycles = self._hold
            switch = self._switch
            if switch is not None:
                total_cycles += switch.cycles
                device.context_switches += 1
            try:
                hold = device.seconds_for_cycles(total_cycles)
                faults = env.faults
                if faults is not None:
                    faults.check_node_up(device.name)
            except Exception as error:
                self.completion.fail(error)
                return
            self._hold = hold
            pool = device._pool
            if pool._in_use < pool.capacity:
                pool._in_use += 1
                pool.total_grants += 1
                env._push(NOOP)
                self._stage = 1
                env._push(self)
            else:
                grant = Event(env)
                grant.callbacks.append(self._granted)
                pool._waiters.append((grant, env.now))
                pool.peak_queue_length = max(pool.peak_queue_length,
                                             len(pool._waiters))
        elif stage == 1:
            self._start_hold(env)
        else:
            device = self.device
            device._pool.release()
            device.busy_seconds += self._hold
            self.completion.succeed(None)

    def _granted(self, grant: Event) -> None:
        self._start_hold(self.device.env)

    def _start_hold(self, env: Environment) -> None:
        try:
            faults = env.faults
            if faults is not None:
                self._hold *= faults.cpu_factor(self.device.name)
        except Exception as error:
            self.device._pool.release()
            self.completion.fail(error)
            return
        self._stage = 2
        env._push(self, delay=self._hold)


class ContextSwitchModel:
    """Prices one context switch on a given execution context."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self._timing = CoreModel(ctx).time_block(context_switch_block())

    @property
    def cycles(self) -> float:
        """Core cycles consumed per switch."""
        return self._timing.cycles

    @property
    def instructions(self) -> float:
        """Kernel instructions retired per switch."""
        return self._timing.instructions

    @property
    def timing(self):
        """Full BlockTiming of one switch (for counter aggregation)."""
        return self._timing


class CpuDevice:
    """A pool of logical cores with utilisation accounting."""

    def __init__(
        self,
        env: Environment,
        cores: int,
        frequency_hz: float,
        name: str = "cpu",
    ) -> None:
        if cores < 1:
            raise ConfigurationError("cores must be >= 1")
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.env = env
        self.cores = cores
        self.frequency_hz = frequency_hz
        self.name = name
        self._pool = Resource(env, capacity=cores, name=name)
        self.busy_seconds = 0.0
        self.context_switches = 0

    @property
    def queue_length(self) -> int:
        """Runnable threads waiting for a core."""
        return self._pool.queue_length

    @property
    def in_use(self) -> int:
        """Cores currently executing."""
        return self._pool.in_use

    def utilisation(self, elapsed_seconds: float) -> float:
        """Aggregate CPU utilisation in [0, 1] over ``elapsed_seconds``."""
        if elapsed_seconds <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed_seconds * self.cores))

    def seconds_for_cycles(self, cycles: float) -> float:
        """Wall-clock seconds for ``cycles`` of on-core work."""
        if cycles < 0:
            raise ConfigurationError("cycles must be non-negative")
        return cycles / self.frequency_hz

    def execute(
        self,
        cycles: float,
        switch: Optional[ContextSwitchModel] = None,
    ) -> Generator[Event, None, None]:
        """DES process body: occupy one core for ``cycles`` of work.

        When ``switch`` is given, the dispatch pays one context switch
        (the thread was blocked and is being scheduled back in).

        Injection point: an attached
        :class:`~repro.faults.injector.FaultInjector` may declare the
        node crashed (raises
        :class:`~repro.util.errors.FaultInjectionError`) or stretch the
        hold time by a CPU-steal factor — the vmstat ``%steal`` effect
        of a noisy hypervisor co-tenant. A factor of 1.0 schedules
        identically to no injector.
        """
        total_cycles = cycles
        if switch is not None:
            total_cycles += switch.cycles
            self.context_switches += 1
        hold = self.seconds_for_cycles(total_cycles)
        faults = self.env.faults
        if faults is not None:
            faults.check_node_up(self.name)
        grant = self._pool.request()
        yield grant
        try:
            if faults is not None:
                hold *= faults.cpu_factor(self.name)
            yield self.env.timeout(hold)
        finally:
            self._pool.release()
        self.busy_seconds += hold

    def execute_op(
        self,
        cycles: float,
        switch: Optional[ContextSwitchModel] = None,
    ) -> Event:
        """Generator-free :meth:`execute`: returns the completion event.

        ``yield cpu.execute_op(c)`` schedules bit-identically to
        ``yield env.process(cpu.execute(c))`` (see :class:`_CpuExecuteOp`)
        but skips the generator machinery — the service-loop fast path.
        """
        return _CpuExecuteOp(self, cycles, switch).completion

    @property
    def mean_run_queue_wait(self) -> float:
        """Average scheduling delay per dispatch so far."""
        return self._pool.mean_wait_time
