"""System-call cost and footprint models (§4.4.1).

Every syscall is described by a :class:`SyscallDef`: a base kernel
instruction count, a kernel code footprint (i-cache pressure), optional
per-byte copy work (``copy_to/from_user`` modelled as REP string moves),
and a device side-effect class. :func:`kernel_block_for` turns a dynamic
:class:`SyscallInvocation` into a :class:`~repro.hw.ir.BlockSpec` that the
analytical core model prices like any user block — so cloning the syscall
distribution reproduces kernel-level CPU time, i-cache pollution, and
device traffic together, exactly the coupling Ditto exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hw.ir import BlockSpec, BranchSpec, DependencyProfile, MemAccessSpec, MemPattern
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceOp:
    """A device side-effect of a syscall: disk or network work."""

    device: str            # "disk" | "net_tx" | "net_rx"
    nbytes: float
    write: bool = False

    def __post_init__(self) -> None:
        if self.device not in ("disk", "net_tx", "net_rx"):
            raise ConfigurationError(f"unknown device {self.device!r}")
        if self.nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")


@dataclass(frozen=True)
class SyscallDef:
    """Static description of one syscall's kernel-side cost."""

    name: str
    base_instructions: float     # instructions excluding data copies
    code_bytes: int              # kernel text touched per invocation
    copies_bytes: bool = False   # does it copy the payload across the boundary
    device: Optional[str] = None     # "disk" | "net_tx" | "net_rx" | None
    blocking: bool = True        # can the caller block in the kernel
    data_wset_bytes: int = 16 * 1024  # kernel data structures touched

    def __post_init__(self) -> None:
        if self.base_instructions <= 0:
            raise ConfigurationError(f"{self.name}: instructions must be positive")
        if self.code_bytes <= 0:
            raise ConfigurationError(f"{self.name}: code bytes must be positive")


#: The syscall table: instruction counts / footprints follow published
#: kernel-profiling numbers (a read() is a few thousand instructions, a
#: sendmsg() traversing the TCP stack nearer ten thousand, clone() several
#: tens of thousands).
SYSCALL_TABLE: Dict[str, SyscallDef] = {
    spec.name: spec
    for spec in (
        SyscallDef("read", 3500, 12 * 1024, copies_bytes=True, device="disk"),
        SyscallDef("pread", 3800, 12 * 1024, copies_bytes=True, device="disk"),
        SyscallDef("write", 3800, 12 * 1024, copies_bytes=True, device="disk"),
        SyscallDef("pwrite", 4100, 12 * 1024, copies_bytes=True, device="disk"),
        SyscallDef("open", 6200, 20 * 1024),
        SyscallDef("close", 1800, 6 * 1024),
        SyscallDef("fsync", 9000, 16 * 1024, device="disk"),
        SyscallDef("mmap", 5200, 18 * 1024),
        SyscallDef("brk", 1500, 5 * 1024),
        SyscallDef("madvise", 2200, 8 * 1024),
        SyscallDef("recv", 7500, 28 * 1024, copies_bytes=True, device="net_rx"),
        SyscallDef("send", 8200, 30 * 1024, copies_bytes=True, device="net_tx"),
        SyscallDef("sendmsg", 8800, 32 * 1024, copies_bytes=True, device="net_tx"),
        SyscallDef("recvmsg", 8000, 30 * 1024, copies_bytes=True, device="net_rx"),
        SyscallDef("writev", 8600, 30 * 1024, copies_bytes=True, device="net_tx"),
        SyscallDef("accept", 9200, 26 * 1024),
        SyscallDef("connect", 11000, 30 * 1024),
        SyscallDef("epoll_wait", 2400, 10 * 1024),
        SyscallDef("epoll_ctl", 1900, 8 * 1024),
        SyscallDef("poll", 2600, 10 * 1024),
        SyscallDef("select", 2800, 10 * 1024),
        SyscallDef("futex", 1600, 6 * 1024),
        SyscallDef("clone", 24000, 48 * 1024),
        SyscallDef("exit", 9000, 20 * 1024),
        SyscallDef("nanosleep", 1200, 4 * 1024, blocking=True),
        SyscallDef("getrandom", 2100, 6 * 1024),
        SyscallDef("gettimeofday", 300, 1 * 1024, blocking=False),
    )
}


@dataclass(frozen=True)
class SyscallInvocation:
    """One dynamic syscall: the unit the profiler observes (§4.4.1).

    ``nbytes`` is the payload size (count argument); ``file``/``offset``
    identify the target for file I/O so the page-cache model can judge
    hits; ``miss_bytes`` is filled by the VFS for file reads that went to
    the device.
    """

    name: str
    nbytes: float = 0.0
    file: Optional[str] = None
    offset: float = 0.0
    write: bool = False

    def __post_init__(self) -> None:
        if self.name not in SYSCALL_TABLE:
            raise ConfigurationError(f"unknown syscall {self.name!r}")
        if self.nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")

    @property
    def spec(self) -> SyscallDef:
        """The static definition behind this invocation."""
        return SYSCALL_TABLE[self.name]


def kernel_block_for(invocation: SyscallInvocation) -> BlockSpec:
    """Build the kernel-side :class:`BlockSpec` for one invocation.

    The mix reflects kernel code: pointer-heavy loads/stores over kernel
    data structures, comparison/branch dense control flow, and REP string
    moves for the user/kernel copy when the syscall moves a payload.
    """
    spec = invocation.spec
    n = spec.base_instructions
    iform_counts: Dict[str, float] = {
        "MOV_r64_m64": 0.18 * n,
        "MOV_m64_r64": 0.08 * n,
        "LEA_r64_m": 0.06 * n,
        "ADD_r64_r64": 0.12 * n,
        "AND_r64_r64": 0.05 * n,
        "CMP_r64_imm": 0.14 * n,
        "TEST_r64_r64": 0.08 * n,
        "JNZ_rel": 0.13 * n,
        "CALL_rel": 0.05 * n,
        "RET": 0.05 * n,
        "MOV_r64_r64": 0.06 * n,
    }
    if spec.copies_bytes and invocation.nbytes > 0:
        iform_counts["REP_MOVSB"] = 1.0
    mem_accesses = 0.26 * n
    mem = [
        MemAccessSpec(
            wset_bytes=spec.data_wset_bytes,
            accesses=mem_accesses * 0.7,
            pattern=MemPattern.RANDOM,
        ),
        # Globally shared kernel structures (runqueues, socket tables).
        MemAccessSpec(
            wset_bytes=256 * 1024,
            accesses=mem_accesses * 0.3,
            pattern=MemPattern.RANDOM,
            shared_frac=0.4,
            write_frac=0.2,
        ),
    ]
    if spec.copies_bytes and invocation.nbytes > 0:
        # The payload copy streams through the cache hierarchy.
        mem.append(
            MemAccessSpec(
                wset_bytes=max(64, int(invocation.nbytes)),
                accesses=max(1.0, invocation.nbytes / 64.0),
                pattern=MemPattern.SEQUENTIAL,
            )
        )
    branches = (
        # Kernel fast paths are well predicted; error/slow-path checks and
        # data-dependent dispatch contribute a harder minority.
        BranchSpec(
            executions=iform_counts["JNZ_rel"] * 0.9,
            taken_rate=0.95,
            transition_rate=0.05,
            static_count=max(1, spec.code_bytes // 96),
        ),
        BranchSpec(
            executions=iform_counts["JNZ_rel"] * 0.1,
            taken_rate=0.55,
            transition_rate=0.4,
            static_count=max(1, spec.code_bytes // 192),
        ),
    )
    return BlockSpec(
        name=f"sys_{invocation.name}",
        iform_counts=iform_counts,
        code_bytes=spec.code_bytes,
        mem=tuple(mem),
        branches=branches,
        deps=DependencyProfile(raw={8: 0.6, 32: 0.4}, pointer_chase_frac=0.15),
        rep_elements=max(1.0, invocation.nbytes),
    )


def kernel_code_footprint(invocations) -> float:
    """Total distinct kernel text bytes exercised by a set of invocations.

    Used by the runtime to size the i-cache reuse distance contribution of
    kernel entries between user-code block executions.
    """
    seen: Dict[str, int] = {}
    for invocation in invocations:
        spec = (
            invocation.spec
            if isinstance(invocation, SyscallInvocation)
            else SYSCALL_TABLE[str(invocation)]
        )
        seen[spec.name] = spec.code_bytes
    return float(sum(seen.values()))


#: Kernel work for one context switch: scheduler pick + MMU switch.
CONTEXT_SWITCH_INSTRUCTIONS = 3200.0
CONTEXT_SWITCH_CODE_BYTES = 14 * 1024


def context_switch_block() -> BlockSpec:
    """The BlockSpec charged for one context switch."""
    n = CONTEXT_SWITCH_INSTRUCTIONS
    return BlockSpec(
        name="context_switch",
        iform_counts={
            "MOV_r64_m64": 0.2 * n,
            "MOV_m64_r64": 0.12 * n,
            "ADD_r64_r64": 0.15 * n,
            "CMP_r64_imm": 0.15 * n,
            "JNZ_rel": 0.13 * n,
            "CALL_rel": 0.05 * n,
            "RET": 0.05 * n,
            "MOV_r64_r64": 0.15 * n,
        },
        code_bytes=CONTEXT_SWITCH_CODE_BYTES,
        mem=(
            MemAccessSpec(wset_bytes=32 * 1024, accesses=0.3 * n,
                          pattern=MemPattern.RANDOM, shared_frac=0.3,
                          write_frac=0.3),
        ),
        branches=(BranchSpec(executions=0.13 * n, taken_rate=0.94,
                             transition_rate=0.06, static_count=200),),
        deps=DependencyProfile(raw={8: 0.7, 64: 0.3}, pointer_chase_frac=0.2),
    )
