"""Network devices and inter-node fabric.

Each node owns a :class:`NicDevice` — a DES resource serialising wire
transmission at the platform's link bandwidth, with byte counters for the
bandwidth numbers Fig. 5/7 report. :class:`NetworkFabric` moves messages
between nodes: base latency plus egress serialisation plus (optionally
shared) ingress.

Loopback messages (same node) skip the wire but still pay the stack
traversal, matching how the paper deploys multi-tier services both
locally and across a cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from repro.hw.platform import NetworkSpec
from repro.sim import Environment, Event, Resource
from repro.sim.engine import NOOP
from repro.util.errors import ConfigurationError


class _NicTransmitOp:
    """Compiled continuation equivalent of :meth:`NicDevice.transmit`.

    Pushes exactly the queue entries the generator path would — same
    bucket slots, same times, and crucially the ``nic_penalty`` fault
    draw at the same dispatch — so runs are bit-identical (see
    ``_CpuExecuteOp`` for the slot map) while skipping the Process
    wrapper and generator frame per send.
    """

    __slots__ = ("device", "completion", "label", "_stage", "_nbytes",
                 "_issued", "_penalty")

    def __init__(self, device: "NicDevice", nbytes: float) -> None:
        env = device.env
        self.device = device
        self.completion = Event(env)
        self.label = f"nic-transmit on {device.name!r}"
        self._stage = 0
        self._nbytes = nbytes
        self._issued = 0.0
        self._penalty = 0.0
        env._push(self)

    def fire(self, env: Environment) -> None:
        stage = self._stage
        if stage == 0:
            device = self.device
            try:
                if self._nbytes < 0:
                    raise ConfigurationError("nbytes must be non-negative")
                self._issued = env.now
                faults = env.faults
                self._penalty = (0.0 if faults is None
                                 else faults.nic_penalty(device.name))
            except Exception as error:
                self.completion.fail(error)
                return
            wire = device._wire
            if wire._in_use < wire.capacity:
                wire._in_use += 1
                wire.total_grants += 1
                env._push(NOOP)
                self._stage = 1
                env._push(self)
            else:
                grant = Event(env)
                grant.callbacks.append(self._granted)
                wire._waiters.append((grant, env.now))
                wire.peak_queue_length = max(wire.peak_queue_length,
                                             len(wire._waiters))
        elif stage == 1:
            self._start_hold(env)
        else:
            device = self.device
            device._wire.release()
            device.tx_bytes += self._nbytes
            timeline = device._timeline
            if timeline is not None:
                timeline.complete(device.name, "tx", self._issued,
                                  env.now - self._issued,
                                  nbytes=self._nbytes)
            self.completion.succeed(None)

    def _granted(self, grant: Event) -> None:
        self._start_hold(self.device.env)

    def _start_hold(self, env: Environment) -> None:
        self._stage = 2
        env._push(self, delay=self._nbytes / self.device.effective_bandwidth
                  + self._penalty)


class NicDevice:
    """One node's NIC: a serialising bandwidth resource plus counters.

    The telemetry timeline is bound once at construction (the
    attach-time guard): install ``env.timeline`` before building nodes.
    """

    def __init__(
        self,
        env: Environment,
        spec: NetworkSpec,
        name: str = "nic",
        bandwidth_share: float = 1.0,
    ) -> None:
        if not 0.0 < bandwidth_share <= 1.0:
            raise ConfigurationError("bandwidth_share must be in (0, 1]")
        self.env = env
        self.spec = spec
        self.name = name
        self.bandwidth_share = bandwidth_share
        self._wire = Resource(env, capacity=1, name=f"{name}-wire")
        self._timeline = env.timeline
        self.tx_bytes = 0.0
        self.rx_bytes = 0.0

    @property
    def effective_bandwidth(self) -> float:
        """Usable bandwidth in bytes/s after external contention."""
        return self.spec.bandwidth_bytes_per_s * self.bandwidth_share

    def transmit(self, nbytes: float) -> Generator[Event, None, None]:
        """DES process body: serialise ``nbytes`` onto the wire.

        Injection point: an attached
        :class:`~repro.faults.injector.FaultInjector` may declare the
        node down (raises
        :class:`~repro.util.errors.FaultInjectionError`) or charge this
        send extra delay for latency spikes and packet-loss
        retransmissions. The penalty folds into the serialisation
        timeout, so a zero penalty schedules identically to no injector.
        """
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        issued = self.env.now
        faults = self.env.faults
        penalty = 0.0 if faults is None else faults.nic_penalty(self.name)
        grant = self._wire.request()
        yield grant
        try:
            yield self.env.timeout(nbytes / self.effective_bandwidth
                                   + penalty)
        finally:
            self._wire.release()
        self.tx_bytes += nbytes
        timeline = self._timeline
        if timeline is not None:
            timeline.complete(self.name, "tx", issued,
                              self.env.now - issued, nbytes=nbytes)

    def transmit_op(self, nbytes: float) -> Event:
        """Generator-free :meth:`transmit`: returns the completion event.

        ``yield nic.transmit_op(n)`` schedules bit-identically to
        ``yield env.process(nic.transmit(n))`` (see
        :class:`_NicTransmitOp`) without the generator machinery.
        """
        return _NicTransmitOp(self, nbytes).completion

    def account_rx(self, nbytes: float) -> None:
        """Count received bytes (ingress is not a serialising bottleneck
        at the message sizes simulated here)."""
        self.rx_bytes += nbytes


@dataclass
class Message:
    """A payload in flight between two services."""

    src: str
    dst: str
    nbytes: float
    payload: object = None


class NetworkFabric:
    """Moves messages between named nodes."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._nics: Dict[str, NicDevice] = {}

    def attach(self, node_name: str, nic: NicDevice) -> None:
        """Register a node's NIC on the fabric."""
        if node_name in self._nics:
            raise ConfigurationError(f"node {node_name!r} already attached")
        self._nics[node_name] = nic

    def nic(self, node_name: str) -> NicDevice:
        """The NIC of a registered node."""
        nic = self._nics.get(node_name)
        if nic is None:
            raise ConfigurationError(f"node {node_name!r} not attached")
        return nic

    def deliver(self, message: Message) -> Generator[Event, None, None]:
        """DES process body: move ``message`` from src node to dst node.

        Same-node messages pay no wire time (loopback); cross-node
        messages pay source egress serialisation plus base link latency.
        The byte counters on both NICs advance either way, matching how
        ifstat-style tools report loopback traffic for locally-deployed
        microservices.

        Injection point: delivery to a crashed destination node raises
        :class:`~repro.util.errors.FaultInjectionError` (the message is
        lost with its node); egress faults surface through the source
        NIC's ``transmit``.
        """
        src_nic = self.nic(message.src)
        dst_nic = self.nic(message.dst)
        faults = self.env.faults
        if faults is not None:
            faults.check_node_up(message.src)
            faults.check_node_up(message.dst)
        if message.src == message.dst:
            # Loopback: stack traversal only (charged via syscalls).
            src_nic.tx_bytes += message.nbytes
            dst_nic.account_rx(message.nbytes)
            return
        yield self.env.process(src_nic.transmit(message.nbytes))
        yield self.env.timeout(src_nic.spec.base_latency_s)
        dst_nic.account_rx(message.nbytes)
