"""Simulated OS kernel substrate.

Cloud services spend a large fraction of their execution in the kernel
(§3.3.2); Ditto clones that by imitating the system calls themselves
(§4.4.1). This package models the kernel side of that story:

- a syscall table where each call carries a *kernel instruction footprint*
  (a :class:`~repro.hw.ir.BlockSpec` priced by the same CPU model as user
  code — kernel code competes for the i-cache, which is why cloud services
  are frontend-bound) plus device side-effects (disk or NIC work);
- a VFS with a page cache whose hit rate shapes disk traffic;
- a network fabric with per-node NIC bandwidth and per-message latency;
- CPU scheduling with explicit context-switch costs.
"""

from repro.kernelsim.syscalls import (
    SYSCALL_TABLE,
    DeviceOp,
    SyscallDef,
    SyscallInvocation,
    kernel_block_for,
    kernel_code_footprint,
)
from repro.kernelsim.filesystem import FileSystem, PageCache
from repro.kernelsim.netstack import NetworkFabric, NicDevice
from repro.kernelsim.scheduler import ContextSwitchModel, CpuDevice
from repro.kernelsim.node import Node

__all__ = [
    "ContextSwitchModel",
    "CpuDevice",
    "DeviceOp",
    "FileSystem",
    "NetworkFabric",
    "NicDevice",
    "Node",
    "PageCache",
    "SYSCALL_TABLE",
    "SyscallDef",
    "SyscallInvocation",
    "kernel_block_for",
    "kernel_code_footprint",
]
