"""A node: one server binding CPU, disk, NIC and page cache together."""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.platform import PlatformSpec
from repro.kernelsim.filesystem import FileSystem, PageCache
from repro.kernelsim.netstack import NicDevice
from repro.kernelsim.scheduler import CpuDevice
from repro.sim import Environment, Event, Resource
from repro.util.errors import ConfigurationError


class DiskDevice:
    """A storage device: serialising queue plus byte counters."""

    def __init__(self, env: Environment, platform: PlatformSpec,
                 name: str = "disk", bandwidth_share: float = 1.0) -> None:
        if not 0.0 < bandwidth_share <= 1.0:
            raise ConfigurationError("bandwidth_share must be in (0, 1]")
        self.env = env
        self.spec = platform.disk
        self.name = name
        self.bandwidth_share = bandwidth_share
        # SSDs overlap several outstanding requests' access latencies;
        # HDDs serialise on the head. Data transfer always serialises on
        # the device link, so aggregate throughput can never exceed the
        # device bandwidth.
        depth = 8 if self.spec.kind == "ssd" else 1
        self._queue = Resource(env, capacity=depth, name=name)
        self._channel = Resource(env, capacity=1, name=f"{name}-channel")
        self.read_bytes = 0.0
        self.write_bytes = 0.0
        self.operations = 0

    def io(self, nbytes: float, write: bool = False
           ) -> Generator[Event, None, None]:
        """DES process body: one device I/O of ``nbytes``.

        Injection point: an attached
        :class:`~repro.faults.injector.FaultInjector` may fail the
        operation outright (injected IO error or crashed node, raised
        as :class:`~repro.util.errors.FaultInjectionError`) or stretch
        its access latency and transfer time by a brown-out factor.
        A factor of 1.0 schedules identically to no injector.
        """
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        issued = self.env.now
        faults = self.env.faults
        slowdown = 1.0
        if faults is not None:
            faults.disk_check(self.name)
            slowdown = faults.disk_factor(self.name)
        grant = self._queue.request()
        yield grant
        try:
            latency = (self.spec.write_latency_s if write
                       else self.spec.read_latency_s)
            yield self.env.timeout(latency * slowdown)
            channel = self._channel.request()
            yield channel
            try:
                xfer = nbytes / (self.spec.bandwidth_bytes_per_s
                                 * self.bandwidth_share)
                yield self.env.timeout(xfer * slowdown)
            finally:
                self._channel.release()
        finally:
            self._queue.release()
        self.operations += 1
        if write:
            self.write_bytes += nbytes
        else:
            self.read_bytes += nbytes
        timeline = self.env.timeline
        if timeline is not None:
            timeline.complete(self.name, "write" if write else "read",
                              issued, self.env.now - issued,
                              nbytes=nbytes)


class Node:
    """One simulated server: platform + devices + VFS.

    ``cores`` and ``frequency_ghz`` may override the platform defaults for
    the power-management study (Fig. 11); ``page_cache_bytes`` defaults to
    a quarter of RAM (a database would normally configure this).
    """

    def __init__(
        self,
        env: Environment,
        platform: PlatformSpec,
        name: str = "node0",
        cores: Optional[int] = None,
        frequency_ghz: Optional[float] = None,
        page_cache_bytes: Optional[float] = None,
        nic_bandwidth_share: float = 1.0,
        disk_bandwidth_share: float = 1.0,
    ) -> None:
        self.env = env
        self.platform = platform
        self.name = name
        self.frequency_ghz = (frequency_ghz if frequency_ghz is not None
                              else platform.base_frequency_ghz)
        core_count = cores if cores is not None else platform.total_cores
        if core_count < 1:
            raise ConfigurationError("node needs at least one core")
        if core_count > platform.total_cores * platform.smt_ways:
            raise ConfigurationError(
                f"{core_count} cores exceed platform capacity"
            )
        self.cores = core_count
        self.cpu = CpuDevice(
            env, core_count, platform.frequency_hz(self.frequency_ghz),
            name=f"{name}-cpu",
        )
        self.disk = DiskDevice(env, platform, name=f"{name}-disk",
                               bandwidth_share=disk_bandwidth_share)
        self.nic = NicDevice(env, platform.network, name=f"{name}-nic",
                             bandwidth_share=nic_bandwidth_share)
        cache_bytes = (page_cache_bytes if page_cache_bytes is not None
                       else platform.ram_bytes * 0.25)
        self.filesystem = FileSystem(PageCache(cache_bytes))

    def seconds_for_cycles(self, cycles: float) -> float:
        """Wall-clock seconds for ``cycles`` at this node's frequency."""
        return self.cpu.seconds_for_cycles(cycles)
