"""A node: one server binding CPU, disk, NIC and page cache together."""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.platform import PlatformSpec
from repro.kernelsim.filesystem import FileSystem, PageCache
from repro.kernelsim.netstack import NicDevice
from repro.kernelsim.scheduler import CpuDevice
from repro.sim import Environment, Event, Resource
from repro.sim.engine import NOOP
from repro.util.errors import ConfigurationError


class _DiskIoOp:
    """Compiled continuation equivalent of :meth:`DiskDevice.io`.

    Two acquire→hold phases (queue slot, then transfer channel) driven
    as a five-stage state machine that pushes exactly the queue entries
    the generator path would — same bucket slots, same times, fault
    draws (``disk_check``/``disk_factor``) at the same dispatch — so
    runs are bit-identical while skipping the generator machinery.
    """

    __slots__ = ("device", "completion", "label", "_stage", "_nbytes",
                 "_write", "_issued", "_slowdown")

    def __init__(self, device: "DiskDevice", nbytes: float,
                 write: bool) -> None:
        env = device.env
        self.device = device
        self.completion = Event(env)
        self.label = f"disk-io on {device.name!r}"
        self._stage = 0
        self._nbytes = nbytes
        self._write = write
        self._issued = 0.0
        self._slowdown = 1.0
        env._push(self)

    def fire(self, env: Environment) -> None:
        stage = self._stage
        device = self.device
        if stage == 0:
            try:
                if self._nbytes < 0:
                    raise ConfigurationError("nbytes must be non-negative")
                self._issued = env.now
                faults = env.faults
                if faults is not None:
                    faults.disk_check(device.name)
                    self._slowdown = faults.disk_factor(device.name)
            except Exception as error:
                self.completion.fail(error)
                return
            self._acquire(env, device._queue, 1)
        elif stage == 1:
            self._queue_granted(env)
        elif stage == 2:
            self._acquire(env, device._channel, 3)
        elif stage == 3:
            self._channel_granted(env)
        else:
            device._channel.release()
            device._queue.release()
            device.operations += 1
            if self._write:
                device.write_bytes += self._nbytes
            else:
                device.read_bytes += self._nbytes
            timeline = device._timeline
            if timeline is not None:
                timeline.complete(device.name,
                                  "write" if self._write else "read",
                                  self._issued, env.now - self._issued,
                                  nbytes=self._nbytes)
            self.completion.succeed(None)

    def _acquire(self, env: Environment, resource: Resource,
                 next_stage: int) -> None:
        if resource._in_use < resource.capacity:
            resource._in_use += 1
            resource.total_grants += 1
            env._push(NOOP)
            self._stage = next_stage
            env._push(self)
        else:
            grant = Event(env)
            grant.callbacks.append(self._queue_grant_cb if next_stage == 1
                                   else self._channel_grant_cb)
            resource._waiters.append((grant, env.now))
            resource.peak_queue_length = max(resource.peak_queue_length,
                                             len(resource._waiters))

    def _queue_grant_cb(self, grant: Event) -> None:
        self._queue_granted(self.device.env)

    def _channel_grant_cb(self, grant: Event) -> None:
        self._channel_granted(self.device.env)

    def _queue_granted(self, env: Environment) -> None:
        spec = self.device.spec
        latency = (spec.write_latency_s if self._write
                   else spec.read_latency_s)
        self._stage = 2
        env._push(self, delay=latency * self._slowdown)

    def _channel_granted(self, env: Environment) -> None:
        device = self.device
        xfer = self._nbytes / (device.spec.bandwidth_bytes_per_s
                               * device.bandwidth_share)
        self._stage = 4
        env._push(self, delay=xfer * self._slowdown)


class DiskDevice:
    """A storage device: serialising queue plus byte counters."""

    def __init__(self, env: Environment, platform: PlatformSpec,
                 name: str = "disk", bandwidth_share: float = 1.0) -> None:
        if not 0.0 < bandwidth_share <= 1.0:
            raise ConfigurationError("bandwidth_share must be in (0, 1]")
        self.env = env
        self.spec = platform.disk
        self.name = name
        self.bandwidth_share = bandwidth_share
        # SSDs overlap several outstanding requests' access latencies;
        # HDDs serialise on the head. Data transfer always serialises on
        # the device link, so aggregate throughput can never exceed the
        # device bandwidth.
        depth = 8 if self.spec.kind == "ssd" else 1
        self._queue = Resource(env, capacity=depth, name=name)
        self._channel = Resource(env, capacity=1, name=f"{name}-channel")
        self._timeline = env.timeline
        self.read_bytes = 0.0
        self.write_bytes = 0.0
        self.operations = 0

    def io(self, nbytes: float, write: bool = False
           ) -> Generator[Event, None, None]:
        """DES process body: one device I/O of ``nbytes``.

        Injection point: an attached
        :class:`~repro.faults.injector.FaultInjector` may fail the
        operation outright (injected IO error or crashed node, raised
        as :class:`~repro.util.errors.FaultInjectionError`) or stretch
        its access latency and transfer time by a brown-out factor.
        A factor of 1.0 schedules identically to no injector.
        """
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        issued = self.env.now
        faults = self.env.faults
        slowdown = 1.0
        if faults is not None:
            faults.disk_check(self.name)
            slowdown = faults.disk_factor(self.name)
        grant = self._queue.request()
        yield grant
        try:
            latency = (self.spec.write_latency_s if write
                       else self.spec.read_latency_s)
            yield self.env.timeout(latency * slowdown)
            channel = self._channel.request()
            yield channel
            try:
                xfer = nbytes / (self.spec.bandwidth_bytes_per_s
                                 * self.bandwidth_share)
                yield self.env.timeout(xfer * slowdown)
            finally:
                self._channel.release()
        finally:
            self._queue.release()
        self.operations += 1
        if write:
            self.write_bytes += nbytes
        else:
            self.read_bytes += nbytes
        timeline = self._timeline
        if timeline is not None:
            timeline.complete(self.name, "write" if write else "read",
                              issued, self.env.now - issued,
                              nbytes=nbytes)

    def io_op(self, nbytes: float, write: bool = False) -> Event:
        """Generator-free :meth:`io`: returns the completion event.

        ``yield disk.io_op(n)`` schedules bit-identically to
        ``yield env.process(disk.io(n))`` (see :class:`_DiskIoOp`)
        without the generator machinery.
        """
        return _DiskIoOp(self, nbytes, write).completion


class Node:
    """One simulated server: platform + devices + VFS.

    ``cores`` and ``frequency_ghz`` may override the platform defaults for
    the power-management study (Fig. 11); ``page_cache_bytes`` defaults to
    a quarter of RAM (a database would normally configure this).
    """

    def __init__(
        self,
        env: Environment,
        platform: PlatformSpec,
        name: str = "node0",
        cores: Optional[int] = None,
        frequency_ghz: Optional[float] = None,
        page_cache_bytes: Optional[float] = None,
        nic_bandwidth_share: float = 1.0,
        disk_bandwidth_share: float = 1.0,
    ) -> None:
        self.env = env
        self.platform = platform
        self.name = name
        self.frequency_ghz = (frequency_ghz if frequency_ghz is not None
                              else platform.base_frequency_ghz)
        core_count = cores if cores is not None else platform.total_cores
        if core_count < 1:
            raise ConfigurationError("node needs at least one core")
        if core_count > platform.total_cores * platform.smt_ways:
            raise ConfigurationError(
                f"{core_count} cores exceed platform capacity"
            )
        self.cores = core_count
        self.cpu = CpuDevice(
            env, core_count, platform.frequency_hz(self.frequency_ghz),
            name=f"{name}-cpu",
        )
        self.disk = DiskDevice(env, platform, name=f"{name}-disk",
                               bandwidth_share=disk_bandwidth_share)
        self.nic = NicDevice(env, platform.network, name=f"{name}-nic",
                             bandwidth_share=nic_bandwidth_share)
        cache_bytes = (page_cache_bytes if page_cache_bytes is not None
                       else platform.ram_bytes * 0.25)
        self.filesystem = FileSystem(PageCache(cache_bytes))

    def seconds_for_cycles(self, cycles: float) -> float:
        """Wall-clock seconds for ``cycles`` at this node's frequency."""
        return self.cpu.seconds_for_cycles(cycles)
