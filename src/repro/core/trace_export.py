"""Trace export for trace-driven simulators (§5).

"The synthesized binaries can run directly on hardware, execution-driven
simulators like gem5 and ZSim, or their traces can be fed to trace-driven
simulators like Ramulator."

This module materialises a synthetic program's per-request memory and
instruction traces:

- :func:`export_memory_trace` — Ramulator-style lines
  (``<bubble-count> <read-address> [write-address]``), derived from each
  block's generated access streams;
- :func:`export_instruction_trace` — a flat instruction trace
  (``<pc> <iform>``) suitable for simple trace-driven frontends.

The traces come from the *synthetic* program, so sharing them leaks
nothing beyond the clone itself.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, TextIO, Tuple

import numpy as np

from repro.app.program import ComputeOp, Handler, Program
from repro.hw.cache import generate_access_stream
from repro.isa.instructions import iform
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStream

#: cap on the number of trace records emitted per call, a safety net
MAX_RECORDS = 5_000_000


def _blocks_of(program: Program, handler: Optional[str]) -> List:
    if handler is not None:
        return program.handler(handler).compute_blocks
    return program.all_blocks()


def iter_memory_accesses(
    program: Program,
    handler: Optional[str] = None,
    requests: int = 1,
    seed: int = 31,
    max_accesses_per_spec: int = 4096,
) -> Iterator[Tuple[int, bool]]:
    """Yield (byte address, is_write) for the generated body's accesses.

    Streams are produced by the same generator mechanics the timing model
    assumes (Fig. 4 working-set sweeps, shuffled loops, pointer chains),
    laid out over disjoint per-working-set regions.
    """
    if requests < 1:
        raise ConfigurationError("requests must be >= 1")
    stream = RngStream(seed, "trace-export")
    next_base = 0x10_0000
    region_of = {}
    emitted = 0
    for request in range(requests):
        for block in _blocks_of(program, handler):
            iterations = max(1, int(round(block.iterations)))
            for spec_index, spec in enumerate(block.mem):
                total = spec.accesses * iterations
                if total < 1:
                    continue
                key = (block.name, spec_index)
                if key not in region_of:
                    region_of[key] = next_base
                    next_base += 2 * max(64, int(spec.wset_bytes))
                length = int(min(max_accesses_per_spec, total))
                rng = stream.rng(block.name, str(spec_index), str(request))
                addresses = generate_access_stream(
                    spec, rng, length, base=region_of[key])
                writes = rng.random(length) < spec.write_frac
                for address, write in zip(addresses, writes):
                    yield int(address), bool(write)
                    emitted += 1
                    if emitted >= MAX_RECORDS:
                        return


def export_memory_trace(
    program: Program,
    destination,
    handler: Optional[str] = None,
    requests: int = 1,
    seed: int = 31,
    bubbles_per_access: int = 4,
) -> int:
    """Write a Ramulator-format CPU trace; returns the line count.

    Each line is ``<num-cpu-instructions> <read-addr>`` or
    ``<num-cpu-instructions> <read-addr> <write-addr>``; the bubble count
    approximates the non-memory instructions between accesses (derived
    from the program's memory-instruction fraction when available).
    """
    path = Path(destination)
    lines = 0
    pending_write: Optional[int] = None
    with path.open("w") as sink:
        for address, is_write in iter_memory_accesses(
                program, handler=handler, requests=requests, seed=seed):
            if is_write:
                # Ramulator attaches a writeback to the preceding read.
                pending_write = address
                continue
            if pending_write is not None:
                sink.write(f"{bubbles_per_access} {address} "
                           f"{pending_write}\n")
                pending_write = None
            else:
                sink.write(f"{bubbles_per_access} {address}\n")
            lines += 1
    return lines


def export_instruction_trace(
    program: Program,
    destination,
    handler: Optional[str] = None,
    requests: int = 1,
    seed: int = 31,
    max_instructions: int = 200_000,
) -> int:
    """Write a ``<pc> <iform>`` instruction trace; returns the line count.

    Instructions are sampled from each block's mix in execution order,
    with program counters walking the block's code region — the same
    layout the i-side working-set analysis assumes.
    """
    if requests < 1:
        raise ConfigurationError("requests must be >= 1")
    path = Path(destination)
    stream = RngStream(seed, "itrace-export")
    written = 0
    code_base = 0x40_0000
    code_base_of = {}
    with path.open("w") as sink:
        for request in range(requests):
            for block in _blocks_of(program, handler):
                if block.name not in code_base_of:
                    code_base_of[block.name] = code_base
                    code_base += 2 * max(64, block.static_code_bytes())
                base = code_base_of[block.name]
                names = sorted(block.iform_counts)
                counts = np.array([block.iform_counts[n] for n in names])
                if counts.sum() <= 0:
                    continue
                probs = counts / counts.sum()
                per_request = block.instructions_per_request
                budget = int(min(per_request,
                                 max_instructions - written))
                if budget <= 0:
                    return written
                rng = stream.rng(block.name, str(request))
                drawn = rng.choice(len(names), size=budget, p=probs)
                code_bytes = max(64, block.static_code_bytes())
                offset = 0
                for index in drawn:
                    name = names[index]
                    sink.write(f"0x{base + offset:x} {name}\n")
                    offset = (offset + iform(name).size_bytes) % code_bytes
                    written += 1
    return written
