"""Microservice-topology analysis (§4.2).

A thin orchestration layer over the tracing substrate: validates the
extracted RPC DAG, summarises per-edge call statistics, and exposes the
tier ordering the cloner generates synthetic services in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.tracing.graph import DependencyGraph, extract_dependency_graph
from repro.tracing.span import Span
from repro.util.errors import ProfilingError


@dataclass
class TopologySummary:
    """The analysed topology plus handy derived views."""

    graph: DependencyGraph
    entry_service: str
    tiers: List[str]
    edges: List[Tuple[str, str, int]]

    @property
    def tier_count(self) -> int:
        """Number of services in the topology."""
        return len(self.tiers)

    def fan_out(self, service: str) -> int:
        """Distinct downstream services of one tier."""
        return len(self.graph.downstreams(service))


def analyze_topology(spans: List[Span]) -> TopologySummary:
    """Extract and summarise the RPC dependency DAG from traces."""
    graph = extract_dependency_graph(spans)
    if not graph.root_services:
        raise ProfilingError("topology has no root service")
    entry = graph.root_services[0]
    tiers = graph.services()
    edges = [
        (src, dst, graph.edge(src, dst).calls)
        for src, dst in graph.graph.edges()
    ]
    return TopologySummary(
        graph=graph,
        entry_service=entry,
        tiers=tiers,
        edges=edges,
    )
