"""The typed clone-request spec shared by every cloning entry point.

A :class:`CloneRequest` is the *what* of a clone — the deployment to
clone, the profiling load/platform, and the reproducibility knobs (seed,
tuning budget, validation gate, fault/resilience options) — captured in
one frozen, keyword-only, picklable object. The same request drives all
three entry points:

- one-shot: ``DittoCloner().clone(request)``;
- re-generation: ``cloner.clone_from_profile(profile, request=request)``;
- fleet submission: ``FleetClient(store).submit(request)`` — the fleet
  job store keys jobs, shared profiles and the fleet-wide experiment
  cache by :meth:`CloneRequest.digest`.

Execution *infrastructure* (executor mode, worker counts, checkpoint
directories, telemetry sessions) deliberately stays off the request:
none of it changes clone output (the pipeline is bit-identical across
executors), so none of it belongs in the digest that decides whether
two jobs are the same experiment.

Option fields default to ``None``, meaning "inherit from the executing
cloner" — a request only pins what it cares about. The legacy
positional ``cloner.clone(deployment, load, config)`` form still works
through a shim that builds a request on the fly (and warns).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Union

from repro.app.service import Deployment
from repro.core.body_gen import GeneratorConfig
from repro.faults.plan import FaultPlan
from repro.loadgen.generator import LoadSpec
from repro.profiling.artifacts import ProfilingBudget
from repro.runtime.experiment import ExperimentConfig
from repro.runtime.resilience import ResilienceConfig
from repro.util.errors import ConfigurationError
from repro.util.spec_hash import stable_digest
from repro.validation.gate import FidelityGate
from repro.validation.remediate import RemediationPolicy

__all__ = ["CloneRequest"]


@dataclass(frozen=True, kw_only=True)
class CloneRequest:
    """One clone, fully specified (frozen, keyword-only, picklable).

    ``deployment``/``load``/``config`` are the required *what*:
    profile ``deployment`` at ``load`` on ``config.platform``. The
    remaining fields are optional overrides of the executing
    :class:`~repro.core.cloner.DittoCloner`'s own knobs; ``None`` means
    "use the cloner's setting". ``validate`` is tri-state: ``None``
    inherits, ``False`` forces the gate off, ``True``/a configured
    :class:`~repro.validation.gate.FidelityGate` turns it on.

    ``fault_plan``/``resilience`` are folded into the experiment config
    (it is an error to set them both here and on ``config``), so a
    request can ask for a degraded-mode clone without rebuilding the
    config by hand.
    """

    deployment: Deployment
    load: LoadSpec
    config: ExperimentConfig
    #: load the fidelity gate replays under; defaults to ``load``
    validation_load: Optional[LoadSpec] = None
    seed: Optional[int] = None
    fine_tune_tiers: Optional[bool] = None
    max_tune_iterations: Optional[int] = None
    budget: Optional[ProfilingBudget] = None
    generator_config: Optional[GeneratorConfig] = None
    validate: Union[bool, FidelityGate, None] = None
    remediation: Optional[RemediationPolicy] = None
    fault_plan: Optional[FaultPlan] = None
    resilience: Optional[ResilienceConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.deployment, Deployment):
            raise ConfigurationError(
                f"deployment must be a Deployment, got {self.deployment!r}")
        if not isinstance(self.load, LoadSpec):
            raise ConfigurationError(
                f"load must be a LoadSpec, got {self.load!r}")
        if not isinstance(self.config, ExperimentConfig):
            raise ConfigurationError(
                f"config must be an ExperimentConfig, got {self.config!r}")
        if self.validation_load is not None \
                and not isinstance(self.validation_load, LoadSpec):
            raise ConfigurationError(
                f"validation_load must be a LoadSpec, "
                f"got {self.validation_load!r}")
        if self.seed is not None and (not isinstance(self.seed, int)
                                      or isinstance(self.seed, bool)):
            raise ConfigurationError(f"seed must be an int, got {self.seed!r}")
        if self.max_tune_iterations is not None and (
                not isinstance(self.max_tune_iterations, int)
                or isinstance(self.max_tune_iterations, bool)
                or self.max_tune_iterations < 1):
            raise ConfigurationError(
                f"max_tune_iterations must be an int >= 1, "
                f"got {self.max_tune_iterations!r}")
        if self.validate is not None and not isinstance(
                self.validate, (bool, FidelityGate)):
            raise ConfigurationError(
                f"validate must be a bool or FidelityGate, "
                f"got {self.validate!r}")
        if self.remediation is not None \
                and not isinstance(self.remediation, RemediationPolicy):
            raise ConfigurationError(
                f"remediation must be a RemediationPolicy, "
                f"got {self.remediation!r}")
        if self.fault_plan is not None \
                and self.config.fault_plan is not None:
            raise ConfigurationError(
                "fault_plan set on both the request and its config — "
                "pick one")
        if self.resilience is not None \
                and self.config.resilience is not None:
            raise ConfigurationError(
                "resilience set on both the request and its config — "
                "pick one")

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def effective_config(self) -> ExperimentConfig:
        """``config`` with request-level fault/resilience folded in."""
        if self.fault_plan is None and self.resilience is None:
            return self.config
        overrides: Dict[str, Any] = {}
        if self.fault_plan is not None:
            overrides["fault_plan"] = self.fault_plan
        if self.resilience is not None:
            overrides["resilience"] = self.resilience
        return replace(self.config, **overrides)

    def effective_validation_load(self) -> LoadSpec:
        """The load the fidelity gate replays under."""
        return self.validation_load if self.validation_load is not None \
            else self.load

    def cloner_options(self) -> Dict[str, Any]:
        """The non-``None`` option fields as ``DittoCloner`` kwargs."""
        options: Dict[str, Any] = {}
        for name in ("seed", "fine_tune_tiers", "max_tune_iterations",
                     "budget", "generator_config", "validate",
                     "remediation"):
            value = getattr(self, name)
            if value is not None:
                options[name] = value
        return options

    def digest(self) -> str:
        """Stable identity of this request (the fleet's job/cache key).

        Covers every field that can change clone output; normalises the
        config the same way the experiment cache does (a live tracer is
        an observation channel, not an input) and flattens a
        :class:`FidelityGate` into its defining configuration so two
        equal gates hash equally.
        """
        return stable_digest({
            "deployment": self.deployment,
            "load": self.load,
            "config": replace(self.effective_config(), tracer=None),
            "validation_load": self.validation_load,
            "seed": self.seed,
            "fine_tune_tiers": self.fine_tune_tiers,
            "max_tune_iterations": self.max_tune_iterations,
            "budget": self.budget,
            "generator_config": self.generator_config,
            "validate": self._digestable_validate(),
            "remediation": self.remediation,
        })

    def _digestable_validate(self) -> Any:
        if isinstance(self.validate, FidelityGate):
            gate = self.validate
            return ("gate", sorted(gate.tolerances.items()), gate.metrics,
                    gate.latency_quantiles, gate.check_latency,
                    gate.check_error_rate)
        return ("flag", self.validate)

    def describe(self) -> str:
        """One-line human summary (CLI listings, logs)."""
        tiers = len(self.deployment.services)
        return (f"{self.deployment.entry_service} "
                f"({tiers} tier{'s' if tiers != 1 else ''}, "
                f"platform {self.config.platform.name}, "
                f"seed {self.seed if self.seed is not None else 'default'}, "
                f"validate={'on' if self.validate else 'off'})")
