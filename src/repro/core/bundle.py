"""Shareable clone bundles (§7.2's confidentiality story, made concrete).

The whole point of Ditto is that an application owner can hand a third
party something that *performs* like the production service without
*being* it. The shareable artifact is the per-tier feature set — post-
processed statistics plus the skeleton — and nothing else. This module
serialises :class:`~repro.core.features.ServiceFeatures` to a versioned
JSON bundle, deserialises it, and regenerates a runnable synthetic
deployment from the bundle alone. A small audit helper verifies the
bundle leaks none of the original's identifiers.

Bundle v2 adds two things on top of v1's tier features:

- an embedded ``integrity`` stanza (canonical-JSON SHA-256, see
  :func:`repro.validation.integrity.stamp_json`) so a damaged bundle is
  quarantined and reported instead of silently regenerating a wrong
  clone — v1 bundles (no stanza) still load;
- optional per-tier **tuned knobs** (the fine-tuner's output), so a
  consumer regenerates the *calibrated* clone, not the pre-tuning one —
  which is what ``python -m repro.validation`` gates a bundle on.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.app.service import Deployment, Placement, ServiceSpec
from repro.core.body_gen import GeneratorConfig, TuningKnobs, generate_program
from repro.core.features import ServiceFeatures
from repro.core.skeleton_gen import generate_skeleton
from repro.app.skeleton import ClientNetworkModel, ServerNetworkModel
from repro.hw.core import BlockTiming
from repro.profiling.branches import BranchProfile
from repro.profiling.deps import DependencyDistanceProfile
from repro.profiling.instmix import InstructionMixProfile
from repro.profiling.netmodel import NetworkModelProfile
from repro.profiling.syscalls import SyscallProfile, SyscallTemplateEntry
from repro.profiling.threads import (
    ReconstructedThreadClass,
    ThreadModelProfile,
)
from repro.runtime.metrics import ServiceMetrics
from repro.util.errors import ArtifactIntegrityError, ConfigurationError
from repro.util.stats import Histogram, OnlineStats
from repro.validation import integrity

BUNDLE_FORMAT = "ditto-clone-bundle"
BUNDLE_VERSION = 2

#: migrated bundles: a superset of the clone-bundle document (same
#: tiers/knobs/placements, loadable by everything below) plus a
#: ``migration`` stanza holding the preflight verdicts, per-knob retune
#: deltas and the destination fidelity report — see ``repro.migrate``
MIGRATION_FORMAT = "ditto-migration"
MIGRATION_VERSION = 1


# --------------------------------------------------------------------- #
# per-piece encoders/decoders
# --------------------------------------------------------------------- #
def _encode_mix(mix: InstructionMixProfile) -> dict:
    return {
        "mix": {str(k): v for k, v in mix.mix.counts.items()},
        "instructions_per_request": mix.instructions_per_request,
        "by_handler": dict(mix.instructions_per_request_by_handler),
        "rep_counts": dict(mix.rep_counts),
        "clusters": [list(c) for c in mix.clusters],
    }


def _decode_mix(data: dict) -> InstructionMixProfile:
    profile = InstructionMixProfile()
    profile.mix = Histogram(dict(data["mix"]))
    profile.instructions_per_request = data["instructions_per_request"]
    profile.instructions_per_request_by_handler = dict(data["by_handler"])
    profile.rep_counts = dict(data["rep_counts"])
    profile.clusters = [list(c) for c in data["clusters"]]
    return profile


def _encode_branches(branches: BranchProfile) -> dict:
    return {
        "bins": [
            {"m": m, "n": n, "taken_dominant": bool(direction),
             "weight": weight}
            for (m, n, direction), weight in
            branches.rate_distribution.counts.items()
        ],
        "static_sites": branches.static_sites,
        "mean_taken_rate": branches.mean_taken_rate,
        "mean_transition_rate": branches.mean_transition_rate,
    }


def _decode_branches(data: dict) -> BranchProfile:
    profile = BranchProfile()
    for entry in data["bins"]:
        profile.rate_distribution.add(
            (entry["m"], entry["n"], entry["taken_dominant"]),
            entry["weight"])
    profile.static_sites = data["static_sites"]
    profile.mean_taken_rate = data["mean_taken_rate"]
    profile.mean_transition_rate = data["mean_transition_rate"]
    return profile


def _encode_deps(deps: DependencyDistanceProfile) -> dict:
    return {
        "raw": {str(k): v for k, v in deps.raw.items()},
        "war": {str(k): v for k, v in deps.war.items()},
        "waw": {str(k): v for k, v in deps.waw.items()},
        "pointer_chase_frac": deps.pointer_chase_frac,
    }


def _decode_deps(data: dict) -> DependencyDistanceProfile:
    return DependencyDistanceProfile(
        raw={int(k): v for k, v in data["raw"].items()},
        war={int(k): v for k, v in data["war"].items()},
        waw={int(k): v for k, v in data["waw"].items()},
        pointer_chase_frac=data["pointer_chase_frac"],
    )


def _encode_syscalls(syscalls: SyscallProfile) -> dict:
    return {
        "templates": {
            operation: [
                {"name": e.name, "count": e.count_per_request,
                 "bytes": e.mean_bytes, "file": e.file, "write": e.write,
                 "position": e.mean_position}
                for e in entries
            ]
            for operation, entries in syscalls.templates.items()
        },
        "counts_per_request": dict(syscalls.counts_per_request),
        "files_seen": dict(syscalls.files_seen),
    }


def _decode_syscalls(data: dict) -> SyscallProfile:
    profile = SyscallProfile()
    for operation, entries in data["templates"].items():
        profile.templates[operation] = [
            SyscallTemplateEntry(
                name=e["name"], count_per_request=e["count"],
                mean_bytes=e["bytes"], file=e["file"], write=e["write"],
                mean_position=e["position"])
            for e in entries
        ]
    profile.counts_per_request = dict(data["counts_per_request"])
    profile.files_seen = dict(data["files_seen"])
    return profile


def _encode_threads(threads: ThreadModelProfile) -> dict:
    return {
        "classes": [
            {"name": c.name, "role": c.role, "count": c.count,
             "scales": c.scales_with_connections, "trigger": c.trigger,
             "short_lived": c.short_lived}
            for c in threads.classes
        ]
    }


def _decode_threads(data: dict) -> ThreadModelProfile:
    return ThreadModelProfile(classes=[
        ReconstructedThreadClass(
            name=c["name"], role=c["role"], count=c["count"],
            scales_with_connections=c["scales"], trigger=c["trigger"],
            short_lived=c["short_lived"])
        for c in data["classes"]
    ])


def _encode_network(network: NetworkModelProfile) -> dict:
    return {
        "server_model": network.server_model.value,
        "client_model": network.client_model.value,
        "rx_mean": network.rx_bytes.mean,
        "rx_count": network.rx_bytes.count,
        "tx_mean": network.tx_bytes.mean,
        "tx_count": network.tx_bytes.count,
        "waits_per_request": network.waits_per_request,
        "rx_per_request": network.rx_per_request,
        "tx_per_request": network.tx_per_request,
    }


def _decode_network(data: dict) -> NetworkModelProfile:
    rx = OnlineStats(count=data["rx_count"], mean=data["rx_mean"])
    tx = OnlineStats(count=data["tx_count"], mean=data["tx_mean"])
    return NetworkModelProfile(
        server_model=ServerNetworkModel(data["server_model"]),
        client_model=ClientNetworkModel(data["client_model"]),
        rx_bytes=rx, tx_bytes=tx,
        waits_per_request=data["waits_per_request"],
        rx_per_request=data["rx_per_request"],
        tx_per_request=data["tx_per_request"],
    )


def _encode_counters(counters: Optional[ServiceMetrics]) -> Optional[dict]:
    if counters is None:
        return None
    return {
        "ipc": counters.ipc,
        "branch": counters.branch_mispredict_rate,
        "l1i": counters.l1i_miss_rate,
        "l1d": counters.l1d_miss_rate,
        "l2": counters.l2_miss_rate,
        "llc": counters.llc_miss_rate,
        "instructions_per_request": counters.instructions_per_request,
    }


def _decode_counters(data: Optional[dict]) -> Optional[ServiceMetrics]:
    if data is None:
        return None
    # Reconstruct a ServiceMetrics whose derived properties reproduce the
    # exported values (the tuner only consumes the derived metrics).
    cycles = 1e9
    instructions = data["ipc"] * cycles
    branches = max(1.0, instructions * 0.1)
    l1i_accesses = max(1.0, instructions / 4.0)
    l1d_accesses = max(1.0, instructions * 0.3)
    l2_accesses = max(1.0, l1d_accesses * max(1e-9, data["l1d"]))
    llc_accesses = max(1.0, l2_accesses * max(1e-9, data["l2"]))
    metrics = ServiceMetrics()
    metrics.absorb(BlockTiming(
        cycles=cycles,
        instructions=instructions,
        uops=instructions * 1.1,
        branches=branches,
        branch_mispredictions=branches * data["branch"],
        l1i_accesses=l1i_accesses,
        l1i_misses=l1i_accesses * data["l1i"],
        l1d_accesses=l1d_accesses,
        l1d_misses=l1d_accesses * data["l1d"],
        l2_accesses=l2_accesses,
        l2_misses=l2_accesses * data["l2"],
        llc_accesses=llc_accesses,
        llc_misses=llc_accesses * data["llc"],
    ))
    ipr = data.get("instructions_per_request", 0.0)
    metrics.requests = int(instructions / ipr) if ipr else 0
    return metrics


# --------------------------------------------------------------------- #
# bundle-level API
# --------------------------------------------------------------------- #
def encode_features(features: ServiceFeatures) -> dict:
    """Serialise one tier's feature set to a JSON-safe dict."""
    return {
        "service": features.service,
        "mix": _encode_mix(features.mix),
        "branches": _encode_branches(features.branches),
        "deps": _encode_deps(features.deps),
        "syscalls": _encode_syscalls(features.syscalls),
        "threads": _encode_threads(features.threads),
        "network": _encode_network(features.network),
        "data_wsets": {str(k): v for k, v in features.data_wsets.items()},
        "instr_wsets": {str(k): v for k, v in features.instr_wsets.items()},
        "regular_ratio": features.regular_ratio,
        "regular_ratio_large": features.regular_ratio_large,
        "chase_ratio_large": features.chase_ratio_large,
        "shared_ratio": features.shared_ratio,
        "write_frac": features.write_frac,
        "handler_mix": dict(features.handler_mix),
        "rpc_calls": {
            handler: [list(call) for call in calls]
            for handler, calls in features.rpc_calls.items()
        },
        "resident_bytes": features.resident_bytes,
        "hot_code_bytes": features.hot_code_bytes,
        "file_sizes": dict(features.file_sizes),
        "target_counters": _encode_counters(features.target_counters),
        "observed_qps": features.observed_qps,
        "observed_connections": features.observed_connections,
        "observed_closed_loop": features.observed_closed_loop,
    }


def decode_features(data: dict) -> ServiceFeatures:
    """Deserialise one tier's feature set."""
    return ServiceFeatures(
        service=data["service"],
        mix=_decode_mix(data["mix"]),
        branches=_decode_branches(data["branches"]),
        deps=_decode_deps(data["deps"]),
        syscalls=_decode_syscalls(data["syscalls"]),
        threads=_decode_threads(data["threads"]),
        network=_decode_network(data["network"]),
        data_wsets={int(k): v for k, v in data["data_wsets"].items()},
        instr_wsets={int(k): v for k, v in data["instr_wsets"].items()},
        regular_ratio=data["regular_ratio"],
        regular_ratio_large=data["regular_ratio_large"],
        chase_ratio_large=data["chase_ratio_large"],
        shared_ratio=data["shared_ratio"],
        write_frac=data["write_frac"],
        handler_mix=dict(data["handler_mix"]),
        rpc_calls={
            handler: [tuple(call) for call in calls]
            for handler, calls in data["rpc_calls"].items()
        },
        resident_bytes=data["resident_bytes"],
        hot_code_bytes=data["hot_code_bytes"],
        file_sizes=dict(data["file_sizes"]),
        target_counters=_decode_counters(data["target_counters"]),
        observed_qps=data["observed_qps"],
        observed_connections=data["observed_connections"],
        observed_closed_loop=data["observed_closed_loop"],
    )


def save_bundle(
    features_by_service: Dict[str, ServiceFeatures],
    path,
    entry_service: str,
    placements: Optional[Dict[str, str]] = None,
    tuned_knobs: Optional[Dict[str, TuningKnobs]] = None,
    source_platform=None,
) -> Path:
    """Write a shareable clone bundle to ``path``.

    The document is digest-stamped (canonical-JSON SHA-256 embedded in
    an ``integrity`` stanza) and written atomically — a crash mid-write
    leaves the previous bundle, never half of the new one. Pass the
    fine-tuner's per-tier knobs as ``tuned_knobs`` so consumers
    regenerate the calibrated clone, and the profiling platform as
    ``source_platform`` so migration preflight knows what environment
    the ``target_counters`` were tuned on. The stanza is only added
    when a platform is given — bundles written without one keep their
    historical bytes (and digests) exactly.
    """
    if entry_service not in features_by_service:
        raise ConfigurationError(
            f"entry service {entry_service!r} not among the tiers")
    for name in tuned_knobs or {}:
        if name not in features_by_service:
            raise ConfigurationError(
                f"tuned knobs for unknown tier {name!r}")
    document = {
        "format": BUNDLE_FORMAT,
        "version": BUNDLE_VERSION,
        "entry_service": entry_service,
        "placements": dict(placements or {}),
        "tiers": {
            name: encode_features(features)
            for name, features in features_by_service.items()
        },
        "tuned_knobs": {
            name: dataclasses.asdict(knobs)
            for name, knobs in (tuned_knobs or {}).items()
        },
    }
    if source_platform is not None:
        from repro.hw.platform import platform_to_dict
        document["source_platform"] = platform_to_dict(source_platform)
    integrity.stamp_json(document)
    path = Path(path)
    scratch = Path(f"{path}.tmp-{os.getpid()}")
    scratch.write_text(json.dumps(document, indent=1, sort_keys=True))
    os.replace(scratch, path)
    return path


def read_bundle_document(path) -> dict:
    """Parse and integrity-check a bundle file; returns the raw document.

    Undecodable or digest-mismatching bundles are quarantined (moved to
    ``<path>.quarantined``, counted in telemetry) and raise
    :class:`~repro.util.errors.ArtifactIntegrityError` — a corrupt
    bundle must never silently regenerate a wrong clone. v1 documents
    (written before stamping existed) carry no stanza and pass.
    """
    text = Path(path).read_text()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        moved = integrity.quarantine_and_report(
            str(path), schema=BUNDLE_FORMAT, reason="undecodable")
        raise ArtifactIntegrityError(
            f"{path}: bundle is not valid JSON ({error})"
            + (f"; quarantined to {moved}" if moved else ""),
            path=str(path), reason="undecodable",
            quarantined_to=moved) from error
    fmt = document.get("format")
    if fmt == BUNDLE_FORMAT:
        if document.get("version") not in range(1, BUNDLE_VERSION + 1):
            raise ConfigurationError(
                f"unsupported bundle version {document.get('version')}")
    elif fmt == MIGRATION_FORMAT:
        # A migrated bundle is a strict superset of a clone bundle, so
        # everything downstream (load/regenerate/validate) just works.
        if document.get("version") not in range(1, MIGRATION_VERSION + 1):
            raise ConfigurationError(
                f"unsupported migration version {document.get('version')}")
    else:
        raise ConfigurationError(f"{path} is not a clone bundle")
    try:
        integrity.verify_json(document, path=str(path))
    except ArtifactIntegrityError as error:
        moved = integrity.quarantine_and_report(
            str(path), schema=fmt, reason=error.reason)
        raise ArtifactIntegrityError(
            f"{error}" + (f"; quarantined to {moved}" if moved else ""),
            path=str(path), reason=error.reason,
            quarantined_to=moved) from error
    return document


def load_bundle(path) -> Tuple[Dict[str, ServiceFeatures], str, Dict[str, str]]:
    """Read a clone bundle; returns (features, entry service, placements)."""
    document = read_bundle_document(path)
    features = {
        name: decode_features(data)
        for name, data in document["tiers"].items()
    }
    return features, document["entry_service"], dict(document["placements"])


def bundle_tuned_knobs(path) -> Dict[str, TuningKnobs]:
    """The per-tier tuned knobs stored in a bundle (empty for v1)."""
    document = read_bundle_document(path)
    return {
        name: TuningKnobs(**data)
        for name, data in document.get("tuned_knobs", {}).items()
    }


def bundle_source_platform(document: dict):
    """The source platform embedded in a bundle *document*, or None.

    Bundles written before the stanza existed (and bundles whose
    authors chose not to disclose their platform) return None —
    migration preflight then needs an explicit ``--source-platform``.
    """
    data = document.get("source_platform")
    if not data:
        return None
    from repro.hw.platform import platform_from_dict
    return platform_from_dict(data)


def deployment_from_bundle(
    path,
    config: Optional[GeneratorConfig] = None,
    default_node: str = "node0",
    use_tuned_knobs: bool = True,
) -> Deployment:
    """Regenerate a runnable synthetic deployment from a bundle alone.

    This is the consumer side of the sharing story: a hardware vendor
    with only the bundle (never the original code, binary, or traces)
    builds and runs the synthetic service. When the bundle carries
    tuned knobs (v2) and ``use_tuned_knobs`` is on, each tier is
    generated with its calibrated knob set; an explicit non-default
    ``config.knobs`` wins over the bundle's.
    """
    document = read_bundle_document(path)
    features_by_service = {
        name: decode_features(data)
        for name, data in document["tiers"].items()
    }
    entry_service = document["entry_service"]
    placements = dict(document["placements"])
    knobs_by_tier: Dict[str, TuningKnobs] = {}
    if use_tuned_knobs:
        caller_tuned = config is not None and config.knobs != TuningKnobs()
        if not caller_tuned:
            knobs_by_tier = {
                name: TuningKnobs(**data)
                for name, data in document.get("tuned_knobs", {}).items()
            }
    services: Dict[str, ServiceSpec] = {}
    for name, features in features_by_service.items():
        tier_config = config
        if name in knobs_by_tier:
            tier_config = dataclasses.replace(
                config or GeneratorConfig(), knobs=knobs_by_tier[name])
        program, files = generate_program(features, tier_config)
        services[name] = ServiceSpec(
            name=name,
            skeleton=generate_skeleton(features.threads, features.network),
            program=program,
            request_mix=dict(features.handler_mix) or None,
            files=files,
        )
    return Deployment(
        services=services,
        placements=[
            Placement(name, placements.get(name, default_node))
            for name in services
        ],
        entry_service=entry_service,
    )


def audit_bundle_confidentiality(
    path,
    original: Deployment,
) -> List[str]:
    """Return identifiers from the original that leak into the bundle.

    Checks block names, file names, and instruction-block structure (the
    things §4.1's Abstraction principle conceals). Service and handler
    names are interface-level — the paper explicitly keeps the RPC graph
    — so they are not counted as leaks.
    """
    text = Path(path).read_text()
    leaks: List[str] = []
    for spec in original.services.values():
        for block in spec.program.all_blocks():
            if block.name in text:
                leaks.append(f"block name {block.name!r}")
        for fname in spec.files:
            if f'"{fname}"' in text:
                leaks.append(f"file name {fname!r}")
    return leaks
