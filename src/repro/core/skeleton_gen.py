"""Skeleton generation (§4.3): thread model x network model.

Rebuilds a :class:`~repro.app.skeleton.Skeleton` from the inferred thread
and network profiles: the synthetic service keeps the original's wait
discipline, worker-pool shape (fixed pool vs per-connection), acceptor,
and background timers — the structural properties that drive latency and
scaling behaviour.
"""

from __future__ import annotations

from typing import List

from repro.app.skeleton import (
    ClientNetworkModel,
    ServerNetworkModel,
    Skeleton,
    ThreadClass,
    ThreadLifecycle,
    ThreadTrigger,
)
from repro.profiling.netmodel import NetworkModelProfile
from repro.profiling.threads import ThreadModelProfile

_TRIGGERS = {
    "socket": ThreadTrigger.SOCKET,
    "timer": ThreadTrigger.TIMER,
    "condvar": ThreadTrigger.CONDVAR,
    "signal": ThreadTrigger.SIGNAL,
}


def generate_skeleton(
    threads: ThreadModelProfile,
    network: NetworkModelProfile,
    max_connections: int = 1024,
) -> Skeleton:
    """Build the synthetic skeleton from inferred models."""
    classes: List[ThreadClass] = []
    index = 0
    for cls in threads.classes:
        trigger = _TRIGGERS.get(cls.trigger, ThreadTrigger.SOCKET)
        lifecycle = (ThreadLifecycle.SHORT_LIVED if cls.short_lived
                     else ThreadLifecycle.LONG_LIVED)
        if cls.role == "background" and trigger is not ThreadTrigger.TIMER:
            trigger = ThreadTrigger.TIMER
        classes.append(ThreadClass(
            name=f"syn_{cls.role}_{index}",
            count=0 if cls.scales_with_connections else cls.count,
            role=cls.role,
            trigger=trigger,
            lifecycle=lifecycle,
            scales_with_connections=cls.scales_with_connections,
            background_period_s=(1.0 if cls.role == "background" else 0.0),
        ))
        index += 1
    if not any(cls.role == "worker" for cls in classes):
        classes.append(ThreadClass(
            name="syn_worker_fallback", count=1, role="worker",
            trigger=ThreadTrigger.SOCKET,
        ))
    return Skeleton(
        server_model=network.server_model,
        client_model=network.client_model,
        thread_classes=tuple(classes),
        max_connections=max_connections,
    )
